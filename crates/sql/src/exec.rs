//! Plan execution: materialized, operator-at-a-time.
//!
//! Three equivalent paths exist. [`run`] is the row-at-a-time executor over
//! `Vec<Vec<Value>>`. [`run_batch`] is the serial vectorized executor over
//! columnar [`Batch`]es: scans, filters, projections, and aggregations stay
//! column-wise; joins, sorts, DISTINCT, and VALUES pivot to rows at their
//! boundary and share the same row-level kernels as the row path, so both
//! executors return identical results. [`run_batch_with`] adds
//! morsel-driven parallelism on top of the vectorized operators: table
//! scans emit fixed-size morsels ([`MORSEL_ROWS`] rows) that flow through
//! filters and projections on a scoped worker pool, equi-joins become
//! partitioned hash joins, and aggregation runs two-phase (per-worker
//! partial states merged in worker order). Every parallel operator is
//! written to reproduce the serial output ordering exactly, so all three
//! paths stay bit-for-bit interchangeable.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use odbis_storage::{Batch, ColumnData, ColumnVec, Database, Value};

use crate::ast::{AggFunc, BinOp, JoinKind};
use crate::error::{SqlError, SqlResult};
use crate::expr::{keep_mask, truth, BExpr};
use crate::plan::{AggExpr, Plan, PlanNode};

/// Execute a read-only plan, producing materialized rows.
pub fn run(db: &Database, plan: &Plan) -> SqlResult<Vec<Vec<Value>>> {
    match &plan.node {
        PlanNode::TableScan {
            table,
            filter,
            projection,
        } => {
            let rows = db.scan(table)?;
            // Project before filtering: a pushed filter is bound over the
            // pruned column space.
            let rows: Vec<Vec<Value>> = match projection {
                None => rows,
                Some(cols) => rows
                    .into_iter()
                    .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                    .collect(),
            };
            match filter {
                None => Ok(rows),
                Some(pred) => {
                    let mut out = Vec::new();
                    for row in rows {
                        if truth(&pred.eval(&row)?) == Some(true) {
                            out.push(row);
                        }
                    }
                    Ok(out)
                }
            }
        }
        PlanNode::IndexScan {
            table,
            index,
            lo,
            hi,
            residual,
        } => {
            let candidates: Vec<Vec<Value>> = db.read_table(table, |t| {
                let idx = t
                    .index(index)
                    .ok_or_else(|| odbis_storage::DbError::IndexNotFound(index.clone()))?;
                let ids = idx.range(lo.as_deref(), hi.as_deref());
                ids.into_iter()
                    .map(|id| t.get(id).map(<[Value]>::to_vec))
                    .collect::<Result<Vec<_>, _>>()
            })??;
            match residual {
                None => Ok(candidates),
                Some(pred) => {
                    let mut out = Vec::new();
                    for row in candidates {
                        if truth(&pred.eval(&row)?) == Some(true) {
                            out.push(row);
                        }
                    }
                    Ok(out)
                }
            }
        }
        PlanNode::Filter { input, predicate } => {
            let rows = run(db, input)?;
            let mut out = Vec::new();
            for row in rows {
                if truth(&predicate.eval(&row)?) == Some(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::Project { input, exprs } => {
            let rows = run(db, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for e in exprs {
                    projected.push(e.eval(&row)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        PlanNode::Join {
            kind,
            left,
            right,
            on,
        } => join(db, *kind, left, right, on),
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
        } => aggregate(db, input, group_exprs, aggs),
        PlanNode::Sort { input, keys } => {
            let mut rows = run(db, input)?;
            sort_rows(&mut rows, keys);
            Ok(rows)
        }
        PlanNode::Distinct { input } => {
            let rows = run(db, input)?;
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::Limit {
            input,
            limit,
            offset,
        } => {
            // Top-k fast path: LIMIT directly above Sort keeps a bounded
            // heap instead of sorting the whole input.
            if let (
                PlanNode::Sort {
                    input: sort_input,
                    keys,
                },
                Some(l),
            ) = (&input.node, limit)
            {
                let rows = run(db, sort_input)?;
                let top = top_k(rows, keys, offset.saturating_add(*l));
                return Ok(top.into_iter().skip(*offset).collect());
            }
            let rows = run(db, input)?;
            let end = limit.map_or(rows.len(), |l| (offset + l).min(rows.len()));
            let start = (*offset).min(rows.len());
            Ok(rows[start..end.max(start)].to_vec())
        }
        PlanNode::Values { rows } => Ok(rows.clone()),
    }
}

/// Execute a read-only plan column-wise, producing a [`Batch`].
///
/// Table scans, filters, projections, aggregations, and LIMIT are fully
/// vectorized. Joins, sorts, DISTINCT, index probes, and VALUES pivot
/// through rows at their boundary (sharing the row path's kernels), then
/// re-batch their output.
pub fn run_batch(db: &Database, plan: &Plan) -> SqlResult<Batch> {
    let arity = plan.schema.len();
    match &plan.node {
        PlanNode::TableScan {
            table,
            filter,
            projection,
        } => {
            let batch = match projection {
                None => db.scan_batch(table)?,
                Some(cols) => db.scan_batch_cols(table, cols)?,
            };
            match filter {
                None => Ok(batch),
                Some(pred) => Ok(batch.filter(&keep_mask(pred, &batch)?)),
            }
        }
        PlanNode::IndexScan { .. } => {
            // index probes fetch scattered rows; batch the fetched result
            let rows = run(db, plan)?;
            Ok(Batch::from_rows(arity, rows)?)
        }
        PlanNode::Filter { input, predicate } => {
            let batch = run_batch(db, input)?;
            Ok(batch.filter(&keep_mask(predicate, &batch)?))
        }
        PlanNode::Project { input, exprs } => {
            let batch = run_batch(db, input)?;
            let cols: Vec<Arc<ColumnVec>> = exprs
                .iter()
                .map(|e| e.eval_batch(&batch))
                .collect::<SqlResult<_>>()?;
            Ok(Batch::new(cols, batch.num_rows())?)
        }
        PlanNode::Join {
            kind,
            left,
            right,
            on,
        } => {
            let lrows = run_batch(db, left)?.to_rows();
            let rrows = run_batch(db, right)?.to_rows();
            let rows = join_rows(
                *kind,
                &lrows,
                &rrows,
                left.schema.len(),
                right.schema.len(),
                on,
            )?;
            Ok(Batch::from_rows(arity, rows)?)
        }
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            let batch = run_batch(db, input)?;
            let rows = aggregate_batch(&batch, group_exprs, aggs)?;
            Ok(Batch::from_rows(arity, rows)?)
        }
        PlanNode::Sort { input, keys } => {
            let mut rows = run_batch(db, input)?.to_rows();
            sort_rows(&mut rows, keys);
            Ok(Batch::from_rows(arity, rows)?)
        }
        PlanNode::Distinct { input } => {
            let rows = run_batch(db, input)?.to_rows();
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(Batch::from_rows(arity, out)?)
        }
        PlanNode::Limit {
            input,
            limit,
            offset,
        } => {
            if let (
                PlanNode::Sort {
                    input: sort_input,
                    keys,
                },
                Some(l),
            ) = (&input.node, limit)
            {
                let rows = run_batch(db, sort_input)?.to_rows();
                let top = top_k(rows, keys, offset.saturating_add(*l));
                let out: Vec<Vec<Value>> = top.into_iter().skip(*offset).collect();
                return Ok(Batch::from_rows(arity, out)?);
            }
            let batch = run_batch(db, input)?;
            let n = batch.num_rows();
            let end = limit.map_or(n, |l| (offset + l).min(n));
            let start = (*offset).min(n);
            Ok(batch.slice(start, end.max(start)))
        }
        PlanNode::Values { rows } => Ok(Batch::from_rows(arity, rows.clone())?),
    }
}

/// Rows per morsel: the unit of work handed to parallel operators.
pub const MORSEL_ROWS: usize = 4096;

/// Execution tuning knobs threaded from the engine.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Worker threads for morsel-parallel operators (`<= 1` = serial).
    pub parallelism: usize,
}

/// Execute a read-only plan with the given options, producing a [`Batch`].
///
/// With `parallelism <= 1` this is exactly [`run_batch`]. Otherwise the
/// plan runs morsel-parallel and the output morsels are concatenated; all
/// parallel operators preserve the serial output ordering, so the result
/// is identical to the serial executors'.
pub fn run_batch_with(db: &Database, plan: &Plan, opts: ExecOptions) -> SqlResult<Batch> {
    if opts.parallelism <= 1 {
        return run_batch(db, plan);
    }
    let morsels = exec_morsels(db, plan, opts.parallelism)?;
    Ok(Batch::concat(plan.schema.len(), &morsels)?)
}

/// Morsel-parallel execution: returns the plan's output as ordered
/// morsels whose in-order concatenation equals the serial result.
fn exec_morsels(db: &Database, plan: &Plan, threads: usize) -> SqlResult<Vec<Batch>> {
    let arity = plan.schema.len();
    match &plan.node {
        PlanNode::TableScan {
            table,
            filter,
            projection,
        } => {
            let morsels = db.scan_partitions(table, projection.as_deref(), MORSEL_ROWS)?;
            match filter {
                None => Ok(morsels),
                Some(pred) => par_map(morsels, threads, |m| Ok(m.filter(&keep_mask(pred, &m)?))),
            }
        }
        PlanNode::Filter { input, predicate } => {
            let morsels = exec_morsels(db, input, threads)?;
            par_map(morsels, threads, |m| {
                Ok(m.filter(&keep_mask(predicate, &m)?))
            })
        }
        PlanNode::Project { input, exprs } => {
            let morsels = exec_morsels(db, input, threads)?;
            par_map(morsels, threads, |m| {
                let cols: Vec<Arc<ColumnVec>> = exprs
                    .iter()
                    .map(|e| e.eval_batch(&m))
                    .collect::<SqlResult<_>>()?;
                Ok(Batch::new(cols, m.num_rows())?)
            })
        }
        PlanNode::Join {
            kind,
            left,
            right,
            on,
        } => parallel_join(db, *kind, left, right, on, threads),
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            let morsels = exec_morsels(db, input, threads)?;
            let state = parallel_aggregate(morsels, group_exprs, aggs, threads)?;
            let rows = state.finish(group_exprs, aggs)?;
            Ok(vec![Batch::from_rows(arity, rows)?])
        }
        PlanNode::Sort { input, keys } => {
            let morsels = exec_morsels(db, input, threads)?;
            let mut rows = Batch::concat(input.schema.len(), &morsels)?.to_rows();
            sort_rows(&mut rows, keys);
            Ok(vec![Batch::from_rows(arity, rows)?])
        }
        PlanNode::Distinct { input } => {
            // Whole-row dedup keeps first occurrences: inherently ordered,
            // so it runs serially over the concatenated input.
            let morsels = exec_morsels(db, input, threads)?;
            let rows = Batch::concat(input.schema.len(), &morsels)?.to_rows();
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(vec![Batch::from_rows(arity, out)?])
        }
        PlanNode::Limit {
            input,
            limit,
            offset,
        } => {
            if let (
                PlanNode::Sort {
                    input: sort_input,
                    keys,
                },
                Some(l),
            ) = (&input.node, limit)
            {
                let morsels = exec_morsels(db, sort_input, threads)?;
                let rows = Batch::concat(sort_input.schema.len(), &morsels)?.to_rows();
                let top = top_k(rows, keys, offset.saturating_add(*l));
                let out: Vec<Vec<Value>> = top.into_iter().skip(*offset).collect();
                return Ok(vec![Batch::from_rows(arity, out)?]);
            }
            let morsels = exec_morsels(db, input, threads)?;
            let batch = Batch::concat(input.schema.len(), &morsels)?;
            let n = batch.num_rows();
            let end = limit.map_or(n, |l| (offset + l).min(n));
            let start = (*offset).min(n);
            Ok(vec![batch.slice(start, end.max(start))])
        }
        // Index probes fetch scattered rows and VALUES is tiny: run serial.
        PlanNode::IndexScan { .. } | PlanNode::Values { .. } => Ok(vec![run_batch(db, plan)?]),
    }
}

/// Split `items` into at most `parts` contiguous chunks of near-equal size.
fn split_chunks<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        out.push(c);
    }
    out
}

/// Contiguous `[lo, hi)` index ranges of at most [`MORSEL_ROWS`] rows.
fn morsel_ranges(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .step_by(MORSEL_ROWS)
        .map(|lo| (lo, (lo + MORSEL_ROWS).min(n)))
        .collect()
}

/// Map `f` over `items` on a scoped worker pool, preserving item order.
/// Errors are reported deterministically: the first failing item (by input
/// position) wins, regardless of which worker hit it first.
fn par_map<T: Send, R: Send>(
    items: Vec<T>,
    threads: usize,
    f: impl Fn(T) -> SqlResult<R> + Sync,
) -> SqlResult<Vec<R>> {
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunks = split_chunks(items, threads);
    let f = &f;
    let per_chunk: Vec<Vec<SqlResult<R>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Partitioned hash join: both sides execute morsel-parallel, the smaller
/// side becomes the build table, and probing fans out over morsels. Output
/// order matches the serial kernel ([`join_rows`]) exactly: probing the
/// left side preserves its natural order, and the build-left variant
/// canonicalizes via a `(left, right)` pair sort.
fn parallel_join(
    db: &Database,
    kind: JoinKind,
    left: &Plan,
    right: &Plan,
    on: &BExpr,
    threads: usize,
) -> SqlResult<Vec<Batch>> {
    let l_arity = left.schema.len();
    let r_arity = right.schema.len();
    let arity = l_arity + r_arity;
    let lrows = Batch::concat(l_arity, &exec_morsels(db, left, threads)?)?.to_rows();
    let rrows = Batch::concat(r_arity, &exec_morsels(db, right, threads)?)?.to_rows();
    let eq_pairs = equi_pairs(on, l_arity);
    if eq_pairs.is_empty() {
        // No equi-keys: fall back to the serial nested-loop kernel.
        let rows = join_rows(kind, &lrows, &rrows, l_arity, r_arity, on)?;
        return Ok(vec![Batch::from_rows(arity, rows)?]);
    }
    if kind == JoinKind::Inner && lrows.len() < rrows.len() {
        // Build on the (smaller) left side, probe right morsels, then
        // canonicalize: the serial kernel emits matches ordered by
        // (left row, right row), which is exactly the sorted pair order.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (li, lrow) in lrows.iter().enumerate() {
            let key: Vec<Value> = eq_pairs.iter().map(|&(i, _)| lrow[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(li);
        }
        let pair_chunks = par_map(morsel_ranges(rrows.len()), threads, |(lo, hi)| {
            let mut pairs = Vec::new();
            for (ri, rrow) in lrows_window(&rrows, lo, hi) {
                let key: Vec<Value> = eq_pairs.iter().map(|&(_, j)| rrow[j].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(lis) = table.get(&key) {
                    for &li in lis {
                        let mut combined = lrows[li].clone();
                        combined.extend(rrow.iter().cloned());
                        if truth(&on.eval(&combined)?) == Some(true) {
                            pairs.push((li, ri));
                        }
                    }
                }
            }
            Ok(pairs)
        })?;
        let mut pairs: Vec<(usize, usize)> = pair_chunks.into_iter().flatten().collect();
        pairs.sort_unstable();
        return par_map(morsel_ranges(pairs.len()), threads, |(lo, hi)| {
            let rows: Vec<Vec<Value>> = pairs[lo..hi]
                .iter()
                .map(|&(li, ri)| {
                    let mut combined = lrows[li].clone();
                    combined.extend(rrows[ri].iter().cloned());
                    combined
                })
                .collect();
            Ok(Batch::from_rows(arity, rows)?)
        });
    }
    // Build on the right side, probe left morsels in natural order. LEFT
    // joins always take this path: the per-probe-row matched flag (and its
    // NULL extension) is chunk-local.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (ri, rrow) in rrows.iter().enumerate() {
        let key: Vec<Value> = eq_pairs.iter().map(|&(_, j)| rrow[j].clone()).collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(ri);
    }
    par_map(morsel_ranges(lrows.len()), threads, |(lo, hi)| {
        let mut out = Vec::new();
        for (_, lrow) in lrows_window(&lrows, lo, hi) {
            let key: Vec<Value> = eq_pairs.iter().map(|&(i, _)| lrow[i].clone()).collect();
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(ris) = table.get(&key) {
                    for &ri in ris {
                        let mut combined = lrow.clone();
                        combined.extend(rrows[ri].iter().cloned());
                        if truth(&on.eval(&combined)?) == Some(true) {
                            out.push(combined);
                            matched = true;
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, r_arity));
                out.push(combined);
            }
        }
        Ok(Batch::from_rows(arity, out)?)
    })
}

/// Enumerated window `[lo, hi)` over a row slice.
fn lrows_window(
    rows: &[Vec<Value>],
    lo: usize,
    hi: usize,
) -> impl Iterator<Item = (usize, &Vec<Value>)> {
    rows[lo..hi]
        .iter()
        .enumerate()
        .map(move |(k, r)| (lo + k, r))
}

/// Two-phase parallel aggregation: workers fold contiguous morsel chunks
/// into private [`GroupState`]s, which merge in worker order — a group's
/// first-seen position is decided by the earliest chunk containing it, so
/// the merged order equals the serial scan's first-seen order.
fn parallel_aggregate(
    morsels: Vec<Batch>,
    group_exprs: &[BExpr],
    aggs: &[AggExpr],
    threads: usize,
) -> SqlResult<GroupState> {
    let chunks = split_chunks(morsels, threads);
    let states = par_map(chunks, threads, |chunk| {
        let mut st = GroupState::new();
        for m in &chunk {
            accumulate_batch_into(&mut st, m, group_exprs, aggs)?;
        }
        Ok(st)
    })?;
    let mut global = GroupState::new();
    for st in states {
        global.merge(st, aggs)?;
    }
    Ok(global)
}

/// Compare two rows on the given `(column, descending)` sort keys.
fn compare_rows(a: &[Value], b: &[Value], keys: &[(usize, bool)]) -> std::cmp::Ordering {
    for (k, desc) in keys {
        let ord = a[*k].cmp_total(&b[*k]);
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

fn sort_rows(rows: &mut [Vec<Value>], keys: &[(usize, bool)]) {
    rows.sort_by(|a, b| compare_rows(a, b, keys));
}

/// The first `k` rows of the stable sort by `keys`, computed with a
/// bounded binary max-heap (O(n log k)) instead of a full sort. The input
/// sequence number breaks ties, which reproduces the stable sort exactly.
fn top_k(rows: Vec<Vec<Value>>, keys: &[(usize, bool)], k: usize) -> Vec<Vec<Value>> {
    if k == 0 {
        return Vec::new();
    }
    struct Entry<'a> {
        row: Vec<Value>,
        seq: usize,
        keys: &'a [(usize, bool)],
    }
    impl Ord for Entry<'_> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            compare_rows(&self.row, &other.row, self.keys).then(self.seq.cmp(&other.seq))
        }
    }
    impl PartialOrd for Entry<'_> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl PartialEq for Entry<'_> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl Eq for Entry<'_> {}
    let mut heap: std::collections::BinaryHeap<Entry> =
        std::collections::BinaryHeap::with_capacity(k + 1);
    for (seq, row) in rows.into_iter().enumerate() {
        heap.push(Entry { row, seq, keys });
        if heap.len() > k {
            heap.pop(); // the max entry is the current worst candidate
        }
    }
    heap.into_sorted_vec().into_iter().map(|e| e.row).collect()
}

fn join(
    db: &Database,
    kind: JoinKind,
    left: &Plan,
    right: &Plan,
    on: &BExpr,
) -> SqlResult<Vec<Vec<Value>>> {
    let lrows = run(db, left)?;
    let rrows = run(db, right)?;
    join_rows(
        kind,
        &lrows,
        &rrows,
        left.schema.len(),
        right.schema.len(),
        on,
    )
}

/// Row-level join kernel shared by both executors.
fn join_rows(
    kind: JoinKind,
    lrows: &[Vec<Value>],
    rrows: &[Vec<Value>],
    l_arity: usize,
    r_arity: usize,
    on: &BExpr,
) -> SqlResult<Vec<Vec<Value>>> {
    let eq_pairs = equi_pairs(on, l_arity);
    let mut out = Vec::new();
    if !eq_pairs.is_empty() {
        // build on the right side
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, rrow) in rrows.iter().enumerate() {
            let key: Vec<Value> = eq_pairs.iter().map(|&(_, j)| rrow[j].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never match
            }
            table.entry(key).or_default().push(ri);
        }
        for lrow in lrows {
            let key: Vec<Value> = eq_pairs.iter().map(|&(i, _)| lrow[i].clone()).collect();
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(ris) = table.get(&key) {
                    for &ri in ris {
                        let mut combined = lrow.clone();
                        combined.extend(rrows[ri].iter().cloned());
                        if truth(&on.eval(&combined)?) == Some(true) {
                            out.push(combined);
                            matched = true;
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, r_arity));
                out.push(combined);
            }
        }
    } else {
        for lrow in lrows {
            let mut matched = false;
            for rrow in rrows {
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                if truth(&on.eval(&combined)?) == Some(true) {
                    out.push(combined);
                    matched = true;
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, r_arity));
                out.push(combined);
            }
        }
    }
    Ok(out)
}

/// Hash-joinable equi-conjuncts of `on`: pairs `(i, j)` where the
/// condition contains `Col(i) = Col(j')` with `i` on the left side and
/// `j' = j + l_arity` on the right (either written orientation).
fn equi_pairs(on: &BExpr, l_arity: usize) -> Vec<(usize, usize)> {
    let mut cs = Vec::new();
    collect_conjuncts(on, &mut cs);
    let mut eq_pairs: Vec<(usize, usize)> = Vec::new();
    for c in &cs {
        if let BExpr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = c
        {
            match (&**a, &**b) {
                (BExpr::Column(i), BExpr::Column(j)) if *i < l_arity && *j >= l_arity => {
                    eq_pairs.push((*i, *j - l_arity));
                }
                (BExpr::Column(j), BExpr::Column(i)) if *i < l_arity && *j >= l_arity => {
                    eq_pairs.push((*i, *j - l_arity));
                }
                _ => {}
            }
        }
    }
    eq_pairs
}

fn collect_conjuncts(e: &BExpr, out: &mut Vec<BExpr>) {
    if let BExpr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// One accumulator per (group, aggregate).
#[derive(Debug, Clone)]
struct Acc {
    count: i64,
    sum_f: f64,
    sum_i: i64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Option<HashSet<Value>>,
}

impl Acc {
    fn new(distinct: bool) -> Self {
        Acc {
            count: 0,
            sum_f: 0.0,
            sum_i: 0,
            all_int: true,
            min: None,
            max: None,
            distinct: if distinct { Some(HashSet::new()) } else { None },
        }
    }

    fn update(&mut self, v: &Value) -> SqlResult<()> {
        if v.is_null() {
            return Ok(());
        }
        if let Some(set) = &mut self.distinct {
            if !set.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        match v {
            Value::Int(i) => {
                // On i64 overflow the SUM result promotes to Float (the
                // f64 running sum keeps going) instead of wrapping.
                match self.sum_i.checked_add(*i) {
                    Some(s) => self.sum_i = s,
                    None => self.all_int = false,
                }
                self.sum_f += *i as f64;
            }
            Value::Float(f) => {
                self.all_int = false;
                self.sum_f += f;
            }
            _ => self.all_int = false,
        }
        match &self.min {
            Some(m) if v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v <= m => {}
            _ => self.max = Some(v.clone()),
        }
        Ok(())
    }

    /// Fold another partial accumulator for the same (group, aggregate)
    /// into this one (the merge phase of two-phase aggregation).
    fn merge(&mut self, other: Acc) -> SqlResult<()> {
        if let Some(set) = other.distinct {
            // DISTINCT partials may overlap across workers: replay the
            // other side's distinct values through `update`, which
            // deduplicates against (and extends) our own set.
            for v in set {
                self.update(&v)?;
            }
            return Ok(());
        }
        self.count += other.count;
        match self.sum_i.checked_add(other.sum_i) {
            Some(s) => self.sum_i = s,
            None => self.all_int = false,
        }
        self.sum_f += other.sum_f;
        self.all_int &= other.all_int;
        if let Some(m) = other.min {
            match &self.min {
                Some(cur) if *cur <= m => {}
                _ => self.min = Some(m),
            }
        }
        if let Some(m) = other.max {
            match &self.max {
                Some(cur) if *cur >= m => {}
                _ => self.max = Some(m),
            }
        }
        Ok(())
    }

    fn finish(&self, func: AggFunc, numeric_input: bool) -> SqlResult<Value> {
        Ok(match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if !numeric_input {
                    return Err(SqlError::Type("SUM over non-numeric values".into()));
                } else if self.all_int {
                    Value::Int(self.sum_i)
                } else {
                    Value::Float(self.sum_f)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else if !numeric_input {
                    return Err(SqlError::Type("AVG over non-numeric values".into()));
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        })
    }
}

/// Running hash-aggregation state: group key → (first-seen order,
/// accumulators, per-aggregate numeric-input flags).
struct GroupState {
    groups: HashMap<Vec<Value>, (usize, Vec<Acc>, Vec<bool>)>,
    order: Vec<Vec<Value>>,
}

impl GroupState {
    fn new() -> Self {
        GroupState {
            groups: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Accumulator entry for `key`, creating it on first sight. Looks up
    /// by slice so the per-row scratch key is only cloned for new groups,
    /// not on every row.
    fn entry(&mut self, key: &[Value], aggs: &[AggExpr]) -> &mut (usize, Vec<Acc>, Vec<bool>) {
        if !self.groups.contains_key(key) {
            let owned = key.to_vec();
            self.order.push(owned.clone());
            self.groups.insert(
                owned,
                (
                    self.order.len() - 1,
                    aggs.iter().map(|a| Acc::new(a.distinct)).collect(),
                    vec![true; aggs.len()],
                ),
            );
        }
        self.groups.get_mut(key).expect("entry just ensured")
    }

    fn accumulate(
        entry: &mut (usize, Vec<Acc>, Vec<bool>),
        ai: usize,
        arg: Option<Value>,
    ) -> SqlResult<()> {
        match arg {
            None => {
                // COUNT(*): count every row including NULLs
                entry.1[ai].count += 1;
            }
            Some(v) => {
                if !v.is_null() && v.as_f64().is_none() {
                    entry.2[ai] = false;
                }
                entry.1[ai].update(&v)?;
            }
        }
        Ok(())
    }

    /// Merge another partial state into this one. `other`'s groups are
    /// visited in its first-seen order, so merging worker states in
    /// worker (= scan) order preserves the global first-seen order.
    fn merge(&mut self, other: GroupState, aggs: &[AggExpr]) -> SqlResult<()> {
        let GroupState { mut groups, order } = other;
        for key in order {
            let (_, accs, numeric) = groups.remove(&key).expect("ordered key present");
            let entry = self.entry(&key, aggs);
            for (ai, acc) in accs.into_iter().enumerate() {
                entry.1[ai].merge(acc)?;
                entry.2[ai] &= numeric[ai];
            }
        }
        Ok(())
    }

    fn finish(self, group_exprs: &[BExpr], aggs: &[AggExpr]) -> SqlResult<Vec<Vec<Value>>> {
        // Global aggregation over an empty input still yields one row.
        if group_exprs.is_empty() && self.groups.is_empty() {
            let mut row = Vec::with_capacity(aggs.len());
            for agg in aggs {
                let acc = Acc::new(agg.distinct);
                row.push(acc.finish(agg.func, true)?);
            }
            return Ok(vec![row]);
        }
        let mut out: Vec<(usize, Vec<Value>)> = Vec::with_capacity(self.groups.len());
        for (key, (ord, accs, numeric)) in self.groups {
            let mut row = key;
            for (ai, agg) in aggs.iter().enumerate() {
                row.push(accs[ai].finish(agg.func, numeric[ai])?);
            }
            out.push((ord, row));
        }
        out.sort_by_key(|(ord, _)| *ord);
        Ok(out.into_iter().map(|(_, r)| r).collect())
    }
}

fn aggregate(
    db: &Database,
    input: &Plan,
    group_exprs: &[BExpr],
    aggs: &[AggExpr],
) -> SqlResult<Vec<Vec<Value>>> {
    let rows = run(db, input)?;
    let mut state = GroupState::new();
    let mut key = Vec::with_capacity(group_exprs.len());
    for row in &rows {
        key.clear();
        for g in group_exprs {
            key.push(g.eval(row)?);
        }
        let entry = state.entry(&key, aggs);
        for (ai, agg) in aggs.iter().enumerate() {
            let arg = match &agg.arg {
                None => None,
                Some(argexpr) => Some(argexpr.eval(row)?),
            };
            GroupState::accumulate(entry, ai, arg)?;
        }
    }
    state.finish(group_exprs, aggs)
}

/// Vectorized hash aggregation: group keys and aggregate arguments are
/// evaluated as whole columns up front, then folded into the shared
/// accumulators in one pass over the batch. When the group columns are
/// typed and hashable they are dictionary-encoded into dense group ids so
/// the accumulation loop indexes a vector instead of hashing a
/// `Vec<Value>` per row.
fn aggregate_batch(
    input: &Batch,
    group_exprs: &[BExpr],
    aggs: &[AggExpr],
) -> SqlResult<Vec<Vec<Value>>> {
    let n = input.num_rows();
    let group_cols: Vec<Arc<ColumnVec>> = group_exprs
        .iter()
        .map(|g| g.eval_batch(input))
        .collect::<SqlResult<_>>()?;
    let arg_cols: Vec<Option<Arc<ColumnVec>>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.eval_batch(input)).transpose())
        .collect::<SqlResult<_>>()?;
    if !group_exprs.is_empty() && aggs.iter().all(|a| !a.distinct) {
        if let Some((gids, keys)) = group_ids(&group_cols, n) {
            return aggregate_by_gid(&gids, keys, &arg_cols, aggs);
        }
    }
    let mut state = GroupState::new();
    let mut key = Vec::with_capacity(group_cols.len());
    for i in 0..n {
        key.clear();
        key.extend(group_cols.iter().map(|c| c.value(i)));
        let entry = state.entry(&key, aggs);
        for (ai, col) in arg_cols.iter().enumerate() {
            GroupState::accumulate(entry, ai, col.as_ref().map(|c| c.value(i)))?;
        }
    }
    state.finish(group_exprs, aggs)
}

/// FxHash-style multiply-xor hasher for the aggregation hot path. Not
/// DoS-resistant, which is fine for query-local tables that never outlive
/// one statement.
#[derive(Default)]
struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

impl FastHasher {
    fn add(&mut self, v: u64) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

type FastMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FastHasher>>;

/// Dictionary-encode one group column: a per-row code assigned in
/// first-seen order plus the distinct values. Returns `None` for column
/// shapes the dense-id path does not handle (floats are not hashable,
/// `Mixed` has no single type).
fn dictionary_codes(col: &ColumnVec, n: usize) -> Option<(Vec<u32>, Vec<Value>)> {
    let nulls = col.nulls();
    let mut codes = Vec::with_capacity(n);
    let mut dict: Vec<Value> = Vec::new();
    let mut null_code: Option<u32> = None;
    macro_rules! encode {
        ($vals:expr, $to_key:expr, $to_value:expr) => {{
            let mut map: FastMap<_, u32> = FastMap::default();
            for (i, raw) in $vals.iter().enumerate().take(n) {
                if nulls.is_some_and(|m| m[i]) {
                    codes.push(*null_code.get_or_insert_with(|| {
                        dict.push(Value::Null);
                        (dict.len() - 1) as u32
                    }));
                } else {
                    codes.push(*map.entry($to_key(raw)).or_insert_with(|| {
                        dict.push($to_value(raw));
                        (dict.len() - 1) as u32
                    }));
                }
            }
        }};
    }
    match col.data() {
        ColumnData::Int(v) => encode!(v, |r: &i64| *r, |r: &i64| Value::Int(*r)),
        ColumnData::Date(v) => encode!(v, |r: &i32| *r as i64, |r: &i32| Value::Date(*r)),
        ColumnData::Timestamp(v) => encode!(v, |r: &i64| *r, |r: &i64| Value::Timestamp(*r)),
        ColumnData::Bool(v) => encode!(v, |r: &bool| *r, |r: &bool| Value::Bool(*r)),
        ColumnData::Text(v) => {
            // Keyed by &str borrowed from the column so each distinct string
            // is cloned once, on first sight.
            let mut map: FastMap<&str, u32> = FastMap::default();
            for (i, raw) in v.iter().enumerate().take(n) {
                if nulls.is_some_and(|m| m[i]) {
                    codes.push(*null_code.get_or_insert_with(|| {
                        dict.push(Value::Null);
                        (dict.len() - 1) as u32
                    }));
                } else {
                    codes.push(*map.entry(raw.as_str()).or_insert_with(|| {
                        dict.push(Value::Text(raw.clone()));
                        (dict.len() - 1) as u32
                    }));
                }
            }
        }
        ColumnData::Float(_) | ColumnData::Mixed(_) => return None,
    }
    Some((codes, dict))
}

/// Dense group ids for up to two typed group columns: each row's id plus
/// the distinct keys in first-seen order. `None` falls back to the generic
/// `Vec<Value>` hash path.
fn group_ids(group_cols: &[Arc<ColumnVec>], n: usize) -> Option<(Vec<u32>, Vec<Vec<Value>>)> {
    if group_cols.is_empty() || group_cols.len() > 2 {
        return None;
    }
    let encoded: Vec<(Vec<u32>, Vec<Value>)> = group_cols
        .iter()
        .map(|c| dictionary_codes(c, n))
        .collect::<Option<_>>()?;
    if encoded.len() == 1 {
        let (codes, dict) = encoded.into_iter().next().expect("one encoded column");
        let keys = dict.into_iter().map(|v| vec![v]).collect();
        return Some((codes, keys));
    }
    // Two columns: the per-column codes both fit in 32 bits, so packing
    // them into a u64 is an exact composite key.
    let (c0, d0) = &encoded[0];
    let (c1, d1) = &encoded[1];
    let mut map: FastMap<u64, u32> = FastMap::default();
    let mut gids = Vec::with_capacity(n);
    let mut keys: Vec<Vec<Value>> = Vec::new();
    for i in 0..n {
        let packed = ((c0[i] as u64) << 32) | c1[i] as u64;
        gids.push(*map.entry(packed).or_insert_with(|| {
            keys.push(vec![d0[c0[i] as usize].clone(), d1[c1[i] as usize].clone()]);
            (keys.len() - 1) as u32
        }));
    }
    Some((gids, keys))
}

/// Fold aggregate argument columns into per-group accumulators indexed by
/// dense group id, column-at-a-time. Count/Sum/Avg over typed numeric
/// columns run over the raw slices; everything else goes through the same
/// per-value [`Acc::update`] the generic path uses.
fn aggregate_by_gid(
    gids: &[u32],
    keys: Vec<Vec<Value>>,
    arg_cols: &[Option<Arc<ColumnVec>>],
    aggs: &[AggExpr],
) -> SqlResult<Vec<Vec<Value>>> {
    let ngroups = keys.len();
    let (accs, numeric) = fold_by_gid(gids, ngroups, arg_cols, aggs)?;
    let mut out = Vec::with_capacity(ngroups);
    for (g, key) in keys.into_iter().enumerate() {
        let mut row = key;
        for (ai, agg) in aggs.iter().enumerate() {
            row.push(accs[g][ai].finish(agg.func, numeric[g][ai])?);
        }
        out.push(row);
    }
    Ok(out)
}

/// Per-group accumulator state: one `Acc` per aggregate per group, plus
/// the still-numeric flag each accumulator carries for AVG/SUM coercion.
type GroupAccs = (Vec<Vec<Acc>>, Vec<Vec<bool>>);

/// The accumulation loop of the dense-id path, shared by the serial
/// finisher ([`aggregate_by_gid`]) and the parallel partial pass.
fn fold_by_gid(
    gids: &[u32],
    ngroups: usize,
    arg_cols: &[Option<Arc<ColumnVec>>],
    aggs: &[AggExpr],
) -> SqlResult<GroupAccs> {
    let mut accs: Vec<Vec<Acc>> = (0..ngroups)
        .map(|_| aggs.iter().map(|a| Acc::new(a.distinct)).collect())
        .collect();
    let mut numeric: Vec<Vec<bool>> = vec![vec![true; aggs.len()]; ngroups];
    for (ai, (agg, col)) in aggs.iter().zip(arg_cols).enumerate() {
        match col {
            None => {
                // COUNT(*) counts every row, nulls included.
                for &g in gids {
                    accs[g as usize][ai].count += 1;
                }
            }
            Some(col) => {
                accumulate_column(gids, col, ai, agg.func, &mut accs, &mut numeric)?;
            }
        }
    }
    Ok((accs, numeric))
}

/// Fold one morsel into a running [`GroupState`] (the partial phase of
/// two-phase parallel aggregation). Reuses the dense group-id fast path
/// per morsel when the group columns allow it.
fn accumulate_batch_into(
    state: &mut GroupState,
    input: &Batch,
    group_exprs: &[BExpr],
    aggs: &[AggExpr],
) -> SqlResult<()> {
    let n = input.num_rows();
    let group_cols: Vec<Arc<ColumnVec>> = group_exprs
        .iter()
        .map(|g| g.eval_batch(input))
        .collect::<SqlResult<_>>()?;
    let arg_cols: Vec<Option<Arc<ColumnVec>>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.eval_batch(input)).transpose())
        .collect::<SqlResult<_>>()?;
    if !group_exprs.is_empty() && aggs.iter().all(|a| !a.distinct) {
        if let Some((gids, keys)) = group_ids(&group_cols, n) {
            let (accs, numeric) = fold_by_gid(&gids, keys.len(), &arg_cols, aggs)?;
            for ((key, accs), numeric) in keys.into_iter().zip(accs).zip(numeric) {
                let entry = state.entry(&key, aggs);
                for (ai, acc) in accs.into_iter().enumerate() {
                    entry.1[ai].merge(acc)?;
                    entry.2[ai] &= numeric[ai];
                }
            }
            return Ok(());
        }
    }
    let mut key = Vec::with_capacity(group_cols.len());
    for i in 0..n {
        key.clear();
        key.extend(group_cols.iter().map(|c| c.value(i)));
        let entry = state.entry(&key, aggs);
        for (ai, col) in arg_cols.iter().enumerate() {
            GroupState::accumulate(entry, ai, col.as_ref().map(|c| c.value(i)))?;
        }
    }
    Ok(())
}

fn accumulate_column(
    gids: &[u32],
    col: &ColumnVec,
    ai: usize,
    func: AggFunc,
    accs: &mut [Vec<Acc>],
    numeric: &mut [Vec<bool>],
) -> SqlResult<()> {
    let nulls = col.nulls();
    match (col.data(), func) {
        // Count/Sum/Avg never read min/max, so the typed arms only keep the
        // counters and sums those finishers use.
        (ColumnData::Int(v), AggFunc::Count | AggFunc::Sum | AggFunc::Avg) => {
            for (i, &g) in gids.iter().enumerate() {
                if nulls.is_some_and(|m| m[i]) {
                    continue;
                }
                let acc = &mut accs[g as usize][ai];
                acc.count += 1;
                match acc.sum_i.checked_add(v[i]) {
                    Some(s) => acc.sum_i = s,
                    None => acc.all_int = false,
                }
                acc.sum_f += v[i] as f64;
            }
        }
        (ColumnData::Float(v), AggFunc::Count | AggFunc::Sum | AggFunc::Avg) => {
            for (i, &g) in gids.iter().enumerate() {
                if nulls.is_some_and(|m| m[i]) {
                    continue;
                }
                let acc = &mut accs[g as usize][ai];
                acc.count += 1;
                acc.all_int = false;
                acc.sum_f += v[i];
            }
        }
        _ => {
            // Same semantics as GroupState::accumulate, addressed by id.
            for (i, &g) in gids.iter().enumerate() {
                let v = col.value(i);
                let g = g as usize;
                if !v.is_null() && v.as_f64().is_none() {
                    numeric[g][ai] = false;
                }
                accs[g][ai].update(&v)?;
            }
        }
    }
    Ok(())
}
