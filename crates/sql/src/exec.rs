//! Plan execution: materialized, operator-at-a-time.

use std::collections::{HashMap, HashSet};

use odbis_storage::{Database, Value};

use crate::ast::{AggFunc, BinOp, JoinKind};
use crate::error::{SqlError, SqlResult};
use crate::expr::{truth, BExpr};
use crate::plan::{AggExpr, Plan, PlanNode};

/// Execute a read-only plan, producing materialized rows.
pub fn run(db: &Database, plan: &Plan) -> SqlResult<Vec<Vec<Value>>> {
    match &plan.node {
        PlanNode::TableScan { table, filter } => {
            let rows = db.scan(table)?;
            match filter {
                None => Ok(rows),
                Some(pred) => {
                    let mut out = Vec::new();
                    for row in rows {
                        if truth(&pred.eval(&row)?) == Some(true) {
                            out.push(row);
                        }
                    }
                    Ok(out)
                }
            }
        }
        PlanNode::IndexScan {
            table,
            index,
            lo,
            hi,
            residual,
        } => {
            let candidates: Vec<Vec<Value>> = db.read_table(table, |t| {
                let idx = t
                    .index(index)
                    .ok_or_else(|| odbis_storage::DbError::IndexNotFound(index.clone()))?;
                let ids = idx.range(lo.as_deref(), hi.as_deref());
                ids.into_iter()
                    .map(|id| t.get(id).map(<[Value]>::to_vec))
                    .collect::<Result<Vec<_>, _>>()
            })??;
            match residual {
                None => Ok(candidates),
                Some(pred) => {
                    let mut out = Vec::new();
                    for row in candidates {
                        if truth(&pred.eval(&row)?) == Some(true) {
                            out.push(row);
                        }
                    }
                    Ok(out)
                }
            }
        }
        PlanNode::Filter { input, predicate } => {
            let rows = run(db, input)?;
            let mut out = Vec::new();
            for row in rows {
                if truth(&predicate.eval(&row)?) == Some(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::Project { input, exprs } => {
            let rows = run(db, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for e in exprs {
                    projected.push(e.eval(&row)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        PlanNode::Join {
            kind,
            left,
            right,
            on,
        } => join(db, *kind, left, right, on),
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
        } => aggregate(db, input, group_exprs, aggs),
        PlanNode::Sort { input, keys } => {
            let mut rows = run(db, input)?;
            rows.sort_by(|a, b| {
                for (k, desc) in keys {
                    let ord = a[*k].cmp_total(&b[*k]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rows)
        }
        PlanNode::Distinct { input } => {
            let rows = run(db, input)?;
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::Limit {
            input,
            limit,
            offset,
        } => {
            let rows = run(db, input)?;
            let end = limit.map_or(rows.len(), |l| (offset + l).min(rows.len()));
            let start = (*offset).min(rows.len());
            Ok(rows[start..end.max(start)].to_vec())
        }
        PlanNode::Values { rows } => Ok(rows.clone()),
    }
}

fn join(
    db: &Database,
    kind: JoinKind,
    left: &Plan,
    right: &Plan,
    on: &BExpr,
) -> SqlResult<Vec<Vec<Value>>> {
    let lrows = run(db, left)?;
    let rrows = run(db, right)?;
    let l_arity = left.schema.len();
    let r_arity = right.schema.len();

    // try hash join on equi-conjuncts Col(i) = Col(j) with i < l_arity <= j
    let mut cs = Vec::new();
    collect_conjuncts(on, &mut cs);
    let mut eq_pairs: Vec<(usize, usize)> = Vec::new();
    for c in &cs {
        if let BExpr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = c
        {
            match (&**a, &**b) {
                (BExpr::Column(i), BExpr::Column(j)) if *i < l_arity && *j >= l_arity => {
                    eq_pairs.push((*i, *j - l_arity));
                }
                (BExpr::Column(j), BExpr::Column(i)) if *i < l_arity && *j >= l_arity => {
                    eq_pairs.push((*i, *j - l_arity));
                }
                _ => {}
            }
        }
    }

    let mut out = Vec::new();
    if !eq_pairs.is_empty() {
        // build on the right side
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, rrow) in rrows.iter().enumerate() {
            let key: Vec<Value> = eq_pairs.iter().map(|&(_, j)| rrow[j].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never match
            }
            table.entry(key).or_default().push(ri);
        }
        for lrow in &lrows {
            let key: Vec<Value> = eq_pairs.iter().map(|&(i, _)| lrow[i].clone()).collect();
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(ris) = table.get(&key) {
                    for &ri in ris {
                        let mut combined = lrow.clone();
                        combined.extend(rrows[ri].iter().cloned());
                        if truth(&on.eval(&combined)?) == Some(true) {
                            out.push(combined);
                            matched = true;
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, r_arity));
                out.push(combined);
            }
        }
    } else {
        for lrow in &lrows {
            let mut matched = false;
            for rrow in &rrows {
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                if truth(&on.eval(&combined)?) == Some(true) {
                    out.push(combined);
                    matched = true;
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, r_arity));
                out.push(combined);
            }
        }
    }
    Ok(out)
}

fn collect_conjuncts(e: &BExpr, out: &mut Vec<BExpr>) {
    if let BExpr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// One accumulator per (group, aggregate).
#[derive(Debug, Clone)]
struct Acc {
    count: i64,
    sum_f: f64,
    sum_i: i64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Option<HashSet<Value>>,
}

impl Acc {
    fn new(distinct: bool) -> Self {
        Acc {
            count: 0,
            sum_f: 0.0,
            sum_i: 0,
            all_int: true,
            min: None,
            max: None,
            distinct: if distinct { Some(HashSet::new()) } else { None },
        }
    }

    fn update(&mut self, v: &Value) -> SqlResult<()> {
        if v.is_null() {
            return Ok(());
        }
        if let Some(set) = &mut self.distinct {
            if !set.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        match v {
            Value::Int(i) => {
                self.sum_i = self.sum_i.wrapping_add(*i);
                self.sum_f += *i as f64;
            }
            Value::Float(f) => {
                self.all_int = false;
                self.sum_f += f;
            }
            _ => self.all_int = false,
        }
        match &self.min {
            Some(m) if v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v <= m => {}
            _ => self.max = Some(v.clone()),
        }
        Ok(())
    }

    fn finish(&self, func: AggFunc, numeric_input: bool) -> SqlResult<Value> {
        Ok(match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if !numeric_input {
                    return Err(SqlError::Type("SUM over non-numeric values".into()));
                } else if self.all_int {
                    Value::Int(self.sum_i)
                } else {
                    Value::Float(self.sum_f)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else if !numeric_input {
                    return Err(SqlError::Type("AVG over non-numeric values".into()));
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        })
    }
}

fn aggregate(
    db: &Database,
    input: &Plan,
    group_exprs: &[BExpr],
    aggs: &[AggExpr],
) -> SqlResult<Vec<Vec<Value>>> {
    let rows = run(db, input)?;
    // group key -> (first-seen order, accumulators, numeric flags)
    let mut groups: HashMap<Vec<Value>, (usize, Vec<Acc>, Vec<bool>)> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();

    for row in &rows {
        let mut key = Vec::with_capacity(group_exprs.len());
        for g in group_exprs {
            key.push(g.eval(row)?);
        }
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            (
                order.len() - 1,
                aggs.iter().map(|a| Acc::new(a.distinct)).collect(),
                vec![true; aggs.len()],
            )
        });
        for (ai, agg) in aggs.iter().enumerate() {
            match &agg.arg {
                None => {
                    // COUNT(*): count every row including NULLs
                    entry.1[ai].count += 1;
                }
                Some(argexpr) => {
                    let v = argexpr.eval(row)?;
                    if !v.is_null() && v.as_f64().is_none() {
                        entry.2[ai] = false;
                    }
                    entry.1[ai].update(&v)?;
                }
            }
        }
    }

    // Global aggregation over an empty input still yields one row.
    if group_exprs.is_empty() && groups.is_empty() {
        let mut row = Vec::with_capacity(aggs.len());
        for agg in aggs {
            let acc = Acc::new(agg.distinct);
            row.push(acc.finish(agg.func, true)?);
        }
        return Ok(vec![row]);
    }

    let mut out: Vec<(usize, Vec<Value>)> = Vec::with_capacity(groups.len());
    for (key, (ord, accs, numeric)) in groups {
        let mut row = key;
        for (ai, agg) in aggs.iter().enumerate() {
            row.push(accs[ai].finish(agg.func, numeric[ai])?);
        }
        out.push((ord, row));
    }
    out.sort_by_key(|(ord, _)| *ord);
    Ok(out.into_iter().map(|(_, r)| r).collect())
}
