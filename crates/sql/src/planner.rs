//! Binder + planner + rule-based optimizer: AST → [`Plan`].

use odbis_storage::Database;

use crate::ast::{self, AggFunc, BinOp, Expr, SelectItem, SelectStmt};
use crate::error::{SqlError, SqlResult};
use crate::expr::{typed_literal, BExpr};
use crate::functions::ScalarFunc;
use crate::plan::{AggExpr, Plan, PlanCol, PlanNode, PlanSchema};

/// Plan a `SELECT` statement against the catalog.
pub fn plan_select(db: &Database, sel: &SelectStmt) -> SqlResult<Plan> {
    Planner { db }.select(sel)
}

struct Planner<'a> {
    db: &'a Database,
}

impl<'a> Planner<'a> {
    // ---- base relation -----------------------------------------------------

    fn scan(&self, tref: &ast::TableRef) -> SqlResult<Plan> {
        let schema = self
            .db
            .table_schema(&tref.table)
            .map_err(SqlError::Storage)?;
        let binding = tref.binding().to_string();
        let cols: PlanSchema = schema
            .columns()
            .iter()
            .map(|c| PlanCol {
                qualifier: Some(binding.clone()),
                name: c.name.clone(),
            })
            .collect();
        Ok(Plan {
            node: PlanNode::TableScan {
                table: tref.table.clone(),
                filter: None,
                projection: None,
            },
            schema: cols,
        })
    }

    fn base(&self, sel: &SelectStmt) -> SqlResult<Plan> {
        let Some(from) = &sel.from else {
            // FROM-less select handled by caller
            unreachable!("base() requires FROM");
        };
        let mut plan = self.scan(from)?;
        for join in &sel.joins {
            let right = self.scan(&join.table)?;
            let mut schema = plan.schema.clone();
            schema.extend(right.schema.clone());
            let on = bind(&join.on, &schema)?;
            plan = Plan {
                node: PlanNode::Join {
                    kind: join.kind,
                    left: Box::new(plan),
                    right: Box::new(right),
                    on,
                },
                schema,
            };
        }
        Ok(plan)
    }

    // ---- SELECT ------------------------------------------------------------

    fn select(&self, sel: &SelectStmt) -> SqlResult<Plan> {
        if sel.from.is_none() {
            return self.select_without_from(sel);
        }
        let mut plan = self.base(sel)?;

        if let Some(filter) = &sel.filter {
            if filter.contains_aggregate() {
                return Err(SqlError::Bind("aggregates not allowed in WHERE".into()));
            }
            let predicate = bind(filter, &plan.schema)?;
            let schema = plan.schema.clone();
            plan = Plan {
                node: PlanNode::Filter {
                    input: Box::new(plan),
                    predicate,
                },
                schema,
            };
        }

        let has_agg = !sel.group_by.is_empty()
            || sel.having.is_some()
            || sel.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            });

        // Expressions to project, their output names, and (for ORDER BY)
        // the ASTs they came from.
        let mut proj_exprs: Vec<BExpr> = Vec::new();
        let mut out_schema: PlanSchema = Vec::new();
        let mut item_asts: Vec<Option<Expr>> = Vec::new();

        // The schema the projection is bound over (base or aggregate output),
        // plus the rewriting context for aggregated queries.
        let agg_ctx = if has_agg {
            Some(self.build_aggregate(&mut plan, sel)?)
        } else {
            None
        };

        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    if has_agg {
                        return Err(SqlError::Bind(
                            "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                        ));
                    }
                    for (i, c) in plan.schema.iter().enumerate() {
                        proj_exprs.push(BExpr::Column(i));
                        out_schema.push(c.clone());
                        item_asts.push(None);
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    if has_agg {
                        return Err(SqlError::Bind(
                            "qualified * cannot be combined with aggregates".into(),
                        ));
                    }
                    let mut matched = false;
                    for (i, c) in plan.schema.iter().enumerate() {
                        if c.qualifier
                            .as_deref()
                            .is_some_and(|x| x.eq_ignore_ascii_case(q))
                        {
                            proj_exprs.push(BExpr::Column(i));
                            out_schema.push(c.clone());
                            item_asts.push(None);
                            matched = true;
                        }
                    }
                    if !matched {
                        return Err(SqlError::Bind(format!("unknown table alias {q}")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bexpr = match &agg_ctx {
                        Some(ctx) => ctx.rewrite_and_bind(expr)?,
                        None => bind(expr, &plan.schema)?,
                    };
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        // a qualified column is named by its bare name
                        Expr::Column { name, .. } => name.clone(),
                        other => display_expr(other),
                    });
                    proj_exprs.push(bexpr);
                    out_schema.push(PlanCol::unqualified(name));
                    item_asts.push(Some(expr.clone()));
                }
            }
        }

        // HAVING applies on the aggregate output, before projection.
        if let Some(having) = &sel.having {
            let ctx = agg_ctx
                .as_ref()
                .ok_or_else(|| SqlError::Bind("HAVING requires GROUP BY or aggregates".into()))?;
            let predicate = ctx.rewrite_and_bind(having)?;
            let schema = plan.schema.clone();
            plan = Plan {
                node: PlanNode::Filter {
                    input: Box::new(plan),
                    predicate,
                },
                schema,
            };
        }

        // ORDER BY: resolve each key to an output ordinal, or append a
        // hidden projection column.
        let mut sort_keys: Vec<(usize, bool)> = Vec::new();
        let mut hidden = 0usize;
        for key in &sel.order_by {
            let ordinal = self.resolve_order_key(&key.expr, &out_schema, &item_asts)?;
            let ord = match ordinal {
                Some(o) => o,
                None => {
                    if sel.distinct {
                        return Err(SqlError::Bind(
                            "ORDER BY expression must appear in SELECT list when DISTINCT is used"
                                .into(),
                        ));
                    }
                    let bexpr = match &agg_ctx {
                        Some(ctx) => ctx.rewrite_and_bind(&key.expr)?,
                        None => bind(&key.expr, &plan.schema)?,
                    };
                    proj_exprs.push(bexpr);
                    hidden += 1;
                    proj_exprs.len() - 1
                }
            };
            sort_keys.push((ord, key.desc));
        }

        // Projection (with hidden sort columns appended).
        let mut proj_schema = out_schema.clone();
        for i in 0..hidden {
            proj_schema.push(PlanCol::unqualified(format!("#sort{i}")));
        }
        plan = Plan {
            node: PlanNode::Project {
                input: Box::new(plan),
                exprs: proj_exprs,
            },
            schema: proj_schema,
        };

        if sel.distinct {
            let schema = plan.schema.clone();
            plan = Plan {
                node: PlanNode::Distinct {
                    input: Box::new(plan),
                },
                schema,
            };
        }

        if !sort_keys.is_empty() {
            let schema = plan.schema.clone();
            plan = Plan {
                node: PlanNode::Sort {
                    input: Box::new(plan),
                    keys: sort_keys,
                },
                schema,
            };
        }

        if hidden > 0 {
            let exprs: Vec<BExpr> = (0..out_schema.len()).map(BExpr::Column).collect();
            plan = Plan {
                node: PlanNode::Project {
                    input: Box::new(plan),
                    exprs,
                },
                schema: out_schema.clone(),
            };
        }

        if sel.limit.is_some() || sel.offset.is_some() {
            let schema = plan.schema.clone();
            plan = Plan {
                node: PlanNode::Limit {
                    input: Box::new(plan),
                    limit: sel.limit,
                    offset: sel.offset.unwrap_or(0),
                },
                schema,
            };
        }

        Ok(plan)
    }

    fn select_without_from(&self, sel: &SelectStmt) -> SqlResult<Plan> {
        let mut row = Vec::new();
        let mut schema = PlanSchema::new();
        for item in &sel.items {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(SqlError::Bind("SELECT * requires a FROM clause".into()));
            };
            let bexpr = bind(expr, &[])?;
            let v = bexpr.eval(&[]).map_err(|e| {
                SqlError::Bind(format!("non-constant expression without FROM: {e}"))
            })?;
            row.push(v);
            schema.push(PlanCol::unqualified(
                alias.clone().unwrap_or_else(|| display_expr(expr)),
            ));
        }
        Ok(Plan {
            node: PlanNode::Values { rows: vec![row] },
            schema,
        })
    }

    fn resolve_order_key(
        &self,
        expr: &Expr,
        out_schema: &PlanSchema,
        item_asts: &[Option<Expr>],
    ) -> SqlResult<Option<usize>> {
        // 1-based output ordinal
        if let Expr::Literal(odbis_storage::Value::Int(n)) = expr {
            let n = *n;
            if n < 1 || n as usize > out_schema.len() {
                return Err(SqlError::Bind(format!(
                    "ORDER BY position {n} is out of range (1..={})",
                    out_schema.len()
                )));
            }
            return Ok(Some(n as usize - 1));
        }
        // alias or output-column name
        if let Expr::Column {
            qualifier: None,
            name,
        } = expr
        {
            if let Some(i) = out_schema
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(name))
            {
                return Ok(Some(i));
            }
        }
        // exact AST match against a select item
        if let Some(i) = item_asts
            .iter()
            .position(|a| a.as_ref().is_some_and(|a| loose_expr_eq(a, expr)))
        {
            return Ok(Some(i));
        }
        Ok(None)
    }

    // ---- aggregation ---------------------------------------------------------

    /// Insert an Aggregate node above `plan`; returns the rewrite context for
    /// binding item/having/order expressions against the aggregate output.
    fn build_aggregate(&self, plan: &mut Plan, sel: &SelectStmt) -> SqlResult<AggContext> {
        let input_schema = plan.schema.clone();

        let mut group_asts: Vec<Expr> = Vec::new();
        let mut group_bexprs: Vec<BExpr> = Vec::new();
        for g in &sel.group_by {
            if g.contains_aggregate() {
                return Err(SqlError::Bind("aggregates not allowed in GROUP BY".into()));
            }
            group_bexprs.push(bind(g, &input_schema)?);
            group_asts.push(g.clone());
        }

        // collect unique aggregate calls from items, having and order keys
        let mut agg_asts: Vec<(AggFunc, Option<Expr>, bool)> = Vec::new();
        let mut collect = |e: &Expr| collect_aggs(e, &mut agg_asts);
        for item in &sel.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr);
            }
        }
        if let Some(h) = &sel.having {
            collect(h);
        }
        for k in &sel.order_by {
            collect(&k.expr);
        }

        let mut aggs = Vec::new();
        for (func, arg, distinct) in &agg_asts {
            let bound_arg = match arg {
                Some(a) => Some(bind(a, &input_schema)?),
                None => None,
            };
            aggs.push(AggExpr {
                func: *func,
                arg: bound_arg,
                distinct: *distinct,
            });
        }

        let mut schema: PlanSchema = Vec::new();
        for (i, g) in group_asts.iter().enumerate() {
            let name = match g {
                Expr::Column { name, .. } => name.clone(),
                _ => format!("#g{i}"),
            };
            schema.push(PlanCol {
                qualifier: Some("#agg".to_string()),
                name,
            });
        }
        for (j, (func, arg, _)) in agg_asts.iter().enumerate() {
            let name = match arg {
                Some(a) => format!("{}({})", func.name(), display_expr(a)),
                None => format!("{}(*)", func.name()),
            };
            let _ = j;
            schema.push(PlanCol {
                qualifier: Some("#agg".to_string()),
                name,
            });
        }

        let old = std::mem::replace(
            plan,
            Plan {
                node: PlanNode::Values { rows: vec![] },
                schema: vec![],
            },
        );
        *plan = Plan {
            node: PlanNode::Aggregate {
                input: Box::new(old),
                group_exprs: group_bexprs,
                aggs,
            },
            schema: schema.clone(),
        };

        Ok(AggContext {
            group_asts,
            agg_asts,
        })
    }
}

/// Rewrite context for expressions evaluated above an Aggregate node.
struct AggContext {
    group_asts: Vec<Expr>,
    agg_asts: Vec<(AggFunc, Option<Expr>, bool)>,
}

impl AggContext {
    /// Rewrite `expr` so group expressions and aggregate calls become column
    /// references into the aggregate output, then bind it.
    fn rewrite_and_bind(&self, expr: &Expr) -> SqlResult<BExpr> {
        self.rewrite(expr)
    }

    fn rewrite(&self, expr: &Expr) -> SqlResult<BExpr> {
        // whole expression equals a group expression?
        if let Some(i) = self.group_asts.iter().position(|g| loose_expr_eq(g, expr)) {
            return Ok(BExpr::Column(i));
        }
        match expr {
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                let j = self
                    .agg_asts
                    .iter()
                    .position(|(f, a, d)| {
                        f == func
                            && d == distinct
                            && match (a, arg) {
                                (None, None) => true,
                                (Some(x), Some(y)) => loose_expr_eq(x, y),
                                _ => false,
                            }
                    })
                    .ok_or_else(|| SqlError::Bind("unknown aggregate".into()))?;
                Ok(BExpr::Column(self.group_asts.len() + j))
            }
            Expr::Literal(v) => Ok(BExpr::Literal(v.clone())),
            Expr::TypedLiteral { ty, text } => Ok(BExpr::Literal(typed_literal(*ty, text)?)),
            Expr::Column { name, .. } => Err(SqlError::Bind(format!(
                "column {name} must appear in GROUP BY or inside an aggregate"
            ))),
            Expr::Binary { op, left, right } => Ok(BExpr::Binary {
                op: *op,
                left: Box::new(self.rewrite(left)?),
                right: Box::new(self.rewrite(right)?),
            }),
            Expr::Unary { op, expr } => Ok(BExpr::Unary {
                op: *op,
                expr: Box::new(self.rewrite(expr)?),
            }),
            Expr::IsNull { expr, negated } => Ok(BExpr::IsNull {
                expr: Box::new(self.rewrite(expr)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(BExpr::InList {
                expr: Box::new(self.rewrite(expr)?),
                list: list
                    .iter()
                    .map(|e| self.rewrite(e))
                    .collect::<SqlResult<_>>()?,
                negated: *negated,
            }),
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => Ok(BExpr::Between {
                expr: Box::new(self.rewrite(expr)?),
                lo: Box::new(self.rewrite(lo)?),
                hi: Box::new(self.rewrite(hi)?),
                negated: *negated,
            }),
            Expr::Function { name, args } => {
                let func = ScalarFunc::resolve(name)
                    .ok_or_else(|| SqlError::Bind(format!("unknown function {name}")))?;
                func.check_arity(args.len()).map_err(SqlError::Bind)?;
                Ok(BExpr::Function {
                    func,
                    args: args
                        .iter()
                        .map(|e| self.rewrite(e))
                        .collect::<SqlResult<_>>()?,
                })
            }
            Expr::Case {
                branches,
                else_expr,
            } => Ok(BExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| Ok((self.rewrite(c)?, self.rewrite(r)?)))
                    .collect::<SqlResult<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.rewrite(e)?)),
                    None => None,
                },
            }),
        }
    }
}

fn collect_aggs(expr: &Expr, out: &mut Vec<(AggFunc, Option<Expr>, bool)>) {
    match expr {
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            let arg_ast = arg.as_ref().map(|a| (**a).clone());
            let exists = out.iter().any(|(f, a, d)| {
                f == func
                    && d == distinct
                    && match (a, &arg_ast) {
                        (None, None) => true,
                        (Some(x), Some(y)) => loose_expr_eq(x, y),
                        _ => false,
                    }
            });
            if !exists {
                out.push((*func, arg_ast, *distinct));
            }
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::TypedLiteral { .. } => {}
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for e in list {
                collect_aggs(e, out);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches {
                collect_aggs(c, out);
                collect_aggs(r, out);
            }
            if let Some(e) = else_expr {
                collect_aggs(e, out);
            }
        }
    }
}

/// Case-insensitive structural expression equality; a missing column
/// qualifier on either side matches any qualifier on the other.
pub fn loose_expr_eq(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (
            Expr::Column {
                qualifier: qa,
                name: na,
            },
            Expr::Column {
                qualifier: qb,
                name: nb,
            },
        ) => {
            na.eq_ignore_ascii_case(nb)
                && match (qa, qb) {
                    (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
                    _ => true,
                }
        }
        (Expr::Literal(x), Expr::Literal(y)) => x == y,
        (Expr::TypedLiteral { ty: ta, text: xa }, Expr::TypedLiteral { ty: tb, text: xb }) => {
            ta == tb && xa == xb
        }
        (
            Expr::Binary {
                op: oa,
                left: la,
                right: ra,
            },
            Expr::Binary {
                op: ob,
                left: lb,
                right: rb,
            },
        ) => oa == ob && loose_expr_eq(la, lb) && loose_expr_eq(ra, rb),
        (Expr::Unary { op: oa, expr: ea }, Expr::Unary { op: ob, expr: eb }) => {
            oa == ob && loose_expr_eq(ea, eb)
        }
        (
            Expr::IsNull {
                expr: ea,
                negated: na,
            },
            Expr::IsNull {
                expr: eb,
                negated: nb,
            },
        ) => na == nb && loose_expr_eq(ea, eb),
        (Expr::Function { name: na, args: aa }, Expr::Function { name: nb, args: ab }) => {
            na.eq_ignore_ascii_case(nb)
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| loose_expr_eq(x, y))
        }
        (
            Expr::Aggregate {
                func: fa,
                arg: aa,
                distinct: da,
            },
            Expr::Aggregate {
                func: fb,
                arg: ab,
                distinct: db,
            },
        ) => {
            fa == fb
                && da == db
                && match (aa, ab) {
                    (None, None) => true,
                    (Some(x), Some(y)) => loose_expr_eq(x, y),
                    _ => false,
                }
        }
        _ => a == b,
    }
}

/// Bind an AST expression against a schema, resolving column names to
/// ordinals. Aggregates are rejected (they only exist above Aggregate nodes).
pub fn bind(expr: &Expr, schema: &[PlanCol]) -> SqlResult<BExpr> {
    Ok(match expr {
        Expr::Literal(v) => BExpr::Literal(v.clone()),
        Expr::TypedLiteral { ty, text } => BExpr::Literal(typed_literal(*ty, text)?),
        Expr::Column { qualifier, name } => {
            let mut matches = schema.iter().enumerate().filter(|(_, c)| {
                c.name.eq_ignore_ascii_case(name)
                    && match (qualifier, &c.qualifier) {
                        (Some(q), Some(cq)) => q.eq_ignore_ascii_case(cq),
                        (Some(_), None) => false,
                        (None, _) => true,
                    }
            });
            let first = matches.next();
            let second = matches.next();
            match (first, second) {
                (Some((i, _)), None) => BExpr::Column(i),
                (Some(_), Some(_)) => {
                    return Err(SqlError::Bind(format!("ambiguous column {name}")))
                }
                (None, _) => {
                    let full = match qualifier {
                        Some(q) => format!("{q}.{name}"),
                        None => name.clone(),
                    };
                    return Err(SqlError::Bind(format!("unknown column {full}")));
                }
            }
        }
        Expr::Binary { op, left, right } => BExpr::Binary {
            op: *op,
            left: Box::new(bind(left, schema)?),
            right: Box::new(bind(right, schema)?),
        },
        Expr::Unary { op, expr } => BExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, schema)?),
        },
        Expr::IsNull { expr, negated } => BExpr::IsNull {
            expr: Box::new(bind(expr, schema)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BExpr::InList {
            expr: Box::new(bind(expr, schema)?),
            list: list
                .iter()
                .map(|e| bind(e, schema))
                .collect::<SqlResult<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => BExpr::Between {
            expr: Box::new(bind(expr, schema)?),
            lo: Box::new(bind(lo, schema)?),
            hi: Box::new(bind(hi, schema)?),
            negated: *negated,
        },
        Expr::Function { name, args } => {
            let func = ScalarFunc::resolve(name)
                .ok_or_else(|| SqlError::Bind(format!("unknown function {name}")))?;
            func.check_arity(args.len()).map_err(SqlError::Bind)?;
            BExpr::Function {
                func,
                args: args
                    .iter()
                    .map(|e| bind(e, schema))
                    .collect::<SqlResult<_>>()?,
            }
        }
        Expr::Aggregate { func, .. } => {
            return Err(SqlError::Bind(format!(
                "aggregate {} not allowed here",
                func.name()
            )))
        }
        Expr::Case {
            branches,
            else_expr,
        } => BExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| Ok((bind(c, schema)?, bind(r, schema)?)))
                .collect::<SqlResult<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(bind(e, schema)?)),
                None => None,
            },
        },
    })
}

/// Short human-readable rendering of an AST expression (used for implicit
/// output-column names and for EXPLAIN).
pub fn display_expr(expr: &Expr) -> String {
    match expr {
        Expr::Literal(v) => v.render(),
        Expr::TypedLiteral { ty, text } => format!("{ty} '{text}'"),
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Binary { op, left, right } => {
            format!(
                "{} {} {}",
                display_expr(left),
                op_str(*op),
                display_expr(right)
            )
        }
        Expr::Unary { op, expr } => match op {
            ast::UnOp::Neg => format!("-{}", display_expr(expr)),
            ast::UnOp::Not => format!("NOT {}", display_expr(expr)),
        },
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            display_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::InList { expr, .. } => format!("{} IN (...)", display_expr(expr)),
        Expr::Between { expr, .. } => format!("{} BETWEEN ...", display_expr(expr)),
        Expr::Function { name, args } => {
            let parts: Vec<String> = args.iter().map(display_expr).collect();
            format!("{name}({})", parts.join(", "))
        }
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            let inner = match arg {
                None => "*".to_string(),
                Some(a) => format!(
                    "{}{}",
                    if *distinct { "DISTINCT " } else { "" },
                    display_expr(a)
                ),
            };
            format!("{}({inner})", func.name())
        }
        Expr::Case { .. } => "CASE".to_string(),
    }
}

/// Render an AST expression back to *valid SQL* (string literals quoted,
/// every form round-trippable through [`crate::parse`]). Used by layers
/// that rewrite queries (e.g. tenant scoping) and need to re-execute them.
pub fn display_expr_sql(expr: &Expr) -> String {
    use odbis_storage::Value;
    match expr {
        Expr::Literal(v) => match v {
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Date(_) => format!("DATE '{}'", v.render()),
            Value::Timestamp(_) => format!("TIMESTAMP '{}'", v.render()),
            other => other.render(),
        },
        Expr::TypedLiteral { ty, text } => format!("{ty} '{text}'"),
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Binary { op, left, right } => format!(
            "({} {} {})",
            display_expr_sql(left),
            op_str(*op),
            display_expr_sql(right)
        ),
        Expr::Unary { op, expr } => match op {
            ast::UnOp::Neg => format!("(-{})", display_expr_sql(expr)),
            ast::UnOp::Not => format!("(NOT {})", display_expr_sql(expr)),
        },
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            display_expr_sql(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(display_expr_sql).collect();
            format!(
                "({} {}IN ({}))",
                display_expr_sql(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => format!(
            "({} {}BETWEEN {} AND {})",
            display_expr_sql(expr),
            if *negated { "NOT " } else { "" },
            display_expr_sql(lo),
            display_expr_sql(hi)
        ),
        Expr::Function { name, args } => {
            let parts: Vec<String> = args.iter().map(display_expr_sql).collect();
            format!("{name}({})", parts.join(", "))
        }
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            let inner = match arg {
                None => "*".to_string(),
                Some(a) => format!(
                    "{}{}",
                    if *distinct { "DISTINCT " } else { "" },
                    display_expr_sql(a)
                ),
            };
            format!("{}({inner})", func.name())
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut s = String::from("CASE");
            for (c, r) in branches {
                s.push_str(&format!(
                    " WHEN {} THEN {}",
                    display_expr_sql(c),
                    display_expr_sql(r)
                ));
            }
            if let Some(e) = else_expr {
                s.push_str(&format!(" ELSE {}", display_expr_sql(e)));
            }
            s.push_str(" END");
            s
        }
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "=",
        BinOp::Neq => "<>",
        BinOp::Lt => "<",
        BinOp::Lte => "<=",
        BinOp::Gt => ">",
        BinOp::Gte => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
        BinOp::Concat => "||",
        BinOp::Like => "LIKE",
    }
}
