//! Hand-written SQL lexer.

use crate::error::{SqlError, SqlResult};

/// A lexical token with its byte position in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character in the source text.
    pub pos: usize,
}

/// SQL token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (stored upper-cased for keywords check,
    /// original case preserved in `Ident`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
    /// End of input.
    Eof,
}

/// Operator and punctuation symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    Dot,
    Concat,
}

/// Tokenize `sql`. Comments (`-- ...`) and whitespace are skipped.
pub fn lex(sql: &str) -> SqlResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_sym(&mut out, Sym::LParen, &mut i),
            ')' => push_sym(&mut out, Sym::RParen, &mut i),
            ',' => push_sym(&mut out, Sym::Comma, &mut i),
            ';' => push_sym(&mut out, Sym::Semicolon, &mut i),
            '*' => push_sym(&mut out, Sym::Star, &mut i),
            '+' => push_sym(&mut out, Sym::Plus, &mut i),
            '-' => push_sym(&mut out, Sym::Minus, &mut i),
            '/' => push_sym(&mut out, Sym::Slash, &mut i),
            '%' => push_sym(&mut out, Sym::Percent, &mut i),
            '.' => push_sym(&mut out, Sym::Dot, &mut i),
            '=' => push_sym(&mut out, Sym::Eq, &mut i),
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token {
                    kind: TokenKind::Symbol(Sym::Concat),
                    pos: i,
                });
                i += 2;
            }
            '<' => {
                let (sym, len) = match bytes.get(i + 1) {
                    Some(b'=') => (Sym::Lte, 2),
                    Some(b'>') => (Sym::Neq, 2),
                    _ => (Sym::Lt, 1),
                };
                out.push(Token {
                    kind: TokenKind::Symbol(sym),
                    pos: i,
                });
                i += len;
            }
            '>' => {
                let (sym, len) = if bytes.get(i + 1) == Some(&b'=') {
                    (Sym::Gte, 2)
                } else {
                    (Sym::Gt, 1)
                };
                out.push(Token {
                    kind: TokenKind::Symbol(sym),
                    pos: i,
                });
                i += len;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    kind: TokenKind::Symbol(Sym::Neq),
                    pos: i,
                });
                i += 2;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // advance one UTF-8 character
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&sql[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    pos: start,
                });
            }
            '"' => {
                // double-quoted identifier
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                pos: start,
                                message: "unterminated quoted identifier".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&sql[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(s),
                    pos: start,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: format!("bad float literal {text}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: format!("integer literal out of range: {text}"),
                    })?)
                };
                out.push(Token { kind, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                return Err(SqlError::Lex {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: sql.len(),
    });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

fn push_sym(out: &mut Vec<Token>, sym: Sym, i: &mut usize) {
    out.push(Token {
        kind: TokenKind::Symbol(sym),
        pos: *i,
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_select() {
        let ks = kinds("SELECT a, b FROM t WHERE x >= 1.5");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert!(ks.contains(&TokenKind::Symbol(Sym::Gte)));
        assert!(ks.contains(&TokenKind::Float(1.5)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_escapes_and_comments() {
        let ks = kinds("-- comment\n'it''s' <> \"Weird Name\"");
        assert_eq!(ks[0], TokenKind::Str("it's".into()));
        assert_eq!(ks[1], TokenKind::Symbol(Sym::Neq));
        assert_eq!(ks[2], TokenKind::Ident("Weird Name".into()));
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5E-1")[0], TokenKind::Float(0.25));
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        // `1.` followed by non-digit is Int then Dot (qualified access)
        assert_eq!(kinds("t.c")[1], TokenKind::Symbol(Sym::Dot));
    }

    #[test]
    fn unterminated_string_errors_with_position() {
        let err = lex("SELECT 'oops").unwrap_err();
        assert!(matches!(err, SqlError::Lex { pos: 7, .. }));
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(matches!(lex("SELECT #"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn concat_operator() {
        assert_eq!(kinds("a || b")[1], TokenKind::Symbol(Sym::Concat));
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'héllo'")[0], TokenKind::Str("héllo".into()));
    }
}
