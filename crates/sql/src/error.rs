//! SQL-engine error type.

use std::fmt;

use odbis_storage::DbError;

/// Errors raised while lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum SqlError {
    /// Lexical error: unrecognized character or malformed literal.
    Lex { pos: usize, message: String },
    /// Syntax error with position of the offending token.
    Parse { pos: usize, message: String },
    /// Binding error: unknown table/column/function, ambiguous name, etc.
    Bind(String),
    /// Type error detected at plan or eval time.
    Type(String),
    /// Runtime evaluation error (division by zero, bad cast, ...).
    Eval(String),
    /// An error propagated from the storage engine.
    Storage(DbError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            SqlError::Parse { pos, message } => write!(f, "syntax error at {pos}: {message}"),
            SqlError::Bind(m) => write!(f, "bind error: {m}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for SqlError {
    fn from(e: DbError) -> Self {
        SqlError::Storage(e)
    }
}

/// Result alias for SQL operations.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_wrap_with_source() {
        use std::error::Error;
        let e: SqlError = DbError::TableNotFound("x".into()).into();
        assert!(e.to_string().contains("table not found"));
        assert!(e.source().is_some());
    }
}
