//! Logical/physical query plans.

use odbis_storage::Value;

use crate::ast::{AggFunc, JoinKind};
use crate::expr::BExpr;

/// One output column of a plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCol {
    /// Table binding the column came from (`None` for computed columns).
    pub qualifier: Option<String>,
    /// Column (or alias) name.
    pub name: String,
}

impl PlanCol {
    /// A computed/unqualified column.
    pub fn unqualified(name: impl Into<String>) -> Self {
        PlanCol {
            qualifier: None,
            name: name.into(),
        }
    }
}

/// Output schema of a plan node.
pub type PlanSchema = Vec<PlanCol>;

/// An aggregate computation within an [`PlanNode::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub struct AggExpr {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument (None = `COUNT(*)`), bound over the aggregate's input.
    pub arg: Option<BExpr>,
    /// `DISTINCT` aggregation.
    pub distinct: bool,
}

/// A query plan: node + output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Operator.
    pub node: PlanNode,
    /// Output schema.
    pub schema: PlanSchema,
}

/// Plan operators. Read-only operators are composable; DML operators are
/// always plan roots.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum PlanNode {
    /// Full scan of a base table, with optional pushed-down filter and
    /// column projection.
    ///
    /// `projection` lists the physical column ordinals the scan
    /// materializes (in output order); `None` scans every column. When a
    /// projection is set, `filter` (and this node's `schema`) are bound
    /// over the *pruned* column space, not the physical table layout.
    TableScan {
        table: String,
        filter: Option<BExpr>,
        projection: Option<Vec<usize>>,
    },
    /// Index-assisted scan: candidate rows from an inclusive key range of
    /// `index`, then `residual` re-checked exactly.
    IndexScan {
        table: String,
        index: String,
        lo: Option<Vec<Value>>,
        hi: Option<Vec<Value>>,
        residual: Option<BExpr>,
    },
    /// Row filter.
    Filter { input: Box<Plan>, predicate: BExpr },
    /// Projection: compute `exprs` over each input row.
    Project { input: Box<Plan>, exprs: Vec<BExpr> },
    /// Join; `on` is bound over `left.schema ++ right.schema`.
    Join {
        kind: JoinKind,
        left: Box<Plan>,
        right: Box<Plan>,
        on: BExpr,
    },
    /// Hash aggregation; output = group values ++ aggregate results.
    Aggregate {
        input: Box<Plan>,
        group_exprs: Vec<BExpr>,
        aggs: Vec<AggExpr>,
    },
    /// Sort by input-column ordinals.
    Sort {
        input: Box<Plan>,
        keys: Vec<(usize, bool)>,
    },
    /// Deduplicate whole rows, preserving first occurrence.
    Distinct { input: Box<Plan> },
    /// LIMIT/OFFSET.
    Limit {
        input: Box<Plan>,
        limit: Option<usize>,
        offset: usize,
    },
    /// Inline constant rows (FROM-less SELECT).
    Values { rows: Vec<Vec<Value>> },
}

impl Plan {
    /// Render the plan as an indented tree (the `EXPLAIN` output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.fmt_into(&mut out, 0);
        out
    }

    fn fmt_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match &self.node {
            PlanNode::TableScan {
                table,
                filter,
                projection,
            } => {
                out.push_str(&format!("{pad}TableScan {table}"));
                if projection.is_some() {
                    let names: Vec<&str> = self.schema.iter().map(|c| c.name.as_str()).collect();
                    out.push_str(&format!(" cols=[{}]", names.join(", ")));
                }
                if let Some(f) = filter {
                    out.push_str(&format!(" filter={f:?}"));
                }
                out.push('\n');
            }
            PlanNode::IndexScan {
                table,
                index,
                lo,
                hi,
                residual,
            } => {
                out.push_str(&format!(
                    "{pad}IndexScan {table} via {index} range=[{}, {}]",
                    render_bound(lo),
                    render_bound(hi)
                ));
                if let Some(r) = residual {
                    out.push_str(&format!(" residual={r:?}"));
                }
                out.push('\n');
            }
            PlanNode::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate:?}\n"));
                input.fmt_into(out, depth + 1);
            }
            PlanNode::Project { input, exprs } => {
                let names: Vec<&str> = self.schema.iter().map(|c| c.name.as_str()).collect();
                out.push_str(&format!(
                    "{pad}Project [{}] ({} exprs)\n",
                    names.join(", "),
                    exprs.len()
                ));
                input.fmt_into(out, depth + 1);
            }
            PlanNode::Join {
                kind, left, right, ..
            } => {
                out.push_str(&format!("{pad}Join {kind:?}\n"));
                left.fmt_into(out, depth + 1);
                right.fmt_into(out, depth + 1);
            }
            PlanNode::Aggregate {
                input,
                group_exprs,
                aggs,
            } => {
                out.push_str(&format!(
                    "{pad}Aggregate groups={} aggs={}\n",
                    group_exprs.len(),
                    aggs.len()
                ));
                input.fmt_into(out, depth + 1);
            }
            PlanNode::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort keys={keys:?}\n"));
                input.fmt_into(out, depth + 1);
            }
            PlanNode::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.fmt_into(out, depth + 1);
            }
            PlanNode::Limit {
                input,
                limit,
                offset,
            } => {
                out.push_str(&format!("{pad}Limit limit={limit:?} offset={offset}\n"));
                input.fmt_into(out, depth + 1);
            }
            PlanNode::Values { rows } => {
                out.push_str(&format!("{pad}Values rows={}\n", rows.len()));
            }
        }
    }
}

fn render_bound(b: &Option<Vec<Value>>) -> String {
    match b {
        None => "-inf/+inf".to_string(),
        Some(vs) => {
            let parts: Vec<String> = vs.iter().map(Value::render).collect();
            parts.join(",")
        }
    }
}
