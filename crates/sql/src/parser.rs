//! Recursive-descent SQL parser.

use odbis_storage::{DataType, Value};

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::{lex, Sym, Token, TokenKind};

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> SqlResult<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, i: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(sql: &str) -> SqlResult<Vec<Statement>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, i: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.eat_symbol(Sym::Semicolon) {}
        if p.at_eof() {
            break;
        }
        stmts.push(p.statement()?);
        if !p.at_eof() && !p.peek_symbol(Sym::Semicolon) {
            return Err(p.err("expected ';' between statements"));
        }
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.i]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.i].clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError::Parse {
            pos: self.peek().pos,
            message: msg.into(),
        }
    }

    fn expect_eof(&self) -> SqlResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err("unexpected trailing input"))
        }
    }

    /// Is the current token the keyword `kw` (case-insensitive)?
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn peek_symbol(&self, s: Sym) -> bool {
        self.peek().kind == TokenKind::Symbol(s)
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.peek_symbol(s) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> SqlResult<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn ident(&mut self) -> SqlResult<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    // ---- statements -------------------------------------------------------

    fn statement(&mut self) -> SqlResult<Statement> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            let unique = self.eat_kw("UNIQUE");
            if self.eat_kw("INDEX") {
                return self.create_index(unique);
            }
            return Err(self.err("expected TABLE or [UNIQUE] INDEX after CREATE"));
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                let if_exists = self.if_exists()?;
                let name = self.ident()?;
                return Ok(Statement::DropTable { name, if_exists });
            }
            if self.eat_kw("INDEX") {
                let name = self.ident()?;
                self.expect_kw("ON")?;
                let table = self.ident()?;
                return Ok(Statement::DropIndex { name, table });
            }
            return Err(self.err("expected TABLE or INDEX after DROP"));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, filter });
        }
        Err(self.err("expected a SQL statement"))
    }

    fn if_exists(&mut self) -> SqlResult<bool> {
        if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn create_table(&mut self) -> SqlResult<Statement> {
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_symbol(Sym::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_symbol(Sym::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Sym::RParen)?;
            } else {
                columns.push(self.column_def()?);
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        // promote inline PRIMARY KEY markers
        for c in &columns {
            if c.primary_key && !primary_key.contains(&c.name) {
                primary_key.push(c.name.clone());
            }
        }
        Ok(Statement::CreateTable {
            name,
            if_not_exists,
            columns,
            primary_key,
        })
    }

    fn column_def(&mut self) -> SqlResult<ColumnDef> {
        let name = self.ident()?;
        let type_name = self.ident()?;
        let data_type = DataType::parse(&type_name)
            .ok_or_else(|| self.err(format!("unknown type {type_name}")))?;
        // swallow optional length like VARCHAR(255)
        if self.eat_symbol(Sym::LParen) {
            self.next();
            if self.eat_symbol(Sym::Comma) {
                self.next();
            }
            self.expect_symbol(Sym::RParen)?;
        }
        let mut def = ColumnDef {
            name,
            data_type,
            not_null: false,
            primary_key: false,
            default: None,
        };
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                def.not_null = true;
            } else if self.eat_kw("NULL") {
                // explicit nullable, no-op
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                def.primary_key = true;
            } else if self.eat_kw("DEFAULT") {
                def.default = Some(self.literal_value()?);
            } else if self.eat_kw("UNIQUE") {
                // tolerated; enforced only via CREATE UNIQUE INDEX
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn literal_value(&mut self) -> SqlResult<Value> {
        let neg = self.eat_symbol(Sym::Minus);
        let v = match self.next().kind {
            TokenKind::Int(i) => Value::Int(if neg { -i } else { i }),
            TokenKind::Float(f) => Value::Float(if neg { -f } else { f }),
            TokenKind::Str(s) if !neg => Value::Text(s),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") && !neg => Value::Null,
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") && !neg => Value::Bool(true),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") && !neg => Value::Bool(false),
            _ => return Err(self.err("expected literal")),
        };
        Ok(v)
    }

    fn create_index(&mut self, unique: bool) -> SqlResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
            unique,
        })
    }

    fn insert(&mut self) -> SqlResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol(Sym::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> SqlResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Sym::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn select(&mut self) -> SqlResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        if !distinct {
            self.eat_kw("ALL");
        }
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_kw("FROM") {
            from = Some(self.table_ref()?);
            loop {
                let kind = if self.eat_kw("INNER") {
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.eat_kw("LEFT") {
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                } else if self.eat_kw("JOIN") {
                    JoinKind::Inner
                } else {
                    break;
                };
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                joins.push(Join { kind, table, on });
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.usize_literal()?);
        }
        if self.eat_kw("OFFSET") {
            offset = Some(self.usize_literal()?);
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            filter,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn usize_literal(&mut self) -> SqlResult<usize> {
        match self.next().kind {
            TokenKind::Int(i) if i >= 0 => Ok(i as usize),
            _ => Err(self.err("expected non-negative integer")),
        }
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident(q) = &self.peek().kind {
            if self.tokens.get(self.i + 1).map(|t| &t.kind) == Some(&TokenKind::Symbol(Sym::Dot))
                && self.tokens.get(self.i + 2).map(|t| &t.kind)
                    == Some(&TokenKind::Symbol(Sym::Star))
            {
                let q = q.clone();
                self.next();
                self.next();
                self.next();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(s) = &self.peek().kind {
            // bare alias, unless it's a clause keyword
            let up = s.to_ascii_uppercase();
            if matches!(
                up.as_str(),
                "FROM"
                    | "WHERE"
                    | "GROUP"
                    | "HAVING"
                    | "ORDER"
                    | "LIMIT"
                    | "OFFSET"
                    | "JOIN"
                    | "INNER"
                    | "LEFT"
                    | "ON"
                    | "AND"
                    | "OR"
                    | "UNION"
                    | "ASC"
                    | "DESC"
            ) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let table = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(s) = &self.peek().kind {
            let up = s.to_ascii_uppercase();
            if matches!(
                up.as_str(),
                "WHERE"
                    | "GROUP"
                    | "HAVING"
                    | "ORDER"
                    | "LIMIT"
                    | "OFFSET"
                    | "JOIN"
                    | "INNER"
                    | "LEFT"
                    | "ON"
                    | "SET"
            ) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> SqlResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("NOT") {
            let e = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> SqlResult<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pat = self.additive()?;
            let like = Expr::Binary {
                op: BinOp::Like,
                left: Box::new(left),
                right: Box::new(pat),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(like),
                }
            } else {
                like
            });
        }
        if negated {
            return Err(self.err("expected IN, BETWEEN or LIKE after NOT"));
        }
        let op = match self.peek().kind {
            TokenKind::Symbol(Sym::Eq) => Some(BinOp::Eq),
            TokenKind::Symbol(Sym::Neq) => Some(BinOp::Neq),
            TokenKind::Symbol(Sym::Lt) => Some(BinOp::Lt),
            TokenKind::Symbol(Sym::Lte) => Some(BinOp::Lte),
            TokenKind::Symbol(Sym::Gt) => Some(BinOp::Gt),
            TokenKind::Symbol(Sym::Gte) => Some(BinOp::Gte),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.additive()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> SqlResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Symbol(Sym::Plus) => BinOp::Add,
                TokenKind::Symbol(Sym::Minus) => BinOp::Sub,
                TokenKind::Symbol(Sym::Concat) => BinOp::Concat,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> SqlResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Symbol(Sym::Star) => BinOp::Mul,
                TokenKind::Symbol(Sym::Slash) => BinOp::Div,
                TokenKind::Symbol(Sym::Percent) => BinOp::Mod,
                _ => break,
            };
            self.next();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> SqlResult<Expr> {
        if self.eat_symbol(Sym::Minus) {
            let e = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            });
        }
        if self.eat_symbol(Sym::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.next();
                Ok(Expr::lit(i))
            }
            TokenKind::Float(f) => {
                self.next();
                Ok(Expr::lit(f))
            }
            TokenKind::Str(s) => {
                self.next();
                Ok(Expr::Literal(Value::Text(s)))
            }
            TokenKind::Symbol(Sym::LParen) => {
                self.next();
                let e = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(id) => {
                let up = id.to_ascii_uppercase();
                // reserved words never parse as bare column references
                if matches!(
                    up.as_str(),
                    "FROM"
                        | "WHERE"
                        | "GROUP"
                        | "HAVING"
                        | "ORDER"
                        | "LIMIT"
                        | "OFFSET"
                        | "SELECT"
                        | "JOIN"
                        | "INNER"
                        | "LEFT"
                        | "ON"
                        | "AND"
                        | "OR"
                        | "WHEN"
                        | "THEN"
                        | "ELSE"
                        | "END"
                        | "SET"
                        | "VALUES"
                        | "BY"
                ) {
                    return Err(self.err(format!("unexpected keyword {up}")));
                }
                match up.as_str() {
                    "NULL" => {
                        self.next();
                        return Ok(Expr::Literal(Value::Null));
                    }
                    "TRUE" => {
                        self.next();
                        return Ok(Expr::lit(true));
                    }
                    "FALSE" => {
                        self.next();
                        return Ok(Expr::lit(false));
                    }
                    "DATE" | "TIMESTAMP" => {
                        // typed literal: DATE '2010-03-22'
                        if let Some(TokenKind::Str(_)) =
                            self.tokens.get(self.i + 1).map(|t| t.kind.clone())
                        {
                            self.next();
                            if let TokenKind::Str(s) = self.next().kind {
                                let ty = if up == "DATE" {
                                    DataType::Date
                                } else {
                                    DataType::Timestamp
                                };
                                return Ok(Expr::TypedLiteral { ty, text: s });
                            }
                            unreachable!()
                        }
                    }
                    "CASE" => {
                        self.next();
                        return self.case_expr();
                    }
                    _ => {}
                }
                self.next();
                // function call?
                if self.peek_symbol(Sym::LParen) {
                    self.next();
                    if let Some(func) = AggFunc::parse(&id) {
                        // COUNT(*) / AGG([DISTINCT] expr)
                        if func == AggFunc::Count && self.eat_symbol(Sym::Star) {
                            self.expect_symbol(Sym::RParen)?;
                            return Ok(Expr::Aggregate {
                                func,
                                arg: None,
                                distinct: false,
                            });
                        }
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = self.expr()?;
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::Aggregate {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.peek_symbol(Sym::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(Sym::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::Function { name: up, args });
                }
                // qualified column?
                if self.eat_symbol(Sym::Dot) {
                    let name = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(id),
                        name,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name: id,
                })
            }
            _ => Err(self.err("expected expression")),
        }
    }

    fn case_expr(&mut self) -> SqlResult<Expr> {
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_with_constraints() {
        let s = parse(
            "CREATE TABLE users (id BIGINT PRIMARY KEY, name TEXT NOT NULL, \
             score DOUBLE DEFAULT 0.5, created DATE)",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                primary_key,
                ..
            } => {
                assert_eq!(name, "users");
                assert_eq!(columns.len(), 4);
                assert!(columns[1].not_null);
                assert_eq!(columns[2].default, Some(Value::Float(0.5)));
                assert_eq!(primary_key, vec!["id".to_string()]);
            }
            _ => panic!("wrong statement"),
        }
    }

    #[test]
    fn parses_table_level_primary_key() {
        let s = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))").unwrap();
        match s {
            Statement::CreateTable { primary_key, .. } => {
                assert_eq!(primary_key, vec!["a".to_string(), "b".to_string()]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_full_select() {
        let s = parse(
            "SELECT DISTINCT d.name, SUM(f.amount) AS total \
             FROM facts f JOIN dims d ON f.dim_id = d.id \
             LEFT JOIN extra e ON e.id = f.id \
             WHERE f.amount > 10 AND d.region IN ('EU', 'US') \
             GROUP BY d.name HAVING SUM(f.amount) > 100 \
             ORDER BY total DESC, 1 ASC LIMIT 10 OFFSET 5",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.distinct);
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.joins.len(), 2);
        assert_eq!(sel.joins[1].kind, JoinKind::Left);
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].desc);
        assert_eq!(sel.limit, Some(10));
        assert_eq!(sel.offset, Some(5));
    }

    #[test]
    fn parses_insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert { columns, rows, .. } = s else {
            panic!()
        };
        assert_eq!(columns, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn parses_update_and_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'z' WHERE id = 3").unwrap();
        let Statement::Update { sets, filter, .. } = s else {
            panic!()
        };
        assert_eq!(sets.len(), 2);
        assert!(filter.is_some());
        let s = parse("DELETE FROM t").unwrap();
        assert!(matches!(s, Statement::Delete { filter: None, .. }));
    }

    #[test]
    fn operator_precedence() {
        let Statement::Select(sel) = parse("SELECT 1 + 2 * 3").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // must parse as 1 + (2 * 3)
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("expected Add at top: {expr:?}")
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_case_between_like_isnull() {
        let sql = "SELECT CASE WHEN a BETWEEN 1 AND 5 THEN 'low' ELSE 'hi' END, \
                   b LIKE 'x%', c IS NOT NULL, d NOT IN (1, 2) FROM t";
        assert!(parse(sql).is_ok());
    }

    #[test]
    fn parses_typed_literals_and_functions() {
        let sql = "SELECT UPPER(name), DATE '2010-03-22', COUNT(DISTINCT x) FROM t";
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        assert_eq!(sel.items.len(), 3);
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        assert!(parse("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse("SELECT 1 extra garbage +").is_err());
    }

    #[test]
    fn parses_script() {
        let stmts = parse_script("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);;").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(parse_script("SELECT 1 SELECT 2").is_err());
    }

    #[test]
    fn qualified_wildcard() {
        let Statement::Select(sel) = parse("SELECT t.* FROM t").unwrap() else {
            panic!()
        };
        assert_eq!(sel.items[0], SelectItem::QualifiedWildcard("t".into()));
    }

    #[test]
    fn bare_aliases() {
        let Statement::Select(sel) = parse("SELECT a total FROM t x WHERE x.a > 0").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { alias, .. } = &sel.items[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("total"));
        assert_eq!(sel.from.unwrap().alias.as_deref(), Some("x"));
    }
}
