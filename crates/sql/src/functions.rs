//! Scalar function library.

use std::sync::Arc;

use odbis_storage::{days_to_date, ColumnVec, DataType, Value};

use crate::error::{SqlError, SqlResult};

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // self-documenting
pub enum ScalarFunc {
    Abs,
    Round,
    Floor,
    Ceil,
    Sqrt,
    Upper,
    Lower,
    Length,
    Substr,
    Trim,
    Replace,
    Concat,
    Coalesce,
    NullIf,
    Year,
    Month,
    Day,
    Cast,
    Tumble,
}

impl ScalarFunc {
    /// Resolve a function by (upper-cased) name.
    pub fn resolve(name: &str) -> Option<ScalarFunc> {
        Some(match name {
            "ABS" => ScalarFunc::Abs,
            "ROUND" => ScalarFunc::Round,
            "FLOOR" => ScalarFunc::Floor,
            "CEIL" | "CEILING" => ScalarFunc::Ceil,
            "SQRT" => ScalarFunc::Sqrt,
            "UPPER" => ScalarFunc::Upper,
            "LOWER" => ScalarFunc::Lower,
            "LENGTH" | "LEN" => ScalarFunc::Length,
            "SUBSTR" | "SUBSTRING" => ScalarFunc::Substr,
            "TRIM" => ScalarFunc::Trim,
            "REPLACE" => ScalarFunc::Replace,
            "CONCAT" => ScalarFunc::Concat,
            "COALESCE" | "IFNULL" | "NVL" => ScalarFunc::Coalesce,
            "NULLIF" => ScalarFunc::NullIf,
            "YEAR" => ScalarFunc::Year,
            "MONTH" => ScalarFunc::Month,
            "DAY" => ScalarFunc::Day,
            "CAST" => ScalarFunc::Cast,
            "TUMBLE" => ScalarFunc::Tumble,
            _ => return None,
        })
    }

    /// Check argument count; returns a bind-time error message on mismatch.
    pub fn check_arity(self, n: usize) -> Result<(), String> {
        let ok = match self {
            ScalarFunc::Abs
            | ScalarFunc::Floor
            | ScalarFunc::Ceil
            | ScalarFunc::Sqrt
            | ScalarFunc::Upper
            | ScalarFunc::Lower
            | ScalarFunc::Length
            | ScalarFunc::Trim
            | ScalarFunc::Year
            | ScalarFunc::Month
            | ScalarFunc::Day => n == 1,
            ScalarFunc::Round => n == 1 || n == 2,
            ScalarFunc::Substr => n == 2 || n == 3,
            ScalarFunc::Replace => n == 3,
            ScalarFunc::NullIf => n == 2,
            ScalarFunc::Concat | ScalarFunc::Coalesce => n >= 1,
            ScalarFunc::Cast | ScalarFunc::Tumble => n == 2,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("wrong number of arguments ({n}) for {self:?}"))
        }
    }

    /// Evaluate the function over already-computed argument values.
    pub fn eval(self, args: &[Value]) -> SqlResult<Value> {
        use ScalarFunc::*;
        // NULL propagation for all but the NULL-handling functions.
        if !matches!(self, Coalesce | Concat | NullIf) && args.iter().any(Value::is_null) {
            return Ok(Value::Null);
        }
        Ok(match self {
            Abs => match &args[0] {
                Value::Int(i) => Value::Int(i.wrapping_abs()),
                Value::Float(f) => Value::Float(f.abs()),
                v => return type_err("ABS", v),
            },
            Round => {
                let digits = args.get(1).and_then(Value::as_i64).unwrap_or(0);
                match &args[0] {
                    Value::Int(i) => Value::Int(*i),
                    Value::Float(f) => {
                        let m = 10f64.powi(digits as i32);
                        Value::Float((f * m).round() / m)
                    }
                    v => return type_err("ROUND", v),
                }
            }
            Floor => match &args[0] {
                Value::Int(i) => Value::Int(*i),
                Value::Float(f) => Value::Float(f.floor()),
                v => return type_err("FLOOR", v),
            },
            Ceil => match &args[0] {
                Value::Int(i) => Value::Int(*i),
                Value::Float(f) => Value::Float(f.ceil()),
                v => return type_err("CEIL", v),
            },
            Sqrt => match args[0].as_f64() {
                Some(f) if f >= 0.0 => Value::Float(f.sqrt()),
                Some(_) => return Err(SqlError::Eval("SQRT of negative number".into())),
                None => return type_err("SQRT", &args[0]),
            },
            Upper => Value::Text(text_arg("UPPER", &args[0])?.to_uppercase()),
            Lower => Value::Text(text_arg("LOWER", &args[0])?.to_lowercase()),
            Length => Value::Int(text_arg("LENGTH", &args[0])?.chars().count() as i64),
            Substr => {
                let s = text_arg("SUBSTR", &args[0])?;
                let chars: Vec<char> = s.chars().collect();
                // SQL is 1-based
                let start = args[1]
                    .as_i64()
                    .ok_or_else(|| SqlError::Eval("SUBSTR start must be integer".into()))?;
                let start = (start.max(1) - 1) as usize;
                let len = match args.get(2) {
                    Some(v) => v
                        .as_i64()
                        .ok_or_else(|| SqlError::Eval("SUBSTR length must be integer".into()))?
                        .max(0) as usize,
                    None => chars.len().saturating_sub(start),
                };
                let end = (start + len).min(chars.len());
                let start = start.min(chars.len());
                Value::Text(chars[start..end].iter().collect())
            }
            Trim => Value::Text(text_arg("TRIM", &args[0])?.trim().to_string()),
            Replace => {
                let s = text_arg("REPLACE", &args[0])?;
                let from = text_arg("REPLACE", &args[1])?;
                let to = text_arg("REPLACE", &args[2])?;
                Value::Text(s.replace(from, to))
            }
            Concat => {
                let mut s = String::new();
                for a in args {
                    if !a.is_null() {
                        s.push_str(&a.render());
                    }
                }
                Value::Text(s)
            }
            Coalesce => args
                .iter()
                .find(|a| !a.is_null())
                .cloned()
                .unwrap_or(Value::Null),
            NullIf => {
                if args[0].sql_eq(&args[1]) == Some(true) {
                    Value::Null
                } else {
                    args[0].clone()
                }
            }
            Year | Month | Day => {
                let days = match &args[0] {
                    Value::Date(d) => *d,
                    Value::Timestamp(t) => t.div_euclid(86_400_000_000) as i32,
                    v => return type_err("date part", v),
                };
                let (y, m, d) = days_to_date(days);
                match self {
                    Year => Value::Int(i64::from(y)),
                    Month => Value::Int(i64::from(m)),
                    _ => Value::Int(i64::from(d)),
                }
            }
            Cast => {
                let ty_name = text_arg("CAST", &args[1])?;
                let ty = DataType::parse(ty_name)
                    .ok_or_else(|| SqlError::Eval(format!("unknown CAST target {ty_name}")))?;
                cast_value(&args[0], ty)?
            }
            Tumble => {
                // TUMBLE(ts, width): align a time/number onto the start of
                // its tumbling window. Width is in the column's own unit —
                // seconds for TIMESTAMP, days for DATE, plain units for
                // numbers. Floor division keeps negatives on the correct
                // (earlier) window edge.
                let w = args[1].as_i64().filter(|w| *w > 0).ok_or_else(|| {
                    SqlError::Eval("TUMBLE width must be a positive integer".into())
                })?;
                // Flooring toward the earlier edge can push past the type's
                // minimum (e.g. i64::MIN with width 3 aligns below i64::MIN),
                // so the multiply back must be checked — overflow is a
                // caller-visible eval error, never a wrap or a panic.
                let overflow =
                    |t: i64| SqlError::Eval(format!("TUMBLE overflow: value {t} with width {w}"));
                match &args[0] {
                    Value::Timestamp(t) => {
                        let w_us = w.checked_mul(1_000_000).ok_or_else(|| {
                            SqlError::Eval(format!("TUMBLE width {w}s overflows microseconds"))
                        })?;
                        Value::Timestamp(t.div_euclid(w_us).checked_mul(w_us).ok_or_else(|| overflow(*t))?)
                    }
                    Value::Date(d) => {
                        let w = i32::try_from(w).map_err(|_| {
                            SqlError::Eval(format!("TUMBLE width {w} is out of range for DATE"))
                        })?;
                        Value::Date(
                            d.div_euclid(w)
                                .checked_mul(w)
                                .ok_or_else(|| overflow(i64::from(*d)))?,
                        )
                    }
                    Value::Int(i) => Value::Int(i.div_euclid(w).checked_mul(w).ok_or_else(|| overflow(*i))?),
                    Value::Float(f) => {
                        let w = w as f64;
                        Value::Float((f / w).floor() * w)
                    }
                    v => return type_err("TUMBLE", v),
                }
            }
        })
    }

    /// Vectorized wrapper for the batch executor: element-wise
    /// [`ScalarFunc::eval`] over already-evaluated argument columns.
    /// `rows` is the batch length (needed for zero-argument edge cases).
    pub fn eval_columns(self, args: &[Arc<ColumnVec>], rows: usize) -> SqlResult<Arc<ColumnVec>> {
        let mut vals = Vec::with_capacity(rows);
        let mut argv: Vec<Value> = Vec::with_capacity(args.len());
        for i in 0..rows {
            argv.clear();
            argv.extend(args.iter().map(|c| c.value(i)));
            vals.push(self.eval(&argv)?);
        }
        Ok(Arc::new(ColumnVec::from_values(vals)))
    }
}

fn type_err(func: &str, v: &Value) -> SqlResult<Value> {
    Err(SqlError::Type(format!(
        "invalid argument for {func}: {}",
        v.render()
    )))
}

fn text_arg<'a>(func: &str, v: &'a Value) -> SqlResult<&'a str> {
    v.as_str()
        .ok_or_else(|| SqlError::Type(format!("{func} expects TEXT, got {}", v.render())))
}

/// Explicit cast used by `CAST(x, 'TYPE')` — wider than implicit coercion:
/// parses text into numbers/dates, renders anything to text.
pub fn cast_value(v: &Value, ty: DataType) -> SqlResult<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    if let Some(c) = v.coerce_to(ty) {
        return Ok(c);
    }
    let fail = || SqlError::Eval(format!("cannot cast {} to {ty}", v.render()));
    Ok(match (v, ty) {
        (_, DataType::Text) => Value::Text(v.render()),
        (Value::Text(s), DataType::Int) => Value::Int(s.trim().parse().map_err(|_| fail())?),
        (Value::Text(s), DataType::Float) => Value::Float(s.trim().parse().map_err(|_| fail())?),
        (Value::Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => return Err(fail()),
        },
        (Value::Text(s), DataType::Date) => {
            Value::Date(odbis_storage::parse_date(s.trim()).ok_or_else(fail)?)
        }
        (Value::Text(s), DataType::Timestamp) => {
            Value::Timestamp(odbis_storage::parse_timestamp(s.trim()).ok_or_else(fail)?)
        }
        (Value::Float(f), DataType::Int) => Value::Int(*f as i64),
        (Value::Bool(b), DataType::Int) => Value::Int(i64::from(*b)),
        (Value::Timestamp(t), DataType::Date) => Value::Date(t.div_euclid(86_400_000_000) as i32),
        _ => return Err(fail()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(f: ScalarFunc, args: &[Value]) -> Value {
        f.eval(args).unwrap()
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(ev(ScalarFunc::Abs, &[Value::Int(-3)]), Value::Int(3));
        assert_eq!(
            ev(ScalarFunc::Round, &[Value::Float(2.567), Value::Int(1)]),
            Value::Float(2.6)
        );
        assert_eq!(
            ev(ScalarFunc::Floor, &[Value::Float(2.9)]),
            Value::Float(2.0)
        );
        assert_eq!(ev(ScalarFunc::Sqrt, &[Value::Int(9)]), Value::Float(3.0));
        assert!(ScalarFunc::Sqrt.eval(&[Value::Int(-1)]).is_err());
    }

    #[test]
    fn string_functions() {
        assert_eq!(ev(ScalarFunc::Upper, &["ab".into()]), Value::from("AB"));
        assert_eq!(ev(ScalarFunc::Length, &["héllo".into()]), Value::Int(5));
        assert_eq!(
            ev(
                ScalarFunc::Substr,
                &["hello".into(), Value::Int(2), Value::Int(3)]
            ),
            Value::from("ell")
        );
        assert_eq!(
            ev(ScalarFunc::Substr, &["hello".into(), Value::Int(4)]),
            Value::from("lo")
        );
        assert_eq!(
            ev(
                ScalarFunc::Replace,
                &["aXbX".into(), "X".into(), "-".into()]
            ),
            Value::from("a-b-")
        );
        assert_eq!(
            ev(
                ScalarFunc::Concat,
                &["a".into(), Value::Null, Value::Int(3)]
            ),
            Value::from("a3")
        );
    }

    #[test]
    fn null_handling() {
        assert_eq!(ev(ScalarFunc::Upper, &[Value::Null]), Value::Null);
        assert_eq!(
            ev(
                ScalarFunc::Coalesce,
                &[Value::Null, Value::Int(2), Value::Int(3)]
            ),
            Value::Int(2)
        );
        assert_eq!(
            ev(ScalarFunc::NullIf, &[Value::Int(1), Value::Int(1)]),
            Value::Null
        );
        assert_eq!(
            ev(ScalarFunc::NullIf, &[Value::Int(1), Value::Int(2)]),
            Value::Int(1)
        );
    }

    #[test]
    fn date_parts() {
        let d = odbis_storage::parse_date("2010-03-22").unwrap();
        assert_eq!(ev(ScalarFunc::Year, &[Value::Date(d)]), Value::Int(2010));
        assert_eq!(ev(ScalarFunc::Month, &[Value::Date(d)]), Value::Int(3));
        assert_eq!(ev(ScalarFunc::Day, &[Value::Date(d)]), Value::Int(22));
    }

    #[test]
    fn casts() {
        assert_eq!(
            cast_value(&"42".into(), DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            cast_value(&Value::Float(2.9), DataType::Int).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            cast_value(&Value::Int(5), DataType::Text).unwrap(),
            Value::from("5")
        );
        assert!(cast_value(&"xyz".into(), DataType::Int).is_err());
        assert_eq!(
            cast_value(&"2010-03-22".into(), DataType::Date).unwrap(),
            Value::Date(odbis_storage::parse_date("2010-03-22").unwrap())
        );
    }

    #[test]
    fn tumble_windows() {
        // integers land on multiples of the width
        assert_eq!(
            ev(ScalarFunc::Tumble, &[Value::Int(2009), Value::Int(10)]),
            Value::Int(2000)
        );
        // negatives floor toward the earlier window
        assert_eq!(
            ev(ScalarFunc::Tumble, &[Value::Int(-3), Value::Int(10)]),
            Value::Int(-10)
        );
        // timestamps: width is in seconds
        let t = odbis_storage::parse_timestamp("2010-03-22 10:17:45").unwrap();
        let w = odbis_storage::parse_timestamp("2010-03-22 10:00:00").unwrap();
        assert_eq!(
            ev(ScalarFunc::Tumble, &[Value::Timestamp(t), Value::Int(3600)]),
            Value::Timestamp(w)
        );
        // dates: width is in days
        let d = odbis_storage::parse_date("2010-03-22").unwrap();
        let tumbled = ev(ScalarFunc::Tumble, &[Value::Date(d), Value::Int(7)]);
        assert_eq!(tumbled, Value::Date(d.div_euclid(7) * 7));
        // NULL propagates, bad width errors
        assert_eq!(
            ev(ScalarFunc::Tumble, &[Value::Null, Value::Int(10)]),
            Value::Null
        );
        assert!(ScalarFunc::Tumble
            .eval(&[Value::Int(5), Value::Int(0)])
            .is_err());
    }

    /// Alignment at the type extremes: flooring toward the earlier window
    /// edge must surface `SqlError::Eval` instead of wrapping (release) or
    /// panicking (debug) when the aligned edge falls below the type minimum.
    #[test]
    fn tumble_overflow_at_extremes_is_an_eval_error() {
        // i64::MIN is not a multiple of 3: the floor edge < i64::MIN
        for v in [Value::Int(i64::MIN), Value::Timestamp(i64::MIN)] {
            let err = ScalarFunc::Tumble.eval(&[v, Value::Int(3)]).unwrap_err();
            assert!(
                matches!(err, SqlError::Eval(ref m) if m.contains("overflow")),
                "expected eval overflow, got {err:?}"
            );
        }
        let err = ScalarFunc::Tumble
            .eval(&[Value::Date(i32::MIN), Value::Int(3)])
            .unwrap_err();
        assert!(matches!(err, SqlError::Eval(_)), "got {err:?}");
        // a multiple of the width at the minimum still aligns exactly
        assert_eq!(
            ev(ScalarFunc::Tumble, &[Value::Int(i64::MIN), Value::Int(2)]),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            ev(ScalarFunc::Tumble, &[Value::Int(i64::MAX), Value::Int(10)]),
            Value::Int(i64::MAX - 7)
        );
        // timestamp widths are scaled to microseconds: a huge width must
        // error on the scale step, not wrap
        assert!(ScalarFunc::Tumble
            .eval(&[Value::Timestamp(0), Value::Int(i64::MAX / 1_000)])
            .is_err());
        // DATE widths beyond i32 used to truncate silently
        assert!(ScalarFunc::Tumble
            .eval(&[Value::Date(10), Value::Int(i64::from(i32::MAX) + 1)])
            .is_err());
        // the vectorized wrapper surfaces the same error
        use std::sync::Arc;
        let vals = Arc::new(ColumnVec::from_values(vec![Value::Int(i64::MIN)]));
        let width = Arc::new(ColumnVec::from_values(vec![Value::Int(3)]));
        assert!(ScalarFunc::Tumble.eval_columns(&[vals, width], 1).is_err());
    }

    #[test]
    fn resolve_and_arity() {
        assert_eq!(ScalarFunc::resolve("COALESCE"), Some(ScalarFunc::Coalesce));
        assert_eq!(ScalarFunc::resolve("NOPE"), None);
        assert!(ScalarFunc::Substr.check_arity(1).is_err());
        assert!(ScalarFunc::Substr.check_arity(3).is_ok());
    }
}
