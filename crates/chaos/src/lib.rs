//! Deterministic fault injection for the ODBIS platform.
//!
//! A *failpoint* is a named site in production code (`"wal.fsync"`,
//! `"http.accept"`, ...) where a test — or an operator, via
//! `ODBIS_FAILPOINTS` / the admin API — can inject a failure policy:
//!
//! | policy                  | effect at the site                          |
//! |-------------------------|---------------------------------------------|
//! | `off`                   | nothing (site behaves normally)             |
//! | `return-err`            | every pass through the site fails           |
//! | `panic`                 | the site panics                             |
//! | `delay(ms)`             | the site sleeps `ms` milliseconds           |
//! | `err-every-nth(n)`      | every n-th pass fails (1-based)             |
//! | `err-with-prob(p[,s])`  | each pass fails with probability `p`, from a
//! |                         | deterministic per-site RNG seeded with `s`  |
//!
//! Sites are strings so lower layers (storage, web, esb) need no shared
//! enum; the registry is process-global. The fast path is a single relaxed
//! atomic load: when no site is armed, [`check`] costs one load and a
//! predictable branch, so instrumented hot paths (WAL append, HTTP accept)
//! pay nothing in production.
//!
//! The crate also hosts the platform's *resilience counters*: layers that
//! retry after a classified-transient failure call [`count_retry`], and
//! both failpoint triggers and retries are rendered in Prometheus text
//! format by [`render_prometheus`] for the `/api/v1/metrics` endpoint.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};

/// Sentinel meaning "the registry has not consulted `ODBIS_FAILPOINTS`
/// yet"; forces the first [`check`] through the slow path exactly once.
const UNINIT: u32 = u32::MAX;

/// Number of armed (non-`off`) sites; `UNINIT` before the env var is read.
static ACTIVE: AtomicU32 = AtomicU32::new(UNINIT);

/// Global site registry, lazily seeded from `ODBIS_FAILPOINTS`.
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Serializes tests that arm global failpoints (see [`exclusive`]).
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// The failure policy armed at one site.
#[derive(Debug, Clone, PartialEq)]
pub enum FailPolicy {
    /// Site behaves normally.
    Off,
    /// Every pass through the site fails.
    ReturnErr,
    /// The site panics (exercises panic containment above it).
    Panic,
    /// The site sleeps this many milliseconds, then succeeds.
    Delay(u64),
    /// Every n-th pass through the site fails (1-based; `n = 1` fails
    /// every pass, `n = 3` fails passes 3, 6, 9, ...).
    ErrEveryNth(u64),
    /// Each pass fails with probability `prob`, drawn from a per-site
    /// xorshift RNG seeded with `seed` — deterministic across runs.
    ErrWithProb {
        /// Failure probability in `[0, 1]`.
        prob: f64,
        /// RNG seed; the same seed replays the same trigger pattern.
        seed: u64,
    },
}

impl FailPolicy {
    /// Parse one policy from the spec grammar (see module docs).
    pub fn parse(s: &str) -> Result<FailPolicy, String> {
        let s = s.trim();
        if let Some(args) = s.strip_prefix("delay(").and_then(|r| r.strip_suffix(')')) {
            let ms: u64 = args
                .trim()
                .parse()
                .map_err(|_| format!("bad delay millis: {args:?}"))?;
            return Ok(FailPolicy::Delay(ms));
        }
        if let Some(args) = s
            .strip_prefix("err-every-nth(")
            .and_then(|r| r.strip_suffix(')'))
        {
            let n: u64 = args
                .trim()
                .parse()
                .map_err(|_| format!("bad err-every-nth count: {args:?}"))?;
            if n == 0 {
                return Err("err-every-nth count must be >= 1".into());
            }
            return Ok(FailPolicy::ErrEveryNth(n));
        }
        if let Some(args) = s
            .strip_prefix("err-with-prob(")
            .and_then(|r| r.strip_suffix(')'))
        {
            let mut parts = args.splitn(2, ',');
            let p_str = parts.next().unwrap_or("").trim();
            let prob: f64 = p_str
                .parse()
                .map_err(|_| format!("bad probability: {p_str:?}"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("probability out of [0,1]: {prob}"));
            }
            let seed = match parts.next() {
                Some(s_str) => s_str
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed: {s_str:?}"))?,
                None => 0xB1ED0C5,
            };
            return Ok(FailPolicy::ErrWithProb { prob, seed });
        }
        match s {
            "off" => Ok(FailPolicy::Off),
            "return-err" => Ok(FailPolicy::ReturnErr),
            "panic" => Ok(FailPolicy::Panic),
            other => Err(format!("unknown failpoint policy: {other:?}")),
        }
    }
}

impl fmt::Display for FailPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailPolicy::Off => write!(f, "off"),
            FailPolicy::ReturnErr => write!(f, "return-err"),
            FailPolicy::Panic => write!(f, "panic"),
            FailPolicy::Delay(ms) => write!(f, "delay({ms})"),
            FailPolicy::ErrEveryNth(n) => write!(f, "err-every-nth({n})"),
            FailPolicy::ErrWithProb { prob, seed } => write!(f, "err-with-prob({prob},{seed})"),
        }
    }
}

/// The error a triggered failpoint injects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointError {
    /// Site that fired.
    pub site: String,
}

impl fmt::Display for FailpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected failpoint {}", self.site)
    }
}

impl std::error::Error for FailpointError {}

struct SiteState {
    policy: FailPolicy,
    /// Passes through the site since it was armed.
    hits: u64,
    /// Times the site actually injected a fault (err/panic/delay).
    triggered: u64,
    /// Per-site xorshift64* state for `err-with-prob`.
    rng: u64,
}

#[derive(Default)]
struct Registry {
    sites: BTreeMap<String, SiteState>,
    retries: BTreeMap<String, u64>,
}

/// Lock the registry, seeding it from `ODBIS_FAILPOINTS` on first use.
fn registry() -> MutexGuard<'static, Option<Registry>> {
    let mut guard = REGISTRY.lock();
    if guard.is_none() {
        let mut reg = Registry::default();
        if let Ok(spec) = std::env::var("ODBIS_FAILPOINTS") {
            // A bad env spec must not take down the process on some random
            // first instrumented call; report on stderr and ignore.
            if let Err(e) = apply_spec_to(&mut reg, &spec) {
                eprintln!("odbis-chaos: ignoring bad ODBIS_FAILPOINTS: {e}");
            }
        }
        store_active(&reg);
        *guard = Some(reg);
    }
    guard
}

fn store_active(reg: &Registry) {
    let armed = reg
        .sites
        .values()
        .filter(|s| s.policy != FailPolicy::Off)
        .count() as u32;
    ACTIVE.store(armed, Ordering::Relaxed);
}

fn apply_spec_to(reg: &mut Registry, spec: &str) -> Result<usize, String> {
    let mut armed = 0;
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, policy) = part
            .split_once('=')
            .ok_or_else(|| format!("expected site=policy, got {part:?}"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("empty site name in {part:?}"));
        }
        let policy = FailPolicy::parse(policy)?;
        set_in(reg, site, policy);
        armed += 1;
    }
    Ok(armed)
}

fn set_in(reg: &mut Registry, site: &str, policy: FailPolicy) {
    if policy == FailPolicy::Off {
        reg.sites.remove(site);
        return;
    }
    let rng_seed = match policy {
        FailPolicy::ErrWithProb { seed, .. } => seed.max(1),
        _ => 1,
    };
    reg.sites.insert(
        site.to_string(),
        SiteState {
            policy,
            hits: 0,
            triggered: 0,
            rng: rng_seed,
        },
    );
}

/// Evaluate the failpoint at `site`.
///
/// Returns `Err(FailpointError)` when an armed policy decides this pass
/// should fail; `Ok(())` otherwise (including always, for `delay`, after
/// sleeping). `panic` policies panic here. When nothing is armed this is
/// a single relaxed atomic load.
#[inline]
pub fn check(site: &str) -> Result<(), FailpointError> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    check_slow(site)
}

/// `check(site).is_err()`, for call sites that inject a custom fault shape
/// (short write, dropped socket) instead of returning the injected error.
#[inline]
pub fn triggered(site: &str) -> bool {
    check(site).is_err()
}

#[cold]
fn check_slow(site: &str) -> Result<(), FailpointError> {
    let delay_ms;
    {
        let mut guard = registry();
        let reg = guard.as_mut().expect("registry initialized");
        let Some(st) = reg.sites.get_mut(site) else {
            return Ok(());
        };
        st.hits += 1;
        let fire = match st.policy {
            FailPolicy::Off => false,
            FailPolicy::ReturnErr | FailPolicy::Panic => true,
            FailPolicy::Delay(_) => true,
            FailPolicy::ErrEveryNth(n) => st.hits % n == 0,
            FailPolicy::ErrWithProb { prob, .. } => {
                // xorshift64*: deterministic per-site stream.
                let mut x = st.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                st.rng = x;
                let draw = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
                draw < prob
            }
        };
        if !fire {
            return Ok(());
        }
        st.triggered += 1;
        match st.policy {
            FailPolicy::Panic => panic!("injected failpoint panic at {site}"),
            FailPolicy::Delay(ms) => delay_ms = Some(ms),
            _ => delay_ms = None,
        }
    }
    // Sleep outside the registry lock so a delayed site never stalls
    // other sites (or other threads arming/clearing policies).
    if let Some(ms) = delay_ms {
        std::thread::sleep(Duration::from_millis(ms));
        return Ok(());
    }
    Err(FailpointError { site: site.into() })
}

/// Arm `site` with `policy` (replacing any previous policy; `Off` disarms).
pub fn set(site: &str, policy: FailPolicy) {
    let mut guard = registry();
    let reg = guard.as_mut().expect("registry initialized");
    set_in(reg, site, policy);
    store_active(reg);
}

/// Disarm `site`.
pub fn remove(site: &str) {
    set(site, FailPolicy::Off);
}

/// Disarm every site and zero the retry counters.
pub fn clear() {
    let mut guard = registry();
    let reg = guard.as_mut().expect("registry initialized");
    reg.sites.clear();
    reg.retries.clear();
    store_active(reg);
}

/// Apply a full `site=policy[;site=policy...]` spec string (the
/// `ODBIS_FAILPOINTS` / admin-API grammar). Returns how many entries the
/// spec contained. On parse error nothing before the bad entry is rolled
/// back, matching env-var behavior.
pub fn apply_spec(spec: &str) -> Result<usize, String> {
    let mut guard = registry();
    let reg = guard.as_mut().expect("registry initialized");
    let r = apply_spec_to(reg, spec);
    store_active(reg);
    r
}

/// `(site, policy, hits, triggered)` for every armed site, sorted by site.
pub fn snapshot() -> Vec<(String, String, u64, u64)> {
    let mut guard = registry();
    let reg = guard.as_mut().expect("registry initialized");
    reg.sites
        .iter()
        .map(|(site, st)| (site.clone(), st.policy.to_string(), st.hits, st.triggered))
        .collect()
}

/// Times `site` has injected a fault since it was armed.
pub fn triggered_count(site: &str) -> u64 {
    let mut guard = registry();
    let reg = guard.as_mut().expect("registry initialized");
    reg.sites.get(site).map_or(0, |s| s.triggered)
}

/// Record that `op` was retried after a classified-transient failure
/// (checkpoint retry, ESB redelivery, ...).
pub fn count_retry(op: &str) {
    let mut guard = registry();
    let reg = guard.as_mut().expect("registry initialized");
    *reg.retries.entry(op.to_string()).or_insert(0) += 1;
}

/// Total retries recorded for `op`.
pub fn retry_count(op: &str) -> u64 {
    let mut guard = registry();
    let reg = guard.as_mut().expect("registry initialized");
    reg.retries.get(op).copied().unwrap_or(0)
}

/// Render `odbis_failpoint_triggered_total` and `odbis_retries_total` in
/// Prometheus text format (appended to the platform metrics endpoint).
pub fn render_prometheus() -> String {
    let mut guard = registry();
    let reg = guard.as_mut().expect("registry initialized");
    let mut out = String::new();
    out.push_str("# HELP odbis_failpoint_triggered_total Faults injected per failpoint site.\n");
    out.push_str("# TYPE odbis_failpoint_triggered_total counter\n");
    for (site, st) in &reg.sites {
        out.push_str(&format!(
            "odbis_failpoint_triggered_total{{site=\"{site}\"}} {}\n",
            st.triggered
        ));
    }
    out.push_str("# HELP odbis_retries_total Retries after classified-transient failures.\n");
    out.push_str("# TYPE odbis_retries_total counter\n");
    for (op, n) in &reg.retries {
        out.push_str(&format!("odbis_retries_total{{op=\"{op}\"}} {n}\n"));
    }
    out
}

/// Arms `site` with `policy` for the guard's lifetime; disarms on drop.
/// Intended for tests — pair with [`exclusive`] when the test binary runs
/// tests in parallel, since the registry is process-global.
pub struct ScopedFailpoint {
    site: String,
}

impl ScopedFailpoint {
    /// Arm `site` with `policy` until the guard drops.
    pub fn new(site: &str, policy: FailPolicy) -> ScopedFailpoint {
        set(site, policy);
        ScopedFailpoint { site: site.into() }
    }
}

impl Drop for ScopedFailpoint {
    fn drop(&mut self) {
        remove(&self.site);
    }
}

/// Take the process-wide chaos test lock. Tests that arm global failpoints
/// hold this so parallel tests in the same binary don't see each other's
/// faults. (Separate test binaries are separate processes and need no
/// coordination.)
pub fn exclusive() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_site_is_ok_and_costs_one_load() {
        let _x = exclusive();
        clear();
        assert!(check("nothing.armed").is_ok());
        assert_eq!(ACTIVE.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn return_err_fires_every_time_and_counts() {
        let _x = exclusive();
        clear();
        let _g = ScopedFailpoint::new("t.always", FailPolicy::ReturnErr);
        for _ in 0..3 {
            let e = check("t.always").unwrap_err();
            assert_eq!(e.site, "t.always");
            assert!(e.to_string().contains("t.always"));
        }
        assert_eq!(triggered_count("t.always"), 3);
        assert!(check("t.other").is_ok(), "unarmed sites unaffected");
    }

    #[test]
    fn err_every_nth_fires_on_schedule() {
        let _x = exclusive();
        clear();
        let _g = ScopedFailpoint::new("t.nth", FailPolicy::ErrEveryNth(3));
        let fired: Vec<bool> = (0..9).map(|_| check("t.nth").is_err()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn err_with_prob_is_deterministic_per_seed() {
        let _x = exclusive();
        clear();
        let run = |seed| {
            set("t.prob", FailPolicy::ErrWithProb { prob: 0.5, seed });
            let v: Vec<bool> = (0..64).map(|_| check("t.prob").is_err()).collect();
            remove("t.prob");
            v
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same trigger pattern");
        assert_ne!(a, c, "different seed, different pattern");
        let fires = a.iter().filter(|f| **f).count();
        assert!((10..=54).contains(&fires), "p=0.5 over 64 draws: {fires}");
    }

    #[test]
    #[should_panic(expected = "injected failpoint panic at t.boom")]
    fn panic_policy_panics() {
        // NB: deliberately not holding `exclusive()` (panicking while
        // holding the parking_lot guard would not poison it, but keep the
        // site name unique instead).
        set("t.boom", FailPolicy::Panic);
        let _ = check("t.boom");
    }

    #[test]
    fn delay_sleeps_then_succeeds() {
        let _x = exclusive();
        clear();
        let _g = ScopedFailpoint::new("t.slow", FailPolicy::Delay(20));
        let t0 = std::time::Instant::now();
        assert!(check("t.slow").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(18));
        assert_eq!(triggered_count("t.slow"), 1);
    }

    #[test]
    fn spec_grammar_round_trips() {
        let _x = exclusive();
        clear();
        let n = apply_spec(
            "wal.fsync=err-every-nth(3); http.accept = err-with-prob(0.25, 42) ;x=delay(5)",
        )
        .unwrap();
        assert_eq!(n, 3);
        let snap = snapshot();
        let sites: Vec<&str> = snap.iter().map(|(s, ..)| s.as_str()).collect();
        assert_eq!(sites, vec!["http.accept", "wal.fsync", "x"]);
        assert_eq!(snap[1].1, "err-every-nth(3)");
        assert_eq!(snap[0].1, "err-with-prob(0.25,42)");
        // off disarms
        apply_spec("x=off").unwrap();
        assert_eq!(snapshot().len(), 2);
        clear();
        assert_eq!(snapshot().len(), 0);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FailPolicy::parse("explode").is_err());
        assert!(FailPolicy::parse("err-every-nth(0)").is_err());
        assert!(FailPolicy::parse("err-with-prob(1.5)").is_err());
        assert!(FailPolicy::parse("delay(abc)").is_err());
        assert!(apply_spec("no-equals-sign").is_err());
        assert!(apply_spec("=return-err").is_err());
    }

    #[test]
    fn retry_counters_accumulate_and_render() {
        let _x = exclusive();
        clear();
        count_retry("checkpoint");
        count_retry("checkpoint");
        count_retry("esb.redeliver");
        assert_eq!(retry_count("checkpoint"), 2);
        let _g = ScopedFailpoint::new("t.render", FailPolicy::ReturnErr);
        let _ = check("t.render");
        let text = render_prometheus();
        assert!(text.contains("odbis_failpoint_triggered_total{site=\"t.render\"} 1"));
        assert!(text.contains("odbis_retries_total{op=\"checkpoint\"} 2"));
        assert!(text.contains("odbis_retries_total{op=\"esb.redeliver\"} 1"));
        clear();
    }
}
