//! The message bus: channels, endpoints and the delivery pump.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::message::Message;

/// Ceiling for one redelivery backoff sleep: exponential growth stops
/// here so a misconfigured base can't stall the pump for seconds.
const REDELIVERY_BACKOFF_CAP_MS: u64 = 250;

/// Errors from the service bus.
#[derive(Debug, Clone, PartialEq)]
pub enum BusError {
    /// A channel name is not registered.
    UnknownChannel(String),
    /// A channel with the same name already exists.
    DuplicateChannel(String),
    /// The pump exceeded its hop budget (probable routing loop).
    HopLimit(usize),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            BusError::DuplicateChannel(c) => write!(f, "duplicate channel {c}"),
            BusError::HopLimit(n) => write!(f, "message exceeded hop limit {n} (routing loop?)"),
        }
    }
}

impl std::error::Error for BusError {}

/// A routing function: picks the destination channel per message.
pub type RouteFn = Box<dyn Fn(&Message) -> Option<String> + Send + Sync>;
/// A message transformation function.
pub type TransformFn = Box<dyn Fn(&Message) -> Message + Send + Sync>;
/// A filter predicate.
pub type AcceptFn = Box<dyn Fn(&Message) -> bool + Send + Sync>;
/// A terminal message handler.
pub type HandlerFn = Box<dyn Fn(&Message) -> Result<(), String> + Send + Sync>;

/// What an endpoint does with a message.
pub enum Endpoint {
    /// Forward to another channel chosen per message.
    Router(RouteFn),
    /// Rewrite the message and forward to a fixed channel.
    Transformer {
        /// Destination channel.
        to: String,
        /// Transformation function.
        transform: TransformFn,
    },
    /// Drop messages failing the predicate (they go to the dead-letter
    /// queue); pass the rest to a fixed channel.
    Filter {
        /// Destination channel for accepted messages.
        to: String,
        /// Acceptance predicate.
        accept: AcceptFn,
    },
    /// Terminal consumer (a service). Returning `Err` sends the message to
    /// the dead-letter queue with the error recorded in a header.
    ServiceActivator(HandlerFn),
}

struct ChannelState {
    queue: VecDeque<Message>,
    /// Endpoints subscribed to this channel (fan-out: each gets a copy).
    subscribers: Vec<Endpoint>,
    delivered: u64,
}

/// An enterprise-service-bus: named channels wired to endpoints, with a
/// deterministic synchronous pump and a dead-letter queue.
///
/// This is the reproduction's substitute for the Spring Integration module
/// the paper plans to use for interoperability between the data warehousing
/// tools and BI APIs of the technical-resources layer (ODBIS §3.1).
pub struct MessageBus {
    inner: Arc<Mutex<BusInner>>,
}

struct BusInner {
    channels: BTreeMap<String, ChannelState>,
    dead_letter: Vec<Message>,
    hop_limit: usize,
    /// Extra delivery attempts a failing [`Endpoint::ServiceActivator`]
    /// gets before the message dead-letters.
    redelivery_limit: usize,
    /// Base backoff between redelivery attempts (doubled per attempt,
    /// capped at [`REDELIVERY_BACKOFF_CAP_MS`]); 0 retries immediately.
    redelivery_backoff_ms: u64,
    /// Total redelivery attempts performed since construction.
    redeliveries: u64,
}

impl Default for MessageBus {
    fn default() -> Self {
        MessageBus::new()
    }
}

impl MessageBus {
    /// Empty bus with a hop budget of 10 000 deliveries per pump run.
    pub fn new() -> Self {
        MessageBus {
            inner: Arc::new(Mutex::new(BusInner {
                channels: BTreeMap::new(),
                dead_letter: Vec::new(),
                hop_limit: 10_000,
                redelivery_limit: 2,
                redelivery_backoff_ms: 0,
                redeliveries: 0,
            })),
        }
    }

    /// Register a channel.
    pub fn create_channel(&self, name: &str) -> Result<(), BusError> {
        let mut inner = self.inner.lock();
        if inner.channels.contains_key(name) {
            return Err(BusError::DuplicateChannel(name.to_string()));
        }
        inner.channels.insert(
            name.to_string(),
            ChannelState {
                queue: VecDeque::new(),
                subscribers: Vec::new(),
                delivered: 0,
            },
        );
        Ok(())
    }

    /// Attach an endpoint to a channel; every message sent to the channel
    /// is delivered to every endpoint (publish-subscribe).
    pub fn subscribe(&self, channel: &str, endpoint: Endpoint) -> Result<(), BusError> {
        let mut inner = self.inner.lock();
        inner
            .channels
            .get_mut(channel)
            .ok_or_else(|| BusError::UnknownChannel(channel.to_string()))?
            .subscribers
            .push(endpoint);
        Ok(())
    }

    /// Enqueue a message (does not process it — call [`MessageBus::pump`]).
    pub fn send(&self, channel: &str, message: Message) -> Result<(), BusError> {
        let mut inner = self.inner.lock();
        inner
            .channels
            .get_mut(channel)
            .ok_or_else(|| BusError::UnknownChannel(channel.to_string()))?
            .queue
            .push_back(message);
        Ok(())
    }

    /// Process queued messages until every queue is empty. Returns the
    /// number of endpoint deliveries performed.
    pub fn pump(&self) -> Result<usize, BusError> {
        let mut deliveries = 0usize;
        loop {
            // take one message from the first non-empty channel
            let (message, endpoints_len, channel) = {
                let mut inner = self.inner.lock();
                let Some((name, st)) = inner
                    .channels
                    .iter_mut()
                    .find(|(_, st)| !st.queue.is_empty())
                else {
                    return Ok(deliveries);
                };
                let msg = st.queue.pop_front().expect("non-empty");
                st.delivered += 1;
                (msg, st.subscribers.len(), name.clone())
            };
            if endpoints_len == 0 {
                // unroutable: dead-letter
                let mut inner = self.inner.lock();
                let msg = message
                    .clone()
                    .with_header("dead-letter-reason", "no subscribers")
                    .with_header("dead-letter-channel", channel.clone());
                inner.dead_letter.push(msg);
                continue;
            }
            for i in 0..endpoints_len {
                deliveries += 1;
                if deliveries > self.inner.lock().hop_limit {
                    return Err(BusError::HopLimit(self.inner.lock().hop_limit));
                }
                // evaluate endpoint without holding the lock during sends
                enum Outcome {
                    Forward(String, Message),
                    DeadLetter(Message, String),
                    Done,
                }
                let is_activator = {
                    let inner = self.inner.lock();
                    let st = inner.channels.get(&channel).expect("channel exists");
                    matches!(st.subscribers[i], Endpoint::ServiceActivator(_))
                };
                let outcome = if is_activator {
                    // Terminal consumer: a failing handler is *redelivered*
                    // (retried) with capped exponential backoff before the
                    // message dead-letters. Each attempt re-takes the lock
                    // so backoff sleeps never stall other bus users.
                    let (limit, backoff) = {
                        let inner = self.inner.lock();
                        (inner.redelivery_limit, inner.redelivery_backoff_ms)
                    };
                    let mut attempt = 0usize;
                    loop {
                        let result = {
                            let inner = self.inner.lock();
                            let st = inner.channels.get(&channel).expect("channel exists");
                            let Endpoint::ServiceActivator(handler) = &st.subscribers[i] else {
                                unreachable!("subscriber kind checked above")
                            };
                            match odbis_chaos::check("esb.dispatch") {
                                Err(e) => Err(e.to_string()),
                                Ok(()) => handler(&message),
                            }
                        };
                        match result {
                            Ok(()) => break Outcome::Done,
                            Err(_) if attempt < limit => {
                                attempt += 1;
                                self.inner.lock().redeliveries += 1;
                                odbis_chaos::count_retry("esb.redeliver");
                                if backoff > 0 {
                                    let ms =
                                        (backoff << (attempt - 1)).min(REDELIVERY_BACKOFF_CAP_MS);
                                    std::thread::sleep(Duration::from_millis(ms));
                                }
                            }
                            Err(e) => {
                                break Outcome::DeadLetter(
                                    message.clone().with_header(
                                        "delivery-attempts",
                                        (attempt + 1).to_string(),
                                    ),
                                    e,
                                )
                            }
                        }
                    }
                } else {
                    let inner = self.inner.lock();
                    let st = inner.channels.get(&channel).expect("channel exists");
                    match &st.subscribers[i] {
                        Endpoint::Router(route) => match route(&message) {
                            Some(to) => Outcome::Forward(to, message.clone()),
                            None => Outcome::DeadLetter(
                                message.clone(),
                                "router returned no destination".to_string(),
                            ),
                        },
                        Endpoint::Transformer { to, transform } => {
                            Outcome::Forward(to.clone(), transform(&message))
                        }
                        Endpoint::Filter { to, accept } => {
                            if accept(&message) {
                                Outcome::Forward(to.clone(), message.clone())
                            } else {
                                Outcome::DeadLetter(
                                    message.clone(),
                                    "rejected by filter".to_string(),
                                )
                            }
                        }
                        Endpoint::ServiceActivator(_) => {
                            unreachable!("subscriber kind checked above")
                        }
                    }
                };
                match outcome {
                    Outcome::Forward(to, msg) => {
                        self.send(&to, msg)?;
                    }
                    Outcome::DeadLetter(msg, reason) => {
                        let mut inner = self.inner.lock();
                        inner.dead_letter.push(
                            msg.with_header("dead-letter-reason", reason)
                                .with_header("dead-letter-channel", channel.clone()),
                        );
                    }
                    Outcome::Done => {}
                }
            }
        }
    }

    /// Send then pump (convenience for request-style interactions).
    pub fn send_and_pump(&self, channel: &str, message: Message) -> Result<usize, BusError> {
        self.send(channel, message)?;
        self.pump()
    }

    /// Drain the dead-letter queue.
    pub fn take_dead_letters(&self) -> Vec<Message> {
        std::mem::take(&mut self.inner.lock().dead_letter)
    }

    /// Number of messages delivered per channel so far.
    pub fn delivery_counts(&self) -> BTreeMap<String, u64> {
        self.inner
            .lock()
            .channels
            .iter()
            .map(|(n, st)| (n.clone(), st.delivered))
            .collect()
    }

    /// Registered channel names.
    pub fn channel_names(&self) -> Vec<String> {
        self.inner.lock().channels.keys().cloned().collect()
    }

    /// Configure redelivery for failing service activators: up to `limit`
    /// extra attempts, sleeping `backoff_ms * 2^(attempt-1)` (capped) in
    /// between. `limit = 0` restores fail-fast dead-lettering.
    pub fn set_redelivery(&self, limit: usize, backoff_ms: u64) {
        let mut inner = self.inner.lock();
        inner.redelivery_limit = limit;
        inner.redelivery_backoff_ms = backoff_ms;
    }

    /// Total redelivery attempts performed since construction.
    pub fn redelivery_count(&self) -> u64 {
        self.inner.lock().redeliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn channel_lifecycle_and_errors() {
        let bus = MessageBus::new();
        bus.create_channel("a").unwrap();
        assert!(matches!(
            bus.create_channel("a"),
            Err(BusError::DuplicateChannel(_))
        ));
        assert!(matches!(
            bus.send("ghost", Message::text("x")),
            Err(BusError::UnknownChannel(_))
        ));
        assert_eq!(bus.channel_names(), vec!["a".to_string()]);
    }

    #[test]
    fn service_activator_consumes() {
        let bus = MessageBus::new();
        bus.create_channel("in").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        bus.subscribe(
            "in",
            Endpoint::ServiceActivator(Box::new(move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })),
        )
        .unwrap();
        bus.send("in", Message::text("1")).unwrap();
        bus.send("in", Message::text("2")).unwrap();
        let deliveries = bus.pump().unwrap();
        assert_eq!(deliveries, 2);
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert!(bus.take_dead_letters().is_empty());
    }

    #[test]
    fn router_transformer_filter_pipeline() {
        let bus = MessageBus::new();
        for c in ["ingress", "reports", "other", "sink"] {
            bus.create_channel(c).unwrap();
        }
        // route by `kind` header
        bus.subscribe(
            "ingress",
            Endpoint::Router(Box::new(|m| {
                m.header("kind").map(|k| {
                    if k == "report" {
                        "reports".to_string()
                    } else {
                        "other".to_string()
                    }
                })
            })),
        )
        .unwrap();
        // transform: upper-case payload
        bus.subscribe(
            "reports",
            Endpoint::Transformer {
                to: "sink".into(),
                transform: Box::new(|m| {
                    let text = m.payload.as_text().unwrap_or("").to_uppercase();
                    m.derive(Payload::Text(text))
                }),
            },
        )
        .unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        bus.subscribe(
            "sink",
            Endpoint::ServiceActivator(Box::new(move |m| {
                s2.lock().push(m.payload.as_text().unwrap().to_string());
                Ok(())
            })),
        )
        .unwrap();
        bus.send(
            "ingress",
            Message::text("daily sales").with_header("kind", "report"),
        )
        .unwrap();
        bus.send("ingress", Message::text("noise").with_header("kind", "etl"))
            .unwrap();
        bus.pump().unwrap();
        assert_eq!(*seen.lock(), vec!["DAILY SALES".to_string()]);
        // the 'other' channel has no subscribers -> dead letter
        let dead = bus.take_dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].header("dead-letter-reason"), Some("no subscribers"));
    }

    #[test]
    fn filter_rejects_to_dead_letter() {
        let bus = MessageBus::new();
        bus.create_channel("in").unwrap();
        bus.create_channel("out").unwrap();
        bus.subscribe(
            "in",
            Endpoint::Filter {
                to: "out".into(),
                accept: Box::new(|m| m.header("tenant").is_some()),
            },
        )
        .unwrap();
        bus.subscribe("out", Endpoint::ServiceActivator(Box::new(|_| Ok(()))))
            .unwrap();
        bus.send("in", Message::text("ok").with_header("tenant", "t1"))
            .unwrap();
        bus.send("in", Message::text("anonymous")).unwrap();
        bus.pump().unwrap();
        let dead = bus.take_dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(
            dead[0].header("dead-letter-reason"),
            Some("rejected by filter")
        );
    }

    #[test]
    fn failing_handler_dead_letters_with_reason() {
        let bus = MessageBus::new();
        bus.create_channel("in").unwrap();
        bus.subscribe(
            "in",
            Endpoint::ServiceActivator(Box::new(|_| Err("boom".to_string()))),
        )
        .unwrap();
        bus.send_and_pump("in", Message::text("x")).unwrap();
        let dead = bus.take_dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].header("dead-letter-reason"), Some("boom"));
    }

    #[test]
    fn transient_handler_failure_is_redelivered_not_dead_lettered() {
        let bus = MessageBus::new();
        bus.create_channel("in").unwrap();
        // fails the first two attempts, succeeds on the third — exactly
        // the default redelivery budget (2 extra attempts)
        let calls = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&calls);
        bus.subscribe(
            "in",
            Endpoint::ServiceActivator(Box::new(move |_| {
                if c2.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".to_string())
                } else {
                    Ok(())
                }
            })),
        )
        .unwrap();
        bus.send_and_pump("in", Message::text("x")).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(bus.redelivery_count(), 2);
        assert!(bus.take_dead_letters().is_empty());
    }

    #[test]
    fn exhausted_redelivery_records_attempts_on_the_dead_letter() {
        let bus = MessageBus::new();
        bus.create_channel("in").unwrap();
        bus.set_redelivery(1, 0);
        bus.subscribe(
            "in",
            Endpoint::ServiceActivator(Box::new(|_| Err("down".to_string()))),
        )
        .unwrap();
        bus.send_and_pump("in", Message::text("x")).unwrap();
        let dead = bus.take_dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].header("dead-letter-reason"), Some("down"));
        assert_eq!(dead[0].header("delivery-attempts"), Some("2"));
        assert_eq!(bus.redelivery_count(), 1);
    }

    #[test]
    fn dispatch_failpoint_injects_then_redelivery_recovers() {
        let _guard = odbis_chaos::exclusive();
        // every 2nd dispatch through the site is cut: message 1 goes clean
        // (pass 1), message 2 is injected (pass 2) and recovers on its
        // redelivery (pass 3)
        let _fp = odbis_chaos::ScopedFailpoint::new(
            "esb.dispatch",
            odbis_chaos::FailPolicy::ErrEveryNth(2),
        );
        let bus = MessageBus::new();
        bus.create_channel("in").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        bus.subscribe(
            "in",
            Endpoint::ServiceActivator(Box::new(move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })),
        )
        .unwrap();
        bus.send("in", Message::text("a")).unwrap();
        bus.send("in", Message::text("b")).unwrap();
        bus.pump().unwrap();
        // both messages reached the handler; the injected cut only cost a retry
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert_eq!(bus.redelivery_count(), 1);
        assert!(bus.take_dead_letters().is_empty());
    }

    #[test]
    fn routing_loop_hits_hop_limit() {
        let bus = MessageBus::new();
        bus.create_channel("a").unwrap();
        bus.create_channel("b").unwrap();
        bus.subscribe("a", Endpoint::Router(Box::new(|_| Some("b".into()))))
            .unwrap();
        bus.subscribe("b", Endpoint::Router(Box::new(|_| Some("a".into()))))
            .unwrap();
        bus.send("a", Message::text("loop")).unwrap();
        assert!(matches!(bus.pump(), Err(BusError::HopLimit(_))));
    }

    #[test]
    fn fan_out_to_multiple_subscribers() {
        let bus = MessageBus::new();
        bus.create_channel("in").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let c = Arc::clone(&count);
            bus.subscribe(
                "in",
                Endpoint::ServiceActivator(Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })),
            )
            .unwrap();
        }
        bus.send_and_pump("in", Message::text("x")).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 3);
        assert_eq!(bus.delivery_counts()["in"], 1);
    }
}
