//! # odbis-esb
//!
//! A lightweight enterprise service bus — the reproduction's substitute for
//! the Spring Integration module the ODBIS paper plans to use to ensure
//! "interoperability between all of these tools and APIs" in the
//! technical-resources layer (§3.1).
//!
//! Pipes-and-filters: named channels carry [`Message`]s to [`Endpoint`]s —
//! routers, transformers, filters and service activators — with a
//! deterministic synchronous pump, publish-subscribe fan-out and a
//! dead-letter queue for unroutable or failed messages.
//!
//! ```
//! use odbis_esb::{Endpoint, Message, MessageBus};
//!
//! let bus = MessageBus::new();
//! bus.create_channel("events").unwrap();
//! bus.subscribe("events", Endpoint::ServiceActivator(Box::new(|m| {
//!     assert_eq!(m.payload.as_text(), Some("hello"));
//!     Ok(())
//! }))).unwrap();
//! bus.send_and_pump("events", Message::text("hello")).unwrap();
//! ```

#![warn(missing_docs)]

mod bus;
mod message;

pub use bus::{AcceptFn, BusError, Endpoint, HandlerFn, MessageBus, RouteFn, TransformFn};
pub use message::{Message, Payload};
