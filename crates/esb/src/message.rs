//! Messages flowing through the service bus.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic message-id source (process-wide).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Message payload kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Plain text.
    Text(String),
    /// A JSON document (already serialized).
    Json(String),
    /// Raw bytes.
    Binary(Vec<u8>),
}

impl Payload {
    /// Text view of the payload (Text and Json variants).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Payload::Text(s) | Payload::Json(s) => Some(s),
            Payload::Binary(_) => None,
        }
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Text(s) | Payload::Json(s) => s.len(),
            Payload::Binary(b) => b.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A message: id + headers + payload (the Spring Integration `Message<T>`
/// analogue).
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Bus-unique id.
    pub id: u64,
    /// String headers (routing keys, tenant ids, correlation ids...).
    pub headers: BTreeMap<String, String>,
    /// Payload.
    pub payload: Payload,
}

impl Message {
    /// New text message.
    pub fn text(payload: impl Into<String>) -> Self {
        Message {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            headers: BTreeMap::new(),
            payload: Payload::Text(payload.into()),
        }
    }

    /// New JSON message.
    pub fn json(payload: impl Into<String>) -> Self {
        Message {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            headers: BTreeMap::new(),
            payload: Payload::Json(payload.into()),
        }
    }

    /// Builder-style header setter.
    pub fn with_header(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.insert(key.into(), value.into());
        self
    }

    /// Header accessor.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.get(key).map(String::as_str)
    }

    /// Derive a new message (fresh id, headers copied) with a new payload —
    /// used by transformers.
    pub fn derive(&self, payload: Payload) -> Message {
        Message {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            headers: self.headers.clone(),
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_headers_work() {
        let a = Message::text("x").with_header("tenant", "t1");
        let b = Message::text("y");
        assert_ne!(a.id, b.id);
        assert_eq!(a.header("tenant"), Some("t1"));
        assert_eq!(a.header("missing"), None);
    }

    #[test]
    fn derive_keeps_headers_fresh_id() {
        let a = Message::json("{}").with_header("k", "v");
        let b = a.derive(Payload::Text("done".into()));
        assert_ne!(a.id, b.id);
        assert_eq!(b.header("k"), Some("v"));
        assert_eq!(b.payload.as_text(), Some("done"));
    }

    #[test]
    fn payload_views() {
        assert_eq!(Payload::Text("ab".into()).len(), 2);
        assert!(Payload::Binary(vec![]).is_empty());
        assert_eq!(Payload::Binary(vec![1]).as_text(), None);
    }
}
