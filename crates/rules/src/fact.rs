//! Facts and working memory.

use std::collections::{BTreeMap, HashMap};

use odbis_storage::Value;

/// Handle to a fact in working memory.
pub type FactId = u64;

/// A fact: a typed bag of named values ("Order", "Tenant", "UsageEvent"...).
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Fact type name (the Drools "declared type").
    pub fact_type: String,
    /// Field values.
    pub fields: BTreeMap<String, Value>,
}

impl Fact {
    /// Start an empty fact of the given type.
    pub fn new(fact_type: impl Into<String>) -> Self {
        Fact {
            fact_type: fact_type.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Builder-style field setter.
    pub fn with(mut self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.insert(field.into(), value.into());
        self
    }

    /// Field accessor (`Value::Null` for missing fields).
    pub fn get(&self, field: &str) -> Value {
        self.fields.get(field).cloned().unwrap_or(Value::Null)
    }
}

/// Working memory: the set of facts the engine matches rules against.
///
/// Facts are addressed by [`FactId`]; insertion order is the recency used
/// for conflict resolution. An alpha index by fact type supports Rete-style
/// incremental matching.
#[derive(Debug, Default, Clone)]
pub struct WorkingMemory {
    facts: HashMap<FactId, Fact>,
    by_type: HashMap<String, Vec<FactId>>,
    next_id: FactId,
}

impl WorkingMemory {
    /// Empty working memory.
    pub fn new() -> Self {
        WorkingMemory::default()
    }

    /// Assert a fact; returns its handle.
    pub fn insert(&mut self, fact: Fact) -> FactId {
        let id = self.next_id;
        self.next_id += 1;
        self.by_type
            .entry(fact.fact_type.clone())
            .or_default()
            .push(id);
        self.facts.insert(id, fact);
        id
    }

    /// Retract a fact.
    pub fn retract(&mut self, id: FactId) -> Option<Fact> {
        let fact = self.facts.remove(&id)?;
        if let Some(ids) = self.by_type.get_mut(&fact.fact_type) {
            ids.retain(|&x| x != id);
        }
        Some(fact)
    }

    /// Update one field of a fact in place. Returns false if the fact is
    /// gone.
    pub fn modify(&mut self, id: FactId, field: &str, value: Value) -> bool {
        match self.facts.get_mut(&id) {
            Some(f) => {
                f.fields.insert(field.to_string(), value);
                true
            }
            None => false,
        }
    }

    /// Fetch a fact.
    pub fn get(&self, id: FactId) -> Option<&Fact> {
        self.facts.get(&id)
    }

    /// Ids of all facts of a type, in assertion order.
    pub fn ids_of_type(&self, fact_type: &str) -> &[FactId] {
        self.by_type.get(fact_type).map_or(&[], |v| v.as_slice())
    }

    /// All `(id, fact)` pairs, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts.iter().map(|(&id, f)| (id, f))
    }

    /// Number of live facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether memory is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_retract() {
        let mut wm = WorkingMemory::new();
        let id = wm.insert(Fact::new("Order").with("amount", 100i64));
        assert_eq!(wm.get(id).unwrap().get("amount"), Value::Int(100));
        assert_eq!(wm.get(id).unwrap().get("missing"), Value::Null);
        assert_eq!(wm.ids_of_type("Order"), &[id]);
        let f = wm.retract(id).unwrap();
        assert_eq!(f.fact_type, "Order");
        assert!(wm.get(id).is_none());
        assert!(wm.ids_of_type("Order").is_empty());
        assert!(wm.retract(id).is_none());
    }

    #[test]
    fn modify_in_place() {
        let mut wm = WorkingMemory::new();
        let id = wm.insert(Fact::new("T").with("x", 1i64));
        assert!(wm.modify(id, "x", Value::Int(2)));
        assert_eq!(wm.get(id).unwrap().get("x"), Value::Int(2));
        assert!(!wm.modify(999, "x", Value::Int(3)));
    }

    #[test]
    fn type_index_tracks_order() {
        let mut wm = WorkingMemory::new();
        let a = wm.insert(Fact::new("A"));
        let b = wm.insert(Fact::new("A"));
        wm.insert(Fact::new("B"));
        assert_eq!(wm.ids_of_type("A"), &[a, b]);
        assert_eq!(wm.len(), 3);
    }
}
