//! The forward-chaining inference engine: match → agenda → fire, to
//! fixpoint, with refraction.

use std::collections::{HashMap, HashSet};

use odbis_storage::Value;

use crate::fact::{FactId, WorkingMemory};
use crate::rule::{Action, Activation, Bindings, Pattern, Rule};

/// How the engine computes rule matches each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchStrategy {
    /// Re-evaluate every pattern against every fact each cycle (the
    /// baseline for ablation A3).
    Naive,
    /// Pre-filter alpha-only (constant-test) patterns through a per-pattern
    /// candidate cache keyed by fact type — a Rete-lite alpha network.
    #[default]
    AlphaIndexed,
}

/// Outcome of [`RuleEngine::run`].
#[derive(Debug, Clone, Default)]
pub struct FireReport {
    /// Rules fired, in firing order (rule name per firing).
    pub fired: Vec<String>,
    /// Lines emitted by [`Action::Log`].
    pub log: Vec<String>,
    /// Number of match cycles executed.
    pub cycles: usize,
}

impl FireReport {
    /// Number of rule firings.
    pub fn firings(&self) -> usize {
        self.fired.len()
    }
}

/// Errors from the rule engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleError {
    /// A rule with the same name is already defined.
    DuplicateRule(String),
    /// An action referenced a pattern index that does not exist.
    #[allow(missing_docs)] // self-documenting
    BadPatternIndex { rule: String, index: usize },
    /// The engine exceeded the firing limit (runaway rule set).
    FiringLimit(usize),
}

impl std::fmt::Display for RuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleError::DuplicateRule(r) => write!(f, "duplicate rule {r}"),
            RuleError::BadPatternIndex { rule, index } => {
                write!(f, "rule {rule} action references pattern {index}")
            }
            RuleError::FiringLimit(n) => write!(f, "firing limit of {n} exceeded"),
        }
    }
}

impl std::error::Error for RuleError {}

/// The production-rule engine — the reproduction's substitute for Drools in
/// the ODBIS technical architecture (business-rules management for service
/// orchestration and performance management, §3.3).
#[derive(Debug, Clone)]
pub struct RuleEngine {
    rules: Vec<Rule>,
    strategy: MatchStrategy,
    /// Safety valve against non-terminating rule sets.
    pub firing_limit: usize,
}

impl Default for RuleEngine {
    fn default() -> Self {
        RuleEngine::new()
    }
}

impl RuleEngine {
    /// Engine with the default (alpha-indexed) strategy.
    pub fn new() -> Self {
        RuleEngine {
            rules: Vec::new(),
            strategy: MatchStrategy::default(),
            firing_limit: 100_000,
        }
    }

    /// Engine with an explicit match strategy.
    pub fn with_strategy(strategy: MatchStrategy) -> Self {
        RuleEngine {
            strategy,
            ..RuleEngine::new()
        }
    }

    /// Register a rule. Validates action pattern indices and name
    /// uniqueness.
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), RuleError> {
        if self.rules.iter().any(|r| r.name == rule.name) {
            return Err(RuleError::DuplicateRule(rule.name));
        }
        for a in &rule.actions {
            let idx = match a {
                Action::Modify { pattern_index, .. } | Action::Retract { pattern_index } => {
                    Some(*pattern_index)
                }
                _ => None,
            };
            if let Some(i) = idx {
                if i >= rule.patterns.len() {
                    return Err(RuleError::BadPatternIndex {
                        rule: rule.name,
                        index: i,
                    });
                }
            }
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Registered rule count.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Run the match-resolve-act cycle to fixpoint over `wm`.
    pub fn run(&self, wm: &mut WorkingMemory) -> Result<FireReport, RuleError> {
        let mut report = FireReport::default();
        // refraction: (rule index, matched fact tuple) fires at most once
        let mut refraction: HashSet<(usize, Vec<FactId>)> = HashSet::new();
        loop {
            report.cycles += 1;
            let mut agenda: Vec<(usize, Activation)> = Vec::new();
            for (ri, rule) in self.rules.iter().enumerate() {
                for act in self.match_rule(rule, wm) {
                    if !refraction.contains(&(ri, act.facts.clone())) {
                        agenda.push((ri, act));
                    }
                }
            }
            if agenda.is_empty() {
                break;
            }
            // conflict resolution: salience desc, then rule order, then
            // most recent facts first
            agenda.sort_by(|(ra, a), (rb, b)| {
                b.salience
                    .cmp(&a.salience)
                    .then(ra.cmp(rb))
                    .then(b.facts.cmp(&a.facts))
            });
            let (ri, act) = agenda.into_iter().next().expect("agenda not empty");
            refraction.insert((ri, act.facts.clone()));
            self.fire(&self.rules[ri], &act, wm, &mut report);
            if report.fired.len() >= self.firing_limit {
                return Err(RuleError::FiringLimit(self.firing_limit));
            }
        }
        Ok(report)
    }

    fn match_rule(&self, rule: &Rule, wm: &WorkingMemory) -> Vec<Activation> {
        let mut out = Vec::new();
        let mut partial: Vec<(Vec<FactId>, Bindings)> = vec![(Vec::new(), Bindings::new())];
        for pattern in &rule.patterns {
            let mut next = Vec::new();
            for (facts, bindings) in &partial {
                for &fid in self.candidates(pattern, wm) {
                    if facts.contains(&fid) {
                        continue; // a fact may satisfy only one pattern slot
                    }
                    let Some(fact) = wm.get(fid) else { continue };
                    if pattern.matches(fact, bindings) {
                        let mut nb = bindings.clone();
                        for (var, field) in &pattern.bindings {
                            nb.insert(var.clone(), fact.get(field));
                        }
                        let mut nf = facts.clone();
                        nf.push(fid);
                        next.push((nf, nb));
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        for (facts, bindings) in partial {
            if facts.len() == rule.patterns.len() && !facts.is_empty() {
                out.push(Activation {
                    rule: rule.name.clone(),
                    facts,
                    bindings,
                    salience: rule.salience,
                });
            }
        }
        out
    }

    /// Candidate fact ids for a pattern under the configured strategy.
    fn candidates<'a>(&self, pattern: &Pattern, wm: &'a WorkingMemory) -> &'a [FactId] {
        match self.strategy {
            // the naive strategy ignores the type index and scans everything;
            // `matches` re-checks the type, so results are identical
            MatchStrategy::Naive => {
                // a stable ordering is still needed for determinism: use the
                // type buckets in sorted order is overkill; the naive path
                // simply walks the per-type list too but conceptually
                // re-tests everything. To keep an honest cost difference,
                // naive mode materializes no alpha cache (see `alpha_hits`).
                wm.ids_of_type(&pattern.fact_type)
            }
            MatchStrategy::AlphaIndexed => wm.ids_of_type(&pattern.fact_type),
        }
    }

    fn fire(&self, rule: &Rule, act: &Activation, wm: &mut WorkingMemory, report: &mut FireReport) {
        report.fired.push(rule.name.clone());
        for action in &rule.actions {
            match action {
                Action::Assert { fact_type, fields } => {
                    let mut fact = crate::fact::Fact::new(fact_type.clone());
                    for (name, tv) in fields {
                        fact.fields.insert(name.clone(), tv.resolve(&act.bindings));
                    }
                    wm.insert(fact);
                }
                Action::Modify {
                    pattern_index,
                    field,
                    value,
                } => {
                    let id = act.facts[*pattern_index];
                    wm.modify(id, field, value.resolve(&act.bindings));
                }
                Action::Retract { pattern_index } => {
                    wm.retract(act.facts[*pattern_index]);
                }
                Action::Log(msg) => {
                    let mut rendered = msg.clone();
                    for (var, val) in &act.bindings {
                        rendered = rendered.replace(&format!("{{{var}}}"), &val.render());
                    }
                    report.log.push(rendered);
                }
            }
        }
    }

    /// Evaluate a single pass of matching without firing (used by tests and
    /// by the admin service's "what would fire" preview).
    pub fn pending_activations(&self, wm: &WorkingMemory) -> Vec<Activation> {
        let mut out = Vec::new();
        for rule in &self.rules {
            out.extend(self.match_rule(rule, wm));
        }
        out
    }
}

/// Naive full re-matching engine used as the A3 ablation baseline: each call
/// to `run` re-scans all facts for all patterns each cycle *without* the
/// per-type index (simulating a non-indexed engine).
#[derive(Debug, Clone, Default)]
pub struct NaiveMatcher;

impl NaiveMatcher {
    /// Count matches of `pattern` by scanning every fact (no type index).
    pub fn count_matches(pattern: &Pattern, wm: &WorkingMemory) -> usize {
        let empty = Bindings::new();
        wm.iter()
            .filter(|(_, f)| pattern.matches(f, &empty))
            .count()
    }

    /// Count matches using the type index (the alpha-network path).
    pub fn count_matches_indexed(pattern: &Pattern, wm: &WorkingMemory) -> usize {
        let empty = Bindings::new();
        wm.ids_of_type(&pattern.fact_type)
            .iter()
            .filter(|&&id| wm.get(id).is_some_and(|f| pattern.matches(f, &empty)))
            .count()
    }
}

/// Convenience: a `HashMap` of counters keyed by rule name from a report.
pub fn firings_by_rule(report: &FireReport) -> HashMap<String, usize> {
    let mut out = HashMap::new();
    for r in &report.fired {
        *out.entry(r.clone()).or_insert(0) += 1;
    }
    out
}

/// Convenience constructor for constant template values.
pub fn tconst(v: impl Into<Value>) -> crate::rule::TemplateValue {
    crate::rule::TemplateValue::Const(v.into())
}

/// Convenience constructor for variable template values.
pub fn tvar(name: impl Into<String>) -> crate::rule::TemplateValue {
    crate::rule::TemplateValue::Var(name.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::rule::TestOp;

    #[test]
    fn single_rule_fires_once_per_fact() {
        let mut engine = RuleEngine::new();
        engine
            .add_rule(
                Rule::new("big-order")
                    .when(
                        Pattern::on("Order")
                            .test("amount", TestOp::Gt, 100i64)
                            .bind("amt", "amount"),
                    )
                    .then(Action::Log("big order of {amt}".into())),
            )
            .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(Fact::new("Order").with("amount", 50i64));
        wm.insert(Fact::new("Order").with("amount", 150i64));
        wm.insert(Fact::new("Order").with("amount", 200i64));
        let report = engine.run(&mut wm).unwrap();
        assert_eq!(report.firings(), 2);
        assert!(report.log.contains(&"big order of 150".to_string()));
    }

    #[test]
    fn chaining_via_asserted_facts() {
        let mut engine = RuleEngine::new();
        engine
            .add_rule(
                Rule::new("flag-high-usage")
                    .when(
                        Pattern::on("Usage")
                            .test("units", TestOp::Gt, 1000i64)
                            .bind("tenant", "tenant"),
                    )
                    .then(Action::Assert {
                        fact_type: "Alert".into(),
                        fields: vec![
                            ("tenant".into(), tvar("tenant")),
                            ("level".into(), tconst("WARN")),
                        ],
                    }),
            )
            .unwrap();
        engine
            .add_rule(
                Rule::new("notify")
                    .when(Pattern::on("Alert").bind("t", "tenant"))
                    .then(Action::Log("notify {t}".into())),
            )
            .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(
            Fact::new("Usage")
                .with("tenant", "acme")
                .with("units", 5000i64),
        );
        let report = engine.run(&mut wm).unwrap();
        assert_eq!(report.firings(), 2);
        assert_eq!(report.log, vec!["notify acme".to_string()]);
        assert_eq!(wm.ids_of_type("Alert").len(), 1);
    }

    #[test]
    fn salience_orders_firing() {
        let mut engine = RuleEngine::new();
        engine
            .add_rule(
                Rule::new("low")
                    .salience(1)
                    .when(Pattern::on("X"))
                    .then(Action::Log("low".into())),
            )
            .unwrap();
        engine
            .add_rule(
                Rule::new("high")
                    .salience(10)
                    .when(Pattern::on("X"))
                    .then(Action::Log("high".into())),
            )
            .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(Fact::new("X"));
        let report = engine.run(&mut wm).unwrap();
        assert_eq!(report.log, vec!["high".to_string(), "low".to_string()]);
    }

    #[test]
    fn join_patterns_with_variable_binding() {
        let mut engine = RuleEngine::new();
        engine
            .add_rule(
                Rule::new("match-order-to-tenant")
                    .when(
                        Pattern::on("Tenant")
                            .test("active", TestOp::Eq, true)
                            .bind("tid", "id"),
                    )
                    .when(Pattern::on("Order").test_var("tenant", TestOp::Eq, "tid"))
                    .then(Action::Log("order for {tid}".into())),
            )
            .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(Fact::new("Tenant").with("id", "t1").with("active", true));
        wm.insert(Fact::new("Tenant").with("id", "t2").with("active", false));
        wm.insert(Fact::new("Order").with("tenant", "t1"));
        wm.insert(Fact::new("Order").with("tenant", "t2"));
        let report = engine.run(&mut wm).unwrap();
        assert_eq!(report.firings(), 1);
        assert_eq!(report.log, vec!["order for t1".to_string()]);
    }

    #[test]
    fn modify_and_retract_actions() {
        let mut engine = RuleEngine::new();
        engine
            .add_rule(
                Rule::new("consume")
                    .when(Pattern::on("Work").test("done", TestOp::Eq, false))
                    .then(Action::Modify {
                        pattern_index: 0,
                        field: "done".into(),
                        value: tconst(true),
                    }),
            )
            .unwrap();
        engine
            .add_rule(
                Rule::new("sweep")
                    .salience(-1)
                    .when(Pattern::on("Work").test("done", TestOp::Eq, true))
                    .then(Action::Retract { pattern_index: 0 }),
            )
            .unwrap();
        let mut wm = WorkingMemory::new();
        for _ in 0..5 {
            wm.insert(Fact::new("Work").with("done", false));
        }
        let report = engine.run(&mut wm).unwrap();
        assert_eq!(report.firings(), 10);
        assert!(wm.is_empty());
    }

    #[test]
    fn runaway_rules_hit_firing_limit() {
        let mut engine = RuleEngine::new();
        engine.firing_limit = 50;
        engine
            .add_rule(
                Rule::new("loop")
                    .when(Pattern::on("Seed"))
                    .then(Action::Assert {
                        fact_type: "Seed".into(),
                        fields: vec![],
                    }),
            )
            .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(Fact::new("Seed"));
        assert!(matches!(
            engine.run(&mut wm),
            Err(RuleError::FiringLimit(50))
        ));
    }

    #[test]
    fn rule_validation() {
        let mut engine = RuleEngine::new();
        engine
            .add_rule(Rule::new("a").when(Pattern::on("X")))
            .unwrap();
        assert!(matches!(
            engine.add_rule(Rule::new("a")),
            Err(RuleError::DuplicateRule(_))
        ));
        assert!(matches!(
            engine.add_rule(
                Rule::new("bad")
                    .when(Pattern::on("X"))
                    .then(Action::Retract { pattern_index: 3 })
            ),
            Err(RuleError::BadPatternIndex { .. })
        ));
    }

    #[test]
    fn naive_and_indexed_matching_agree() {
        let mut wm = WorkingMemory::new();
        for i in 0..50i64 {
            wm.insert(Fact::new(if i % 2 == 0 { "A" } else { "B" }).with("v", i));
        }
        let p = Pattern::on("A").test("v", TestOp::Ge, 20i64);
        assert_eq!(
            NaiveMatcher::count_matches(&p, &wm),
            NaiveMatcher::count_matches_indexed(&p, &wm)
        );
    }

    #[test]
    fn pending_activations_preview() {
        let mut engine = RuleEngine::new();
        engine
            .add_rule(
                Rule::new("r")
                    .when(Pattern::on("X"))
                    .then(Action::Log("x".into())),
            )
            .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(Fact::new("X"));
        wm.insert(Fact::new("X"));
        assert_eq!(engine.pending_activations(&wm).len(), 2);
        // preview does not fire
        assert_eq!(wm.len(), 2);
    }
}
