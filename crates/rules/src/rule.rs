//! Rule definitions: patterns, tests, bindings and actions.

use std::collections::BTreeMap;

use odbis_storage::Value;

use crate::fact::{Fact, FactId};

/// Comparison operators usable in pattern tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // self-documenting
pub enum TestOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl TestOp {
    /// Apply the operator; NULL operands never satisfy a test.
    pub fn apply(self, left: &Value, right: &Value) -> bool {
        let Some(ord) = left.sql_cmp(right) else {
            return false;
        };
        use std::cmp::Ordering::*;
        match self {
            TestOp::Eq => ord == Equal,
            TestOp::Ne => ord != Equal,
            TestOp::Lt => ord == Less,
            TestOp::Le => ord != Greater,
            TestOp::Gt => ord == Greater,
            TestOp::Ge => ord != Less,
        }
    }
}

/// Right-hand side of a test: a constant or a variable bound earlier.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum Operand {
    /// Literal value.
    Const(Value),
    /// Variable bound by a previous pattern's [`Pattern::bind`].
    Var(String),
}

/// One field test inside a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Test {
    /// Field of the matched fact.
    pub field: String,
    /// Comparison operator.
    pub op: TestOp,
    /// Comparand.
    pub operand: Operand,
}

/// A pattern: matches facts of one type, applies tests, and binds fields
/// to variables for use in later patterns and in actions.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Fact type to match.
    pub fact_type: String,
    /// Field tests (all must pass).
    pub tests: Vec<Test>,
    /// `(variable, field)` bindings exported by this pattern.
    pub bindings: Vec<(String, String)>,
}

impl Pattern {
    /// Match facts of `fact_type`.
    pub fn on(fact_type: impl Into<String>) -> Self {
        Pattern {
            fact_type: fact_type.into(),
            tests: Vec::new(),
            bindings: Vec::new(),
        }
    }

    /// Add a constant test.
    pub fn test(mut self, field: impl Into<String>, op: TestOp, value: impl Into<Value>) -> Self {
        self.tests.push(Test {
            field: field.into(),
            op,
            operand: Operand::Const(value.into()),
        });
        self
    }

    /// Add a test against a variable bound by an earlier pattern.
    pub fn test_var(
        mut self,
        field: impl Into<String>,
        op: TestOp,
        var: impl Into<String>,
    ) -> Self {
        self.tests.push(Test {
            field: field.into(),
            op,
            operand: Operand::Var(var.into()),
        });
        self
    }

    /// Bind `field` of the matched fact to `var`.
    pub fn bind(mut self, var: impl Into<String>, field: impl Into<String>) -> Self {
        self.bindings.push((var.into(), field.into()));
        self
    }

    /// True if `fact` satisfies all tests under `bindings`. Tests whose
    /// variable is unbound fail.
    pub fn matches(&self, fact: &Fact, bindings: &Bindings) -> bool {
        if fact.fact_type != self.fact_type {
            return false;
        }
        self.tests.iter().all(|t| {
            let left = fact.get(&t.field);
            let right = match &t.operand {
                Operand::Const(v) => v.clone(),
                Operand::Var(name) => match bindings.get(name) {
                    Some(v) => v.clone(),
                    None => return false,
                },
            };
            t.op.apply(&left, &right)
        })
    }

    /// True if every test compares against a constant (such patterns can be
    /// pre-filtered in an alpha memory).
    pub fn is_alpha_only(&self) -> bool {
        self.tests
            .iter()
            .all(|t| matches!(t.operand, Operand::Const(_)))
    }
}

/// Variable bindings accumulated while matching a rule's patterns.
pub type Bindings = BTreeMap<String, Value>;

/// Template value in an action: constant or bound variable.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateValue {
    /// Literal.
    Const(Value),
    /// Substituted from the match bindings.
    Var(String),
}

impl TemplateValue {
    /// Resolve against bindings (missing variables become NULL).
    pub fn resolve(&self, bindings: &Bindings) -> Value {
        match self {
            TemplateValue::Const(v) => v.clone(),
            TemplateValue::Var(n) => bindings.get(n).cloned().unwrap_or(Value::Null),
        }
    }
}

/// Declarative rule effects (the Drools RHS, without arbitrary code).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum Action {
    /// Assert a new fact built from templates.
    Assert {
        fact_type: String,
        fields: Vec<(String, TemplateValue)>,
    },
    /// Modify a field of the fact matched by pattern `pattern_index`.
    Modify {
        pattern_index: usize,
        field: String,
        value: TemplateValue,
    },
    /// Retract the fact matched by pattern `pattern_index`.
    Retract { pattern_index: usize },
    /// Emit a log line (visible in [`crate::FireReport::log`]).
    Log(String),
}

/// A production rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (unique within a [`crate::RuleEngine`]).
    pub name: String,
    /// Conflict-resolution priority: higher fires first.
    pub salience: i32,
    /// Left-hand side.
    pub patterns: Vec<Pattern>,
    /// Right-hand side.
    pub actions: Vec<Action>,
}

impl Rule {
    /// Start a rule with default salience 0.
    pub fn new(name: impl Into<String>) -> Self {
        Rule {
            name: name.into(),
            salience: 0,
            patterns: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// Set the salience.
    pub fn salience(mut self, s: i32) -> Self {
        self.salience = s;
        self
    }

    /// Add a pattern.
    pub fn when(mut self, p: Pattern) -> Self {
        self.patterns.push(p);
        self
    }

    /// Add an action.
    pub fn then(mut self, a: Action) -> Self {
        self.actions.push(a);
        self
    }
}

/// A rule activation: the rule plus the tuple of facts that matched.
#[derive(Debug, Clone, PartialEq)]
pub struct Activation {
    /// Name of the activated rule.
    pub rule: String,
    /// Matched fact ids, one per pattern.
    pub facts: Vec<FactId>,
    /// Bindings captured during the match.
    pub bindings: Bindings,
    /// Salience copied from the rule (for agenda ordering).
    pub salience: i32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_ops_with_nulls() {
        assert!(TestOp::Eq.apply(&Value::Int(1), &Value::Int(1)));
        assert!(TestOp::Lt.apply(&Value::Int(1), &Value::Float(1.5)));
        assert!(!TestOp::Eq.apply(&Value::Null, &Value::Null));
        assert!(!TestOp::Ne.apply(&Value::Int(1), &Value::Null));
    }

    #[test]
    fn pattern_matching_with_constants_and_vars() {
        let f = Fact::new("Order")
            .with("amount", 120i64)
            .with("tenant", "t1");
        let p = Pattern::on("Order").test("amount", TestOp::Gt, 100i64);
        assert!(p.matches(&f, &Bindings::new()));
        let p2 = Pattern::on("Order").test_var("tenant", TestOp::Eq, "t");
        let mut b = Bindings::new();
        assert!(!p2.matches(&f, &b)); // unbound var
        b.insert("t".into(), "t1".into());
        assert!(p2.matches(&f, &b));
        let wrong_type = Pattern::on("Invoice");
        assert!(!wrong_type.matches(&f, &b));
    }

    #[test]
    fn alpha_only_detection() {
        let p = Pattern::on("X").test("a", TestOp::Eq, 1i64);
        assert!(p.is_alpha_only());
        let p = p.test_var("b", TestOp::Eq, "v");
        assert!(!p.is_alpha_only());
    }

    #[test]
    fn template_resolution() {
        let mut b = Bindings::new();
        b.insert("x".into(), Value::Int(7));
        assert_eq!(TemplateValue::Var("x".into()).resolve(&b), Value::Int(7));
        assert_eq!(TemplateValue::Var("y".into()).resolve(&b), Value::Null);
        assert_eq!(
            TemplateValue::Const("c".into()).resolve(&b),
            Value::from("c")
        );
    }
}
