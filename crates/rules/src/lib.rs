//! # odbis-rules
//!
//! A forward-chaining production-rule engine — the reproduction's
//! substitute for Drools in the ODBIS technical architecture (§3.3): "a
//! SaaS platform is shared by several customers that have different
//! business processes, the definition of a business rules engine is
//! essential for the orchestration of services."
//!
//! Facts live in a [`WorkingMemory`]; [`Rule`]s declare patterns (with
//! variable bindings joining facts) and declarative actions (assert,
//! modify, retract, log). The [`RuleEngine`] runs the match-resolve-act
//! cycle to fixpoint with salience-based conflict resolution and
//! refraction.
//!
//! ```
//! use odbis_rules::{Action, Fact, Pattern, Rule, RuleEngine, TestOp, WorkingMemory};
//!
//! let mut engine = RuleEngine::new();
//! engine.add_rule(
//!     Rule::new("discount")
//!         .when(Pattern::on("Order").test("amount", TestOp::Gt, 100i64).bind("a", "amount"))
//!         .then(Action::Log("apply discount to {a}".into())),
//! ).unwrap();
//! let mut wm = WorkingMemory::new();
//! wm.insert(Fact::new("Order").with("amount", 250i64));
//! let report = engine.run(&mut wm).unwrap();
//! assert_eq!(report.firings(), 1);
//! ```

#![warn(missing_docs)]

mod engine;
mod fact;
mod rule;

pub use engine::{
    firings_by_rule, tconst, tvar, FireReport, MatchStrategy, NaiveMatcher, RuleEngine, RuleError,
};
pub use fact::{Fact, FactId, WorkingMemory};
pub use rule::{Action, Activation, Bindings, Operand, Pattern, Rule, TemplateValue, Test, TestOp};
