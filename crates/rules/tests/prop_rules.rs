//! Property-based tests for rule-engine invariants.

use odbis_rules::{Action, Fact, NaiveMatcher, Pattern, Rule, RuleEngine, TestOp, WorkingMemory};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = TestOp> {
    prop_oneof![
        Just(TestOp::Eq),
        Just(TestOp::Ne),
        Just(TestOp::Lt),
        Just(TestOp::Le),
        Just(TestOp::Gt),
        Just(TestOp::Ge),
    ]
}

proptest! {
    /// Indexed and naive matching always agree, for any facts and pattern.
    #[test]
    fn indexed_matching_equals_naive(
        facts in prop::collection::vec((0u8..3, -50i64..50), 0..60),
        op in arb_op(),
        pivot in -50i64..50,
        target_type in 0u8..3,
    ) {
        let mut wm = WorkingMemory::new();
        for (ty, v) in &facts {
            wm.insert(Fact::new(format!("T{ty}")).with("v", *v));
        }
        let pattern = Pattern::on(format!("T{target_type}")).test("v", op, pivot);
        prop_assert_eq!(
            NaiveMatcher::count_matches(&pattern, &wm),
            NaiveMatcher::count_matches_indexed(&pattern, &wm)
        );
    }

    /// A rule that only logs fires exactly once per matching fact
    /// (refraction) and never mutates working memory.
    #[test]
    fn log_only_rules_fire_once_per_fact(values in prop::collection::vec(-100i64..100, 0..40)) {
        let mut engine = RuleEngine::new();
        engine.add_rule(
            Rule::new("observe")
                .when(Pattern::on("X").test("v", TestOp::Ge, 0i64))
                .then(Action::Log("seen".into())),
        ).unwrap();
        let mut wm = WorkingMemory::new();
        for v in &values {
            wm.insert(Fact::new("X").with("v", *v));
        }
        let expected = values.iter().filter(|&&v| v >= 0).count();
        let before = wm.len();
        let report = engine.run(&mut wm).unwrap();
        prop_assert_eq!(report.firings(), expected);
        prop_assert_eq!(wm.len(), before);
        // a second run fires nothing new... (fresh engine run has fresh
        // refraction, so it would re-fire; instead verify idempotence of
        // memory state)
        let report2 = engine.run(&mut wm).unwrap();
        prop_assert_eq!(report2.firings(), expected);
    }

    /// Retract-on-match rules always drain the matching facts and
    /// terminate, leaving non-matching facts untouched.
    #[test]
    fn retracting_rules_terminate_and_drain(values in prop::collection::vec(-100i64..100, 0..50)) {
        let mut engine = RuleEngine::new();
        engine.add_rule(
            Rule::new("drain")
                .when(Pattern::on("X").test("v", TestOp::Lt, 0i64))
                .then(Action::Retract { pattern_index: 0 }),
        ).unwrap();
        let mut wm = WorkingMemory::new();
        for v in &values {
            wm.insert(Fact::new("X").with("v", *v));
        }
        let keep = values.iter().filter(|&&v| v >= 0).count();
        engine.run(&mut wm).unwrap();
        prop_assert_eq!(wm.len(), keep);
    }
}
