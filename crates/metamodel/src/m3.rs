//! The M3 meta-metamodel — a MOF-lite: constructs for defining metamodels.
//!
//! In the MDA tower reproduced here (ODBIS §3.2, Figure 2), the M3 level is
//! the Meta-Object Facility. [`MetaModel`]s (M2) such as the CWM subset in
//! [`crate::cwm`] are built from these constructs, and M1 models are
//! instances validated against them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};

/// Kinds an attribute value can take.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrKind {
    /// UTF-8 string.
    Str,
    /// 64-bit integer.
    Int,
    /// Boolean.
    Bool,
    /// Float.
    Float,
    /// Reference to an object of (a subclass of) the named metaclass.
    Ref(String),
    /// Ordered collection of references to the named metaclass.
    RefList(String),
    /// Enumeration over a fixed set of literals.
    Enum(Vec<String>),
}

impl AttrKind {
    /// Human-readable description (used in error messages).
    pub fn describe(&self) -> String {
        match self {
            AttrKind::Str => "Str".to_string(),
            AttrKind::Int => "Int".to_string(),
            AttrKind::Bool => "Bool".to_string(),
            AttrKind::Float => "Float".to_string(),
            AttrKind::Ref(c) => format!("Ref({c})"),
            AttrKind::RefList(c) => format!("RefList({c})"),
            AttrKind::Enum(ls) => format!("Enum({})", ls.join("|")),
        }
    }
}

/// One attribute (or association end) of a metaclass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaAttribute {
    /// Attribute name.
    pub name: String,
    /// Value kind.
    pub kind: AttrKind,
    /// If true, instances must set this attribute.
    pub required: bool,
}

/// A metaclass: the M3 construct instantiated by every M2 class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaClass {
    /// Class name, unique in its metamodel.
    pub name: String,
    /// Superclass name (single inheritance), if any.
    pub superclass: Option<String>,
    /// Abstract classes cannot be instantiated directly.
    pub is_abstract: bool,
    /// Declared attributes (inherited ones come from the superclass chain).
    pub attributes: Vec<MetaAttribute>,
}

/// A metamodel (M2): a named, closed set of metaclasses.
///
/// `MetaModel` is the JMI "package" analogue: it owns class definitions and
/// answers reflective questions (attribute lookup with inheritance,
/// subclass checks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaModel {
    /// Metamodel name (e.g. `"CWM-Relational"`).
    pub name: String,
    classes: BTreeMap<String, MetaClass>,
}

impl MetaModel {
    /// Create an empty metamodel.
    pub fn new(name: impl Into<String>) -> Self {
        MetaModel {
            name: name.into(),
            classes: BTreeMap::new(),
        }
    }

    /// Add a class. Fails on duplicates or unknown superclass.
    pub fn add_class(&mut self, class: MetaClass) -> ModelResult<()> {
        if self.classes.contains_key(&class.name) {
            return Err(ModelError::Definition(format!(
                "duplicate metaclass {}",
                class.name
            )));
        }
        if let Some(sup) = &class.superclass {
            if !self.classes.contains_key(sup) {
                return Err(ModelError::Definition(format!(
                    "superclass {sup} of {} must be defined first",
                    class.name
                )));
            }
        }
        self.classes.insert(class.name.clone(), class);
        Ok(())
    }

    /// Builder-style class definition.
    pub fn class(mut self, class: MetaClass) -> ModelResult<Self> {
        self.add_class(class)?;
        Ok(self)
    }

    /// Look up a class.
    pub fn get_class(&self, name: &str) -> ModelResult<&MetaClass> {
        self.classes
            .get(name)
            .ok_or_else(|| ModelError::UnknownClass(name.to_string()))
    }

    /// Whether `name` is defined.
    pub fn has_class(&self, name: &str) -> bool {
        self.classes.contains_key(name)
    }

    /// All class names, sorted.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.keys().map(String::as_str).collect()
    }

    /// Is `class` equal to, or a (transitive) subclass of, `ancestor`?
    pub fn is_kind_of(&self, class: &str, ancestor: &str) -> bool {
        let mut cur = Some(class.to_string());
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.classes.get(&c).and_then(|mc| mc.superclass.clone());
        }
        false
    }

    /// Resolve an attribute on `class`, walking the superclass chain.
    pub fn find_attribute(&self, class: &str, attr: &str) -> ModelResult<&MetaAttribute> {
        let mut cur = class.to_string();
        loop {
            let mc = self.get_class(&cur)?;
            if let Some(a) = mc.attributes.iter().find(|a| a.name == attr) {
                return Ok(a);
            }
            match &mc.superclass {
                Some(s) => cur = s.clone(),
                None => {
                    return Err(ModelError::UnknownAttribute {
                        class: class.to_string(),
                        attribute: attr.to_string(),
                    })
                }
            }
        }
    }

    /// All attributes of `class` including inherited ones (supers first).
    pub fn all_attributes(&self, class: &str) -> ModelResult<Vec<&MetaAttribute>> {
        let mut chain = Vec::new();
        let mut cur = class.to_string();
        loop {
            let mc = self.get_class(&cur)?;
            chain.push(mc);
            match &mc.superclass {
                Some(s) => cur = s.clone(),
                None => break,
            }
        }
        let mut out = Vec::new();
        for mc in chain.iter().rev() {
            out.extend(mc.attributes.iter());
        }
        Ok(out)
    }

    /// Merge another metamodel into this one (package import). Duplicate
    /// class names are a definition error.
    pub fn import(&mut self, other: &MetaModel) -> ModelResult<()> {
        for class in other.classes.values() {
            if self.classes.contains_key(&class.name) {
                return Err(ModelError::Definition(format!(
                    "import conflict: {} defined in both {} and {}",
                    class.name, self.name, other.name
                )));
            }
        }
        for class in other.classes.values() {
            self.classes.insert(class.name.clone(), class.clone());
        }
        Ok(())
    }
}

/// Fluent builder for a [`MetaClass`].
#[derive(Debug, Clone)]
pub struct ClassBuilder {
    class: MetaClass,
}

impl ClassBuilder {
    /// Start a concrete class.
    pub fn new(name: impl Into<String>) -> Self {
        ClassBuilder {
            class: MetaClass {
                name: name.into(),
                superclass: None,
                is_abstract: false,
                attributes: Vec::new(),
            },
        }
    }

    /// Mark the class abstract.
    pub fn abstract_class(mut self) -> Self {
        self.class.is_abstract = true;
        self
    }

    /// Set the superclass.
    pub fn extends(mut self, superclass: impl Into<String>) -> Self {
        self.class.superclass = Some(superclass.into());
        self
    }

    /// Add an optional attribute.
    pub fn attr(mut self, name: impl Into<String>, kind: AttrKind) -> Self {
        self.class.attributes.push(MetaAttribute {
            name: name.into(),
            kind,
            required: false,
        });
        self
    }

    /// Add a required attribute.
    pub fn required(mut self, name: impl Into<String>, kind: AttrKind) -> Self {
        self.class.attributes.push(MetaAttribute {
            name: name.into(),
            kind,
            required: true,
        });
        self
    }

    /// Finish.
    pub fn build(self) -> MetaClass {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetaModel {
        let mut m = MetaModel::new("Test");
        m.add_class(
            ClassBuilder::new("Element")
                .abstract_class()
                .required("name", AttrKind::Str)
                .build(),
        )
        .unwrap();
        m.add_class(
            ClassBuilder::new("Table")
                .extends("Element")
                .attr("comment", AttrKind::Str)
                .attr("columns", AttrKind::RefList("Column".into()))
                .build(),
        )
        .unwrap();
        m.add_class(
            ClassBuilder::new("Column")
                .extends("Element")
                .required("sqlType", AttrKind::Enum(vec!["INT".into(), "TEXT".into()]))
                .build(),
        )
        .unwrap();
        m
    }

    #[test]
    fn inheritance_and_attribute_resolution() {
        let m = sample();
        assert!(m.is_kind_of("Table", "Element"));
        assert!(!m.is_kind_of("Element", "Table"));
        let a = m.find_attribute("Table", "name").unwrap();
        assert!(a.required);
        assert!(matches!(
            m.find_attribute("Table", "sqlType"),
            Err(ModelError::UnknownAttribute { .. })
        ));
        let all = m.all_attributes("Column").unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "name"); // inherited first
    }

    #[test]
    fn definition_errors() {
        let mut m = sample();
        assert!(matches!(
            m.add_class(ClassBuilder::new("Table").build()),
            Err(ModelError::Definition(_))
        ));
        assert!(matches!(
            m.add_class(ClassBuilder::new("X").extends("Nope").build()),
            Err(ModelError::Definition(_))
        ));
        assert!(matches!(
            m.get_class("Ghost"),
            Err(ModelError::UnknownClass(_))
        ));
    }

    #[test]
    fn import_merges_and_detects_conflicts() {
        let mut a = sample();
        let mut b = MetaModel::new("Other");
        b.add_class(ClassBuilder::new("Cube").build()).unwrap();
        a.import(&b).unwrap();
        assert!(a.has_class("Cube"));
        let mut c = MetaModel::new("Conflicting");
        c.add_class(ClassBuilder::new("Table").build()).unwrap();
        assert!(a.import(&c).is_err());
    }
}
