//! M1 model instances and the reflective repository (the JMI/MDR analogue).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};
use crate::m3::{AttrKind, MetaModel};

/// A runtime attribute value on a model object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// String.
    Str(String),
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Float.
    Float(f64),
    /// Single object reference (by object id).
    Ref(String),
    /// Ordered list of object references.
    RefList(Vec<String>),
}

impl AttrValue {
    fn matches(&self, kind: &AttrKind) -> bool {
        matches!(
            (self, kind),
            (AttrValue::Str(_), AttrKind::Str)
                | (AttrValue::Int(_), AttrKind::Int)
                | (AttrValue::Bool(_), AttrKind::Bool)
                | (AttrValue::Float(_), AttrKind::Float)
                | (AttrValue::Ref(_), AttrKind::Ref(_))
                | (AttrValue::RefList(_), AttrKind::RefList(_))
        ) || matches!((self, kind), (AttrValue::Str(s), AttrKind::Enum(ls)) if ls.contains(s))
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) | AttrValue::Ref(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Reference-list view.
    pub fn as_ref_list(&self) -> Option<&[String]> {
        match self {
            AttrValue::RefList(v) => Some(v),
            _ => None,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}
impl From<f64> for AttrValue {
    fn from(f: f64) -> Self {
        AttrValue::Float(f)
    }
}

/// One M1 object: an instance of an M2 metaclass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelObject {
    /// Repository-unique id.
    pub id: String,
    /// Metaclass name.
    pub class: String,
    /// Attribute values.
    pub attrs: BTreeMap<String, AttrValue>,
}

impl ModelObject {
    /// Attribute accessor.
    pub fn get(&self, attr: &str) -> Option<&AttrValue> {
        self.attrs.get(attr)
    }

    /// String-attribute accessor (convention: most CWM names are strings).
    pub fn get_str(&self, attr: &str) -> Option<&str> {
        self.get(attr).and_then(AttrValue::as_str)
    }

    /// The conventional `name` attribute.
    pub fn name(&self) -> &str {
        self.get_str("name").unwrap_or(&self.id)
    }
}

/// A model repository: an *extent* of M1 objects validated against one
/// metamodel. This is the reproduction's Metadata Repository (Sun MDR in
/// the paper).
#[derive(Debug, Clone)]
pub struct ModelRepository {
    metamodel: MetaModel,
    /// Extent name (e.g. the DW project this model belongs to).
    pub extent: String,
    objects: BTreeMap<String, ModelObject>,
    next_id: u64,
}

impl ModelRepository {
    /// Create an empty repository over `metamodel`.
    pub fn new(extent: impl Into<String>, metamodel: MetaModel) -> Self {
        ModelRepository {
            metamodel,
            extent: extent.into(),
            objects: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// The governing metamodel.
    pub fn metamodel(&self) -> &MetaModel {
        &self.metamodel
    }

    /// Number of objects in the extent.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the extent is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Reflectively instantiate `class` with the given attributes. Returns
    /// the new object's id. Checks: class exists and is concrete, attributes
    /// are declared, values type-check. (Reference *targets* are validated
    /// by [`ModelRepository::validate`], allowing forward references while a
    /// model is under construction.)
    pub fn create(&mut self, class: &str, attrs: Vec<(&str, AttrValue)>) -> ModelResult<String> {
        let mc = self.metamodel.get_class(class)?;
        if mc.is_abstract {
            return Err(ModelError::Definition(format!(
                "cannot instantiate abstract class {class}"
            )));
        }
        let mut map = BTreeMap::new();
        for (name, value) in attrs {
            let decl = self.metamodel.find_attribute(class, name)?;
            if !value.matches(&decl.kind) {
                return Err(ModelError::TypeMismatch {
                    class: class.to_string(),
                    attribute: name.to_string(),
                    expected: decl.kind.describe(),
                });
            }
            map.insert(name.to_string(), value);
        }
        let id = format!("{}:{}:{}", self.extent, class, self.next_id);
        self.next_id += 1;
        self.objects.insert(
            id.clone(),
            ModelObject {
                id: id.clone(),
                class: class.to_string(),
                attrs: map,
            },
        );
        Ok(id)
    }

    /// Set (or replace) one attribute on an existing object.
    pub fn set(&mut self, id: &str, attr: &str, value: AttrValue) -> ModelResult<()> {
        let class = self
            .objects
            .get(id)
            .ok_or_else(|| ModelError::UnknownObject(id.to_string()))?
            .class
            .clone();
        let decl = self.metamodel.find_attribute(&class, attr)?;
        if !value.matches(&decl.kind) {
            return Err(ModelError::TypeMismatch {
                class,
                attribute: attr.to_string(),
                expected: decl.kind.describe(),
            });
        }
        self.objects
            .get_mut(id)
            .expect("checked above")
            .attrs
            .insert(attr.to_string(), value);
        Ok(())
    }

    /// Append a reference to a `RefList` attribute.
    pub fn add_ref(&mut self, id: &str, attr: &str, target: &str) -> ModelResult<()> {
        let current = self
            .get(id)?
            .get(attr)
            .and_then(AttrValue::as_ref_list)
            .map(<[String]>::to_vec)
            .unwrap_or_default();
        let mut list = current;
        list.push(target.to_string());
        self.set(id, attr, AttrValue::RefList(list))
    }

    /// Insert a fully-formed object verbatim, preserving its id (XMI
    /// import path). The id counter is advanced past any numeric suffix so
    /// later [`ModelRepository::create`] calls cannot collide.
    pub(crate) fn insert_raw(&mut self, obj: ModelObject) {
        if let Some(n) = obj
            .id
            .rsplit(':')
            .next()
            .and_then(|s| s.parse::<u64>().ok())
        {
            self.next_id = self.next_id.max(n + 1);
        }
        self.objects.insert(obj.id.clone(), obj);
    }

    /// Fetch an object.
    pub fn get(&self, id: &str) -> ModelResult<&ModelObject> {
        self.objects
            .get(id)
            .ok_or_else(|| ModelError::UnknownObject(id.to_string()))
    }

    /// Delete an object (references to it will fail validation).
    pub fn delete(&mut self, id: &str) -> ModelResult<ModelObject> {
        self.objects
            .remove(id)
            .ok_or_else(|| ModelError::UnknownObject(id.to_string()))
    }

    /// All objects whose class is (a subclass of) `class`.
    pub fn instances_of(&self, class: &str) -> Vec<&ModelObject> {
        self.objects
            .values()
            .filter(|o| self.metamodel.is_kind_of(&o.class, class))
            .collect()
    }

    /// All objects.
    pub fn objects(&self) -> impl Iterator<Item = &ModelObject> {
        self.objects.values()
    }

    /// Resolve a `Ref`/`RefList` attribute to the target objects.
    pub fn resolve_refs(&self, id: &str, attr: &str) -> ModelResult<Vec<&ModelObject>> {
        let obj = self.get(id)?;
        match obj.get(attr) {
            None => Ok(Vec::new()),
            Some(AttrValue::Ref(t)) => Ok(vec![self.get(t)?]),
            Some(AttrValue::RefList(ts)) => ts.iter().map(|t| self.get(t)).collect(),
            Some(_) => Err(ModelError::TypeMismatch {
                class: obj.class.clone(),
                attribute: attr.to_string(),
                expected: "Ref or RefList".to_string(),
            }),
        }
    }

    /// Validate the whole extent: required attributes present, every
    /// reference resolves to an object of the declared class. Returns all
    /// violations (empty = valid).
    pub fn validate(&self) -> Vec<ModelError> {
        let mut errors = Vec::new();
        for obj in self.objects.values() {
            let attrs = match self.metamodel.all_attributes(&obj.class) {
                Ok(a) => a,
                Err(e) => {
                    errors.push(e);
                    continue;
                }
            };
            for decl in attrs {
                match obj.attrs.get(&decl.name) {
                    None if decl.required => errors.push(ModelError::MissingAttribute {
                        class: obj.class.clone(),
                        attribute: decl.name.clone(),
                    }),
                    None => {}
                    Some(v) => {
                        let targets: Vec<&String> = match v {
                            AttrValue::Ref(t) => vec![t],
                            AttrValue::RefList(ts) => ts.iter().collect(),
                            _ => vec![],
                        };
                        let target_class = match &decl.kind {
                            AttrKind::Ref(c) | AttrKind::RefList(c) => Some(c),
                            _ => None,
                        };
                        for t in targets {
                            let ok = self.objects.get(t).is_some_and(|to| {
                                target_class.is_none_or(|c| self.metamodel.is_kind_of(&to.class, c))
                            });
                            if !ok {
                                errors.push(ModelError::DanglingReference {
                                    from: obj.id.clone(),
                                    attribute: decl.name.clone(),
                                    target: t.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m3::ClassBuilder;

    fn mm() -> MetaModel {
        let mut m = MetaModel::new("T");
        m.add_class(
            ClassBuilder::new("Table")
                .required("name", AttrKind::Str)
                .attr("columns", AttrKind::RefList("Column".into()))
                .build(),
        )
        .unwrap();
        m.add_class(
            ClassBuilder::new("Column")
                .required("name", AttrKind::Str)
                .required("type", AttrKind::Enum(vec!["INT".into(), "TEXT".into()]))
                .build(),
        )
        .unwrap();
        m
    }

    #[test]
    fn reflective_create_and_resolve() {
        let mut repo = ModelRepository::new("proj", mm());
        let c1 = repo
            .create(
                "Column",
                vec![("name", "id".into()), ("type", "INT".into())],
            )
            .unwrap();
        let t = repo
            .create(
                "Table",
                vec![
                    ("name", "sales".into()),
                    ("columns", AttrValue::RefList(vec![c1.clone()])),
                ],
            )
            .unwrap();
        assert!(repo.validate().is_empty());
        let cols = repo.resolve_refs(&t, "columns").unwrap();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].name(), "id");
        assert_eq!(repo.instances_of("Table").len(), 1);
    }

    #[test]
    fn type_checking_on_create_and_set() {
        let mut repo = ModelRepository::new("p", mm());
        assert!(matches!(
            repo.create("Column", vec![("name", AttrValue::Int(3))]),
            Err(ModelError::TypeMismatch { .. })
        ));
        assert!(matches!(
            repo.create("Column", vec![("type", "BLOB".into())]),
            Err(ModelError::TypeMismatch { .. })
        ));
        assert!(matches!(
            repo.create("Ghost", vec![]),
            Err(ModelError::UnknownClass(_))
        ));
        let c = repo
            .create("Column", vec![("name", "x".into()), ("type", "INT".into())])
            .unwrap();
        assert!(matches!(
            repo.set(&c, "nothere", "v".into()),
            Err(ModelError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn validation_catches_missing_and_dangling() {
        let mut repo = ModelRepository::new("p", mm());
        // missing required `type`
        repo.create("Column", vec![("name", "a".into())]).unwrap();
        let t = repo.create("Table", vec![("name", "t".into())]).unwrap();
        repo.add_ref(&t, "columns", "p:Column:999").unwrap();
        let errors = repo.validate();
        assert_eq!(errors.len(), 2);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ModelError::MissingAttribute { .. })));
        assert!(errors
            .iter()
            .any(|e| matches!(e, ModelError::DanglingReference { .. })));
    }

    #[test]
    fn delete_creates_dangling_reference() {
        let mut repo = ModelRepository::new("p", mm());
        let c = repo
            .create("Column", vec![("name", "x".into()), ("type", "INT".into())])
            .unwrap();
        let t = repo
            .create(
                "Table",
                vec![
                    ("name", "t".into()),
                    ("columns", AttrValue::RefList(vec![c.clone()])),
                ],
            )
            .unwrap();
        assert!(repo.validate().is_empty());
        repo.delete(&c).unwrap();
        assert_eq!(repo.validate().len(), 1);
        let _ = t;
    }

    #[test]
    fn ref_type_is_checked_in_validate() {
        let mut repo = ModelRepository::new("p", mm());
        let t2 = repo
            .create("Table", vec![("name", "other".into())])
            .unwrap();
        let t = repo.create("Table", vec![("name", "t".into())]).unwrap();
        // a Table referencing a Table through `columns` is a class mismatch
        repo.add_ref(&t, "columns", &t2).unwrap();
        assert_eq!(repo.validate().len(), 1);
    }
}
