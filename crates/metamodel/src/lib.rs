//! # odbis-metamodel
//!
//! The metamodeling tower of ODBIS's Model-Driven Data Warehouse approach —
//! the reproduction's substitute for MOF/JMI/MDR and the CWM/CWMX
//! implementation the paper's domain model is based on (ODBIS §3.2–3.3):
//!
//! * **M3** ([`MetaModel`], [`MetaClass`]): MOF-lite constructs — metaclasses with single
//!   inheritance, typed attributes, reference associations and enums;
//! * **M2** ([`cwm`]): a CWM subset (Relational, OLAP, Transformation,
//!   BusinessNomenclature packages) plus the CWMX extensions;
//! * **M1** ([`ModelRepository`]): reflective model objects validated against
//!   their metamodel, held in a [`ModelRepository`] (the MDR analogue);
//! * **interchange** ([`export_repository`] / [`import_repository`]): XMI-style serialization of whole extents.
//!
//! ```
//! use odbis_metamodel::{cwm, AttrValue, ModelRepository};
//!
//! let mut repo = ModelRepository::new("demo", cwm::cwm());
//! let col = repo.create("RelationalColumn",
//!     vec![("name", "id".into()), ("sqlType", "BIGINT".into())]).unwrap();
//! let table = repo.create("RelationalTable",
//!     vec![("name", "facts".into()), ("columns", AttrValue::RefList(vec![col]))]).unwrap();
//! assert!(repo.validate().is_empty());
//! assert_eq!(repo.get(&table).unwrap().name(), "facts");
//! ```

#![warn(missing_docs)]

pub mod cwm;
mod error;
mod instance;
mod m3;
pub mod odm;
mod xmi;

pub use error::{ModelError, ModelResult};
pub use instance::{AttrValue, ModelObject, ModelRepository};
pub use m3::{AttrKind, ClassBuilder, MetaAttribute, MetaClass, MetaModel};
pub use odm::{define_class, match_schemas, SemanticMatch};
pub use xmi::{export_repository, import_repository, XMI_VERSION};
