//! XMI-style model interchange.
//!
//! The paper exchanges metamodels and metadata "via XML by using the
//! industry standard XML Metadata Interchange (XMI)". This module provides
//! the same capability with a JSON carrier: a whole
//! [`ModelRepository`] extent (with its metamodel) serializes to a
//! self-describing document and loads back with full re-validation.

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};
use crate::instance::{ModelObject, ModelRepository};
use crate::m3::MetaModel;

/// Interchange document version.
pub const XMI_VERSION: &str = "odbis-xmi/1.0";

#[derive(Serialize, Deserialize)]
struct XmiDocument {
    version: String,
    extent: String,
    metamodel: MetaModel,
    objects: Vec<ModelObject>,
}

/// Serialize a repository (metamodel + extent) to an interchange document.
pub fn export_repository(repo: &ModelRepository) -> ModelResult<String> {
    let doc = XmiDocument {
        version: XMI_VERSION.to_string(),
        extent: repo.extent.clone(),
        metamodel: repo.metamodel().clone(),
        objects: repo.objects().cloned().collect(),
    };
    serde_json::to_string_pretty(&doc).map_err(|e| ModelError::Interchange(e.to_string()))
}

/// Load an interchange document into a fresh repository.
///
/// Every object is re-created through the reflective API, so class and
/// attribute checks run again; the loaded extent is then validated as a
/// whole. A document that fails either step is rejected.
pub fn import_repository(json: &str) -> ModelResult<ModelRepository> {
    let doc: XmiDocument =
        serde_json::from_str(json).map_err(|e| ModelError::Interchange(e.to_string()))?;
    if doc.version != XMI_VERSION {
        return Err(ModelError::Interchange(format!(
            "unsupported interchange version {}",
            doc.version
        )));
    }
    let mut repo = ModelRepository::new(doc.extent, doc.metamodel);
    // First pass: create all objects (ids must be preserved so refs work).
    for obj in &doc.objects {
        repo.import_object(obj.clone())?;
    }
    let errors = repo.validate();
    if let Some(first) = errors.into_iter().next() {
        return Err(first);
    }
    Ok(repo)
}

impl ModelRepository {
    /// Import an object verbatim (id preserved), re-running class and
    /// attribute type checks. Used by the XMI loader.
    pub fn import_object(&mut self, obj: ModelObject) -> ModelResult<()> {
        let mc = self.metamodel().get_class(&obj.class)?.clone();
        if mc.is_abstract {
            return Err(ModelError::Definition(format!(
                "cannot instantiate abstract class {}",
                obj.class
            )));
        }
        for (name, value) in &obj.attrs {
            let decl = self.metamodel().find_attribute(&obj.class, name)?;
            // reuse create()'s type discipline via a fresh check
            let tmp_kind = decl.kind.clone();
            let matches = {
                use crate::instance::AttrValue as V;
                use crate::m3::AttrKind as K;
                matches!(
                    (value, &tmp_kind),
                    (V::Str(_), K::Str)
                        | (V::Int(_), K::Int)
                        | (V::Bool(_), K::Bool)
                        | (V::Float(_), K::Float)
                        | (V::Ref(_), K::Ref(_))
                        | (V::RefList(_), K::RefList(_))
                ) || matches!((value, &tmp_kind), (V::Str(s), K::Enum(ls)) if ls.contains(s))
            };
            if !matches {
                return Err(ModelError::TypeMismatch {
                    class: obj.class.clone(),
                    attribute: name.clone(),
                    expected: decl.kind.describe(),
                });
            }
        }
        self.insert_raw(obj);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cwm;
    use crate::instance::AttrValue;

    fn sample_repo() -> ModelRepository {
        let mut repo = ModelRepository::new("dw-project", cwm::cwm());
        let col = repo
            .create(
                "RelationalColumn",
                vec![("name", "id".into()), ("sqlType", "BIGINT".into())],
            )
            .unwrap();
        repo.create(
            "RelationalTable",
            vec![
                ("name", "dim_date".into()),
                ("columns", AttrValue::RefList(vec![col])),
            ],
        )
        .unwrap();
        repo
    }

    #[test]
    fn round_trip_preserves_everything() {
        let repo = sample_repo();
        let json = export_repository(&repo).unwrap();
        assert!(json.contains("odbis-xmi/1.0"));
        let loaded = import_repository(&json).unwrap();
        assert_eq!(loaded.extent, "dw-project");
        assert_eq!(loaded.len(), repo.len());
        let tables = loaded.instances_of("RelationalTable");
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name(), "dim_date");
        // references still resolve
        let cols = loaded.resolve_refs(&tables[0].id, "columns").unwrap();
        assert_eq!(cols[0].name(), "id");
    }

    #[test]
    fn garbage_and_wrong_version_rejected() {
        assert!(matches!(
            import_repository("not json"),
            Err(ModelError::Interchange(_))
        ));
        let repo = sample_repo();
        let json = export_repository(&repo).unwrap();
        let tampered = json.replace("odbis-xmi/1.0", "odbis-xmi/9.9");
        assert!(matches!(
            import_repository(&tampered),
            Err(ModelError::Interchange(_))
        ));
    }

    #[test]
    fn tampered_document_fails_revalidation() {
        let repo = sample_repo();
        let json = export_repository(&repo).unwrap();
        // corrupt the enum value on the object only (the metamodel's Enum
        // literal list serializes as a bare string array, the object's
        // attribute as a tagged {"Str": ...})
        let tampered = json.replace("\"Str\": \"BIGINT\"", "\"Str\": \"BLOB99\"");
        assert_ne!(json, tampered);
        assert!(import_repository(&tampered).is_err());
    }
}
