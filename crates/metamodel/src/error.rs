//! Metamodel error type.

use std::fmt;

/// Errors raised by the metamodeling layer.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant field names are self-documenting
pub enum ModelError {
    /// A metaclass was not found in the metamodel.
    UnknownClass(String),
    /// An attribute is not declared on the metaclass (or its ancestors).
    UnknownAttribute { class: String, attribute: String },
    /// A value does not match the attribute's declared kind.
    TypeMismatch {
        class: String,
        attribute: String,
        expected: String,
    },
    /// A required attribute is missing.
    MissingAttribute { class: String, attribute: String },
    /// A reference points to a missing or wrongly-typed object.
    DanglingReference {
        from: String,
        attribute: String,
        target: String,
    },
    /// An object id was not found in the repository.
    UnknownObject(String),
    /// Metamodel definition error (duplicate class, bad inheritance, ...).
    Definition(String),
    /// Interchange (XMI) parse error.
    Interchange(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownClass(c) => write!(f, "unknown metaclass {c}"),
            ModelError::UnknownAttribute { class, attribute } => {
                write!(f, "metaclass {class} has no attribute {attribute}")
            }
            ModelError::TypeMismatch {
                class,
                attribute,
                expected,
            } => write!(f, "{class}.{attribute} expects {expected}"),
            ModelError::MissingAttribute { class, attribute } => {
                write!(f, "required attribute {class}.{attribute} is missing")
            }
            ModelError::DanglingReference {
                from,
                attribute,
                target,
            } => write!(f, "reference {from}.{attribute} -> {target} is dangling"),
            ModelError::UnknownObject(id) => write!(f, "unknown model object {id}"),
            ModelError::Definition(m) => write!(f, "metamodel definition error: {m}"),
            ModelError::Interchange(m) => write!(f, "interchange error: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for metamodel operations.
pub type ModelResult<T> = Result<T, ModelError>;
