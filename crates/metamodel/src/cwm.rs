//! The CWM subset (M2): the Common Warehouse Metamodel packages the ODBIS
//! domain model implements (§3.3), rebuilt on the M3 constructs.
//!
//! Four packages are provided, mirroring the packages the paper names:
//!
//! * **Relational** — catalogs, schemas, tables, columns, keys;
//! * **Multidimensional (OLAP)** — cubes, dimensions, hierarchies, levels,
//!   measures;
//! * **Transformation** — transformation maps and steps between data
//!   sources and targets (the ETL design vocabulary);
//! * **BusinessNomenclature** — glossaries and terms (business metadata).
//!
//! `cwmx()` adds the paper's CWMX extensions: platform bindings and
//! deployment descriptors not covered by standard CWM.

use crate::error::ModelResult;
use crate::m3::{AttrKind, ClassBuilder, MetaModel};

/// Root classes shared by all packages (CWM `Core`).
fn core(m: &mut MetaModel) -> ModelResult<()> {
    m.add_class(
        ClassBuilder::new("ModelElement")
            .abstract_class()
            .required("name", AttrKind::Str)
            .attr("description", AttrKind::Str)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("Package")
            .extends("ModelElement")
            .attr("ownedElements", AttrKind::RefList("ModelElement".into()))
            .build(),
    )?;
    Ok(())
}

/// CWM Relational package.
pub fn relational() -> MetaModel {
    build_relational().expect("static metamodel definition is valid")
}

fn build_relational() -> ModelResult<MetaModel> {
    let mut m = MetaModel::new("CWM-Relational");
    core(&mut m)?;
    m.add_class(
        ClassBuilder::new("Catalog")
            .extends("ModelElement")
            .attr("schemas", AttrKind::RefList("RelationalSchema".into()))
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("RelationalSchema")
            .extends("ModelElement")
            .attr("tables", AttrKind::RefList("RelationalTable".into()))
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("RelationalTable")
            .extends("ModelElement")
            .attr("columns", AttrKind::RefList("RelationalColumn".into()))
            .attr("primaryKey", AttrKind::Ref("PrimaryKey".into()))
            .attr("foreignKeys", AttrKind::RefList("ForeignKey".into()))
            .attr("isTemporary", AttrKind::Bool)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("RelationalColumn")
            .extends("ModelElement")
            .required(
                "sqlType",
                AttrKind::Enum(vec![
                    "BOOLEAN".into(),
                    "BIGINT".into(),
                    "DOUBLE".into(),
                    "TEXT".into(),
                    "DATE".into(),
                    "TIMESTAMP".into(),
                ]),
            )
            .attr("isNullable", AttrKind::Bool)
            .attr("length", AttrKind::Int)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("PrimaryKey")
            .extends("ModelElement")
            .required("columns", AttrKind::RefList("RelationalColumn".into()))
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("ForeignKey")
            .extends("ModelElement")
            .required("columns", AttrKind::RefList("RelationalColumn".into()))
            .required("referencedTable", AttrKind::Ref("RelationalTable".into()))
            .build(),
    )?;
    Ok(m)
}

/// CWM Multidimensional (OLAP) package.
pub fn olap() -> MetaModel {
    build_olap().expect("static metamodel definition is valid")
}

fn build_olap() -> ModelResult<MetaModel> {
    let mut m = MetaModel::new("CWM-OLAP");
    core(&mut m)?;
    m.add_class(
        ClassBuilder::new("OlapSchema")
            .extends("ModelElement")
            .attr("cubes", AttrKind::RefList("Cube".into()))
            .attr("dimensions", AttrKind::RefList("Dimension".into()))
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("Dimension")
            .extends("ModelElement")
            .attr("isTime", AttrKind::Bool)
            .attr("hierarchies", AttrKind::RefList("DimHierarchy".into()))
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("DimHierarchy")
            .extends("ModelElement")
            .required("levels", AttrKind::RefList("DimLevel".into()))
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("DimLevel")
            .extends("ModelElement")
            .attr("keyColumn", AttrKind::Str)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("Cube")
            .extends("ModelElement")
            .attr("dimensions", AttrKind::RefList("Dimension".into()))
            .attr("measures", AttrKind::RefList("Measure".into()))
            .attr("factTable", AttrKind::Str)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("Measure")
            .extends("ModelElement")
            .required(
                "aggregator",
                AttrKind::Enum(vec![
                    "SUM".into(),
                    "COUNT".into(),
                    "AVG".into(),
                    "MIN".into(),
                    "MAX".into(),
                ]),
            )
            .attr("column", AttrKind::Str)
            .build(),
    )?;
    Ok(m)
}

/// CWM Transformation package (ETL design vocabulary).
pub fn transformation() -> MetaModel {
    build_transformation().expect("static metamodel definition is valid")
}

fn build_transformation() -> ModelResult<MetaModel> {
    let mut m = MetaModel::new("CWM-Transformation");
    core(&mut m)?;
    m.add_class(
        ClassBuilder::new("DataSourceDef")
            .extends("ModelElement")
            .required("url", AttrKind::Str)
            .attr("user", AttrKind::Str)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("TransformationMap")
            .extends("ModelElement")
            .attr("steps", AttrKind::RefList("TransformationStep".into()))
            .attr("source", AttrKind::Ref("DataSourceDef".into()))
            .attr("target", AttrKind::Str)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("TransformationStep")
            .extends("ModelElement")
            .required(
                "operation",
                AttrKind::Enum(vec![
                    "EXTRACT".into(),
                    "FILTER".into(),
                    "MAP".into(),
                    "JOIN".into(),
                    "AGGREGATE".into(),
                    "LOOKUP".into(),
                    "DEDUPLICATE".into(),
                    "LOAD".into(),
                ]),
            )
            .attr("expression", AttrKind::Str)
            .build(),
    )?;
    Ok(m)
}

/// CWM BusinessNomenclature package (business metadata / glossary).
pub fn business_nomenclature() -> MetaModel {
    build_nomenclature().expect("static metamodel definition is valid")
}

fn build_nomenclature() -> ModelResult<MetaModel> {
    let mut m = MetaModel::new("CWM-BusinessNomenclature");
    core(&mut m)?;
    m.add_class(
        ClassBuilder::new("Glossary")
            .extends("ModelElement")
            .attr("terms", AttrKind::RefList("Term".into()))
            .attr("language", AttrKind::Str)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("Term")
            .extends("ModelElement")
            .attr("definition", AttrKind::Str)
            .attr("relatedTerms", AttrKind::RefList("Term".into()))
            .attr("mappedElement", AttrKind::Str)
            .build(),
    )?;
    Ok(m)
}

/// The combined CWM metamodel: all four packages in one namespace.
pub fn cwm() -> MetaModel {
    let mut m = MetaModel::new("CWM");
    core(&mut m).expect("core is valid");
    for pkg in [
        build_relational(),
        build_olap(),
        build_transformation(),
        build_nomenclature(),
    ] {
        let pkg = pkg.expect("static metamodel definition is valid");
        // skip the shared core classes when merging
        for name in pkg.class_names() {
            if m.has_class(name) {
                continue;
            }
            let class = pkg.get_class(name).expect("listed name exists").clone();
            m.add_class(class).expect("no conflicts after skip");
        }
    }
    m
}

/// CWMX: the paper's CWM extensions — platform bindings and deployment
/// descriptors layered on top of [`cwm`].
pub fn cwmx() -> MetaModel {
    let mut m = cwm();
    m.add_class(
        ClassBuilder::new("PlatformBinding")
            .extends("ModelElement")
            .required(
                "platform",
                AttrKind::Enum(vec![
                    "ODBIS-STORAGE".into(),
                    "POSTGRESQL".into(),
                    "GENERIC-SQL".into(),
                ]),
            )
            .attr("boundElement", AttrKind::Str)
            .attr("properties", AttrKind::Str)
            .build(),
    )
    .expect("CWMX extension is valid");
    m.add_class(
        ClassBuilder::new("DeploymentDescriptor")
            .extends("ModelElement")
            .required(
                "targetLayer",
                AttrKind::Enum(vec![
                    "SOURCE".into(),
                    "STAGING".into(),
                    "WAREHOUSE".into(),
                    "MART".into(),
                    "ANALYSIS".into(),
                ]),
            )
            .attr("bindings", AttrKind::RefList("PlatformBinding".into()))
            .build(),
    )
    .expect("CWMX extension is valid");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{AttrValue, ModelRepository};

    #[test]
    fn packages_build_and_contain_expected_classes() {
        assert!(relational().has_class("RelationalTable"));
        assert!(olap().has_class("Cube"));
        assert!(transformation().has_class("TransformationStep"));
        assert!(business_nomenclature().has_class("Glossary"));
        let full = cwm();
        for c in [
            "Catalog",
            "Cube",
            "TransformationMap",
            "Term",
            "ModelElement",
        ] {
            assert!(full.has_class(c), "missing {c}");
        }
        assert!(cwmx().has_class("PlatformBinding"));
    }

    #[test]
    fn star_schema_instance_validates() {
        let mut repo = ModelRepository::new("dw", cwm());
        let c_id = repo
            .create(
                "RelationalColumn",
                vec![("name", "id".into()), ("sqlType", "BIGINT".into())],
            )
            .unwrap();
        let c_amount = repo
            .create(
                "RelationalColumn",
                vec![("name", "amount".into()), ("sqlType", "DOUBLE".into())],
            )
            .unwrap();
        let pk = repo
            .create(
                "PrimaryKey",
                vec![
                    ("name", "pk_fact".into()),
                    ("columns", AttrValue::RefList(vec![c_id.clone()])),
                ],
            )
            .unwrap();
        let fact = repo
            .create(
                "RelationalTable",
                vec![
                    ("name", "fact_sales".into()),
                    (
                        "columns",
                        AttrValue::RefList(vec![c_id.clone(), c_amount.clone()]),
                    ),
                    ("primaryKey", AttrValue::Ref(pk)),
                ],
            )
            .unwrap();
        let measure = repo
            .create(
                "Measure",
                vec![
                    ("name", "total".into()),
                    ("aggregator", "SUM".into()),
                    ("column", "amount".into()),
                ],
            )
            .unwrap();
        repo.create(
            "Cube",
            vec![
                ("name", "sales".into()),
                ("factTable", "fact_sales".into()),
                ("measures", AttrValue::RefList(vec![measure])),
            ],
        )
        .unwrap();
        assert!(repo.validate().is_empty());
        assert_eq!(repo.instances_of("ModelElement").len(), repo.len());
        let _ = fact;
    }

    #[test]
    fn bad_aggregator_rejected() {
        let mut repo = ModelRepository::new("dw", olap());
        assert!(repo
            .create(
                "Measure",
                vec![("name", "m".into()), ("aggregator", "MEDIAN".into())],
            )
            .is_err());
    }

    #[test]
    fn transformation_step_enum_covers_etl_ops() {
        let mut repo = ModelRepository::new("etl", transformation());
        for op in [
            "EXTRACT",
            "FILTER",
            "MAP",
            "JOIN",
            "AGGREGATE",
            "LOOKUP",
            "DEDUPLICATE",
            "LOAD",
        ] {
            repo.create(
                "TransformationStep",
                vec![("name", op.into()), ("operation", op.into())],
            )
            .unwrap();
        }
        assert_eq!(repo.len(), 8);
    }
}
