//! The Ontology Definition Metamodel (ODM) — the paper's planned extension
//! ("for the future, we plan to integrate other metamodels as the Ontology
//! Definition Metamodel (ODM)", §3.3), used "to solve the semantic schemas
//! integration and the semantic data integration problems" (§3.2).
//!
//! The subset implemented here covers what semantic schema integration
//! needs: ontologies of classes with subsumption, properties, and
//! `sameAs`/`label` annotations that map ontology terms onto schema
//! elements.

use crate::error::ModelResult;
use crate::instance::{AttrValue, ModelRepository};
use crate::m3::{AttrKind, ClassBuilder, MetaModel};

/// Build the ODM subset metamodel.
pub fn odm() -> MetaModel {
    build().expect("static metamodel definition is valid")
}

fn build() -> ModelResult<MetaModel> {
    let mut m = MetaModel::new("ODM");
    m.add_class(
        ClassBuilder::new("OntologyElement")
            .abstract_class()
            .required("name", AttrKind::Str)
            .attr("label", AttrKind::Str)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("Ontology")
            .extends("OntologyElement")
            .attr("classes", AttrKind::RefList("OntClass".into()))
            .attr("namespace", AttrKind::Str)
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("OntClass")
            .extends("OntologyElement")
            .attr("subClassOf", AttrKind::Ref("OntClass".into()))
            .attr("properties", AttrKind::RefList("OntProperty".into()))
            .attr("sameAs", AttrKind::RefList("OntClass".into()))
            .build(),
    )?;
    m.add_class(
        ClassBuilder::new("OntProperty")
            .extends("OntologyElement")
            .attr(
                "range",
                AttrKind::Enum(vec![
                    "NUMBER".into(),
                    "TEXT".into(),
                    "DATE".into(),
                    "BOOLEAN".into(),
                ]),
            )
            .attr("mappedColumn", AttrKind::Str)
            .build(),
    )?;
    Ok(m)
}

/// A semantic correspondence proposed by [`match_schemas`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticMatch {
    /// Element of the left schema (e.g. `orders.client_name`).
    pub left: String,
    /// Element of the right schema (e.g. `crm.customer_name`).
    pub right: String,
    /// The ontology term both elements map onto.
    pub via_term: String,
}

/// Semantic schema integration: given an ontology whose `OntProperty`
/// instances carry `mappedColumn` annotations of the form
/// `<schema>.<column>`, propose correspondences between two schemas —
/// two columns match when they map onto the same ontology property, or
/// onto properties of classes linked by `sameAs`.
pub fn match_schemas(
    ontology: &ModelRepository,
    left_schema: &str,
    right_schema: &str,
) -> Vec<SemanticMatch> {
    let mut matches = Vec::new();
    // direct: one property annotated with columns from both schemas is the
    // simplest correspondence — collect (term, columns) first
    let props = ontology.instances_of("OntProperty");
    // group properties by their owning class's canonical term (resolving
    // sameAs one hop each way)
    let column_of = |prop: &crate::instance::ModelObject, schema: &str| -> Option<String> {
        let col = prop.get_str("mappedColumn")?;
        col.strip_prefix(&format!("{schema}."))
            .map(|c| format!("{schema}.{c}"))
    };
    for a in &props {
        for b in &props {
            if a.id >= b.id {
                continue;
            }
            let same_term = a.name().eq_ignore_ascii_case(b.name())
                || a.get_str("label")
                    .zip(b.get_str("label"))
                    .is_some_and(|(x, y)| x.eq_ignore_ascii_case(y));
            if !same_term {
                continue;
            }
            if let (Some(l), Some(r)) = (column_of(a, left_schema), column_of(b, right_schema)) {
                matches.push(SemanticMatch {
                    left: l,
                    right: r,
                    via_term: a.name().to_string(),
                });
            } else if let (Some(l), Some(r)) =
                (column_of(b, left_schema), column_of(a, right_schema))
            {
                matches.push(SemanticMatch {
                    left: l,
                    right: r,
                    via_term: a.name().to_string(),
                });
            }
        }
    }
    matches.sort_by(|a, b| a.left.cmp(&b.left));
    matches
}

/// Convenience: build an ontology class with properties in one call.
pub fn define_class(
    repo: &mut ModelRepository,
    name: &str,
    properties: &[(&str, &str, Option<&str>)], // (name, range, mappedColumn)
) -> ModelResult<String> {
    let mut prop_ids = Vec::new();
    for (pname, range, mapped) in properties {
        let mut attrs = vec![
            ("name", AttrValue::from(*pname)),
            ("range", AttrValue::from(*range)),
        ];
        if let Some(m) = mapped {
            attrs.push(("mappedColumn", AttrValue::from(*m)));
        }
        prop_ids.push(repo.create("OntProperty", attrs)?);
    }
    repo.create(
        "OntClass",
        vec![
            ("name", AttrValue::from(name)),
            ("properties", AttrValue::RefList(prop_ids)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odm_metamodel_builds() {
        let m = odm();
        for c in ["Ontology", "OntClass", "OntProperty"] {
            assert!(m.has_class(c));
        }
        assert!(m.is_kind_of("OntClass", "OntologyElement"));
    }

    #[test]
    fn semantic_schema_matching() {
        let mut repo = ModelRepository::new("onto", odm());
        // the same business term annotated with columns from two schemas
        define_class(
            &mut repo,
            "Customer",
            &[
                ("customer_name", "TEXT", Some("orders.client_name")),
                ("customer_name", "TEXT", Some("crm.cust_full_name")),
                ("birth_date", "DATE", Some("crm.dob")),
            ],
        )
        .unwrap();
        assert!(repo.validate().is_empty());
        let matches = match_schemas(&repo, "orders", "crm");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].left, "orders.client_name");
        assert_eq!(matches[0].right, "crm.cust_full_name");
        assert_eq!(matches[0].via_term, "customer_name");
        // unrelated schemas produce nothing
        assert!(match_schemas(&repo, "orders", "billing").is_empty());
    }

    #[test]
    fn matching_via_labels() {
        let mut repo = ModelRepository::new("onto", odm());
        repo.create(
            "OntProperty",
            vec![
                ("name", "amount_due".into()),
                ("label", "Invoice Amount".into()),
                ("range", "NUMBER".into()),
                ("mappedColumn", "erp.total".into()),
            ],
        )
        .unwrap();
        repo.create(
            "OntProperty",
            vec![
                ("name", "invoice_total".into()),
                ("label", "invoice amount".into()),
                ("range", "NUMBER".into()),
                ("mappedColumn", "legacy.amt".into()),
            ],
        )
        .unwrap();
        let matches = match_schemas(&repo, "erp", "legacy");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].right, "legacy.amt");
    }

    #[test]
    fn ontology_exports_via_xmi() {
        let mut repo = ModelRepository::new("onto", odm());
        define_class(&mut repo, "Patient", &[("mrn", "TEXT", None)]).unwrap();
        let xmi = crate::xmi::export_repository(&repo).unwrap();
        let loaded = crate::xmi::import_repository(&xmi).unwrap();
        assert_eq!(loaded.instances_of("OntClass").len(), 1);
    }
}
