//! Property-based tests for the metamodel tower: XMI round-trips and
//! validation stability.

use odbis_metamodel::{cwm, export_repository, import_repository, AttrValue, ModelRepository};
use proptest::prelude::*;

fn arb_sql_type() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "BOOLEAN",
        "BIGINT",
        "DOUBLE",
        "TEXT",
        "DATE",
        "TIMESTAMP",
    ])
}

proptest! {
    /// Any valid relational model round-trips through XMI byte-exactly at
    /// the object level, and the reloaded extent revalidates cleanly.
    #[test]
    fn xmi_round_trip(
        tables in prop::collection::vec(
            ("[a-z][a-z0-9_]{0,10}", prop::collection::vec(("[a-z][a-z0-9_]{0,8}", arb_sql_type()), 1..5)),
            1..6,
        )
    ) {
        let mut repo = ModelRepository::new("prop", cwm::relational());
        for (ti, (tname, cols)) in tables.iter().enumerate() {
            let mut col_ids = Vec::new();
            for (ci, (cname, ty)) in cols.iter().enumerate() {
                let id = repo.create(
                    "RelationalColumn",
                    vec![
                        ("name", format!("{cname}_{ti}_{ci}").into()),
                        ("sqlType", (*ty).into()),
                    ],
                ).unwrap();
                col_ids.push(id);
            }
            repo.create(
                "RelationalTable",
                vec![
                    ("name", format!("{tname}_{ti}").into()),
                    ("columns", AttrValue::RefList(col_ids)),
                ],
            ).unwrap();
        }
        prop_assert!(repo.validate().is_empty());
        let xmi = export_repository(&repo).unwrap();
        let loaded = import_repository(&xmi).unwrap();
        prop_assert_eq!(loaded.len(), repo.len());
        prop_assert!(loaded.validate().is_empty());
        // object-level equality
        for obj in repo.objects() {
            let other = loaded.get(&obj.id).unwrap();
            prop_assert_eq!(obj, other);
        }
        // double round-trip is stable
        let xmi2 = export_repository(&loaded).unwrap();
        prop_assert_eq!(xmi, xmi2);
    }

    /// Validation never panics on arbitrary deletions, and the number of
    /// dangling-reference errors equals the number of removed-but-referenced
    /// objects.
    #[test]
    fn validation_total_under_deletion(delete_mask in prop::collection::vec(any::<bool>(), 4)) {
        let mut repo = ModelRepository::new("p", cwm::relational());
        let mut cols = Vec::new();
        for i in 0..4 {
            cols.push(repo.create(
                "RelationalColumn",
                vec![("name", format!("c{i}").into()), ("sqlType", "TEXT".into())],
            ).unwrap());
        }
        repo.create(
            "RelationalTable",
            vec![("name", "t".into()), ("columns", AttrValue::RefList(cols.clone()))],
        ).unwrap();
        let mut deleted = 0;
        for (id, del) in cols.iter().zip(&delete_mask) {
            if *del {
                repo.delete(id).unwrap();
                deleted += 1;
            }
        }
        let errors = repo.validate();
        prop_assert_eq!(errors.len(), deleted);
    }
}
