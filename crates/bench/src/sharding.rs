//! Shard-router / live-migration bench harness (experiment A10): an
//! in-process multi-node cluster — each node a full [`OdbisPlatform`]
//! behind its own [`HttpServer`] with a deliberately small handler pool
//! — driven by per-tenant writer threads issuing durable (fsync=always)
//! `INSERT`s over HTTP.
//!
//! ## What "a node" costs and what adding one buys
//!
//! A node's write capacity here is its handler pool: every insert holds
//! a handler worker through the WAL fsync, so a node admits at most
//! `workers_per_node` concurrent durable writes. The scaling experiment
//! holds the tenant fleet and writer count fixed while growing the
//! cluster, pinning tenants round-robin so each configuration is
//! balanced, and records aggregate acked writes/sec plus client-side
//! latency percentiles at each cluster size. On real hardware each node
//! brings its own cores and disk and the aggregate scales with the pool
//! count; in this reproduction every "node" shares one container vCPU,
//! so wall-clock gains are capped by that shared core and the recorded
//! ratios say so — the probe's report documents the ceiling rather than
//! hiding it.
//!
//! ## Routing
//!
//! Throughput writers route like a redirect-following smart client:
//! resolve the owner from the shared map before each request and talk
//! to it directly (one hop, the steady state after a 307). The
//! migration demo does the opposite — its writers keep hammering the
//! *original* owner's address throughout, so the proxy path and the
//! cutover window are both on the measured path.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use odbis::{build_router, Cluster, MigrationReport, OdbisPlatform};
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_request, HttpServer};

/// One cluster member: platform + its HTTP front door.
pub struct BenchNode {
    /// Node id in the cluster map.
    pub id: String,
    /// Bound listen address (`127.0.0.1:port`).
    pub addr: String,
    /// The node's platform.
    pub platform: Arc<OdbisPlatform>,
    server: HttpServer,
}

/// An n-node in-process cluster with every tenant's token.
pub struct BenchCluster {
    /// The shared fabric (map + membership).
    pub fabric: Arc<Cluster>,
    /// Members in id order (`node-0`, `node-1`, ...).
    pub nodes: Vec<BenchNode>,
    /// tenant → admin session token (valid on every node: identity is
    /// provisioned cluster-wide and sessions are adopted at cutover).
    pub tokens: Vec<(String, String)>,
    root: PathBuf,
}

impl BenchCluster {
    /// Boot `node_count` nodes (each with `workers_per_node` HTTP
    /// handler workers and fsync=always durability), provision
    /// `tenant_count` tenants pinned round-robin across the nodes, log
    /// each in and create its `f` fact table.
    pub fn start(node_count: usize, workers_per_node: usize, tenant_count: usize, tag: &str) -> BenchCluster {
        let root = std::env::var("ODBIS_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| std::env::temp_dir())
            .join(format!("odbis-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let fabric = Cluster::new();
        let mut nodes = Vec::new();
        for i in 0..node_count {
            let id = format!("node-{i}");
            let platform = fabric.add_node(&id, root.join(&id)).expect("add node");
            platform
                .admin
                .config
                .set("durability.fsync", "always".into())
                .expect("declare fsync");
            let server = HttpServer::start(build_router(Arc::clone(&platform)), workers_per_node)
                .expect("start node server");
            let addr = server.addr().to_string();
            fabric.map().set_addr(&id, &addr);
            nodes.push(BenchNode { id, addr, platform, server });
        }

        let mut tokens = Vec::new();
        for t in 0..tenant_count {
            let tenant = format!("t{t:03}");
            // round-robin pin: a balanced fleet at every cluster size
            fabric.map().pin(&tenant, &nodes[t % node_count].id);
            let owner = fabric
                .provision_tenant(&tenant, &tenant, SubscriptionPlan::standard(), "root", "pw")
                .expect("provision");
            let platform = fabric.node(&owner).expect("owner node");
            let token = platform.login(&tenant, "root", "pw").expect("login");
            platform
                .sql(&tenant, &token, "CREATE TABLE f (id INT PRIMARY KEY)")
                .expect("create fact table");
            tokens.push((tenant, token));
        }
        BenchCluster { fabric, nodes, tokens, root }
    }

    /// Address of the node currently owning `tenant`, per the map.
    pub fn owner_addr(&self, tenant: &str) -> String {
        let owner = self.fabric.map().owner(tenant).expect("tenant routed");
        self.fabric.map().addr_of(&owner).expect("owner addr")
    }

    /// Shut the servers down and remove the data directories.
    pub fn teardown(self) {
        for node in self.nodes {
            node.server.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Post one durable insert for `tenant` to `addr`; true iff acked (200).
pub fn insert_http(addr: &str, tenant: &str, token: &str, id: i64) -> bool {
    matches!(
        http_request(
            addr,
            "POST",
            "/api/v1/sql",
            &[("x-tenant", tenant), ("x-token", token)],
            format!("INSERT INTO f VALUES ({id})").as_bytes(),
        ),
        Ok((200, _, _))
    )
}

/// Where the writer threads aim their requests.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Resolve the owner from the map before each request and talk to
    /// it directly — the redirect-following smart-client steady state.
    MapFirst,
    /// Send everything to node 0 regardless of ownership, so every
    /// non-resident tenant's request takes the proxy hop. Measures the
    /// router tax.
    FixedEntry,
}

/// Aggregate result of a timed write run.
pub struct Throughput {
    /// Acked (200) writes/sec across the fleet over the timed window.
    pub acked_per_sec: f64,
    /// Median per-request latency, microseconds.
    pub p50_micros: u64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_micros: u64,
}

/// One writer thread per tenant for `warmup + window`; returns the
/// aggregate acked rate and client-observed latency percentiles over
/// the timed window.
pub fn timed_write_throughput(
    cluster: &BenchCluster,
    routing: Routing,
    warmup: Duration,
    window: Duration,
) -> Throughput {
    let stop = Arc::new(AtomicBool::new(false));
    let counting = Arc::new(AtomicBool::new(false));
    let latencies: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::default();
    let entry = cluster.nodes[0].addr.clone();
    let workers: Vec<_> = cluster
        .tokens
        .iter()
        .enumerate()
        .map(|(w, (tenant, token))| {
            let map = Arc::clone(cluster.fabric.map());
            let (tenant, token) = (tenant.clone(), token.clone());
            let entry = entry.clone();
            let (stop, counting, latencies) =
                (Arc::clone(&stop), Arc::clone(&counting), Arc::clone(&latencies));
            std::thread::spawn(move || {
                let mut id = (w as i64 + 1) * 10_000_000;
                while !stop.load(Ordering::Relaxed) {
                    let addr = match routing {
                        Routing::FixedEntry => entry.clone(),
                        Routing::MapFirst => map
                            .owner(&tenant)
                            .and_then(|n| map.addr_of(&n))
                            .expect("owner addr"),
                    };
                    let started = Instant::now();
                    if insert_http(&addr, &tenant, &token, id) && counting.load(Ordering::Relaxed) {
                        latencies.lock().push(started.elapsed().as_micros() as u64);
                    }
                    id += 1;
                }
            })
        })
        .collect();

    std::thread::sleep(warmup);
    counting.store(true, Ordering::Relaxed);
    let started = Instant::now();
    std::thread::sleep(window);
    counting.store(false, Ordering::Relaxed);
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let mut lat = latencies.lock().clone();
    lat.sort_unstable();
    let pct = |q: f64| lat[((lat.len().max(1) - 1) as f64 * q) as usize];
    Throughput {
        acked_per_sec: lat.len() as f64 / elapsed.as_secs_f64(),
        p50_micros: pct(0.5),
        p99_micros: pct(0.99),
    }
}

/// Outcome of [`migrate_under_load`].
pub struct MigrationDemo {
    /// The fabric's migration report.
    pub report: MigrationReport,
    /// Writes acknowledged with 200 across the whole run.
    pub acked: BTreeSet<i64>,
    /// Requests that came back non-200 (caught mid-cutover and retried
    /// by id bump — the protocol only promises acked durability).
    pub rejected: u64,
    /// Ids actually present on the new owner afterwards.
    pub present: BTreeSet<i64>,
    /// `acked - present`: must be empty.
    pub lost: BTreeSet<i64>,
}

/// Live-migrate `tenant` to `target` while `writer_count` threads keep
/// writing **to the original owner's address** (exercising the proxy
/// before the flip and after it). Returns the acked/present audit.
pub fn migrate_under_load(
    cluster: &BenchCluster,
    tenant: &str,
    token: &str,
    target: &str,
    writer_count: usize,
) -> MigrationDemo {
    let origin = cluster.owner_addr(tenant);
    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(parking_lot::Mutex::new(BTreeSet::new()));
    let rejected = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..writer_count as i64)
        .map(|w| {
            let (origin, tenant, token) = (origin.clone(), tenant.to_string(), token.to_string());
            let (stop, acked, rejected) = (Arc::clone(&stop), Arc::clone(&acked), Arc::clone(&rejected));
            std::thread::spawn(move || {
                let mut id = (w + 1) * 10_000_000;
                while !stop.load(Ordering::Relaxed) {
                    if insert_http(&origin, &tenant, &token, id) {
                        acked.lock().insert(id);
                    } else {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    id += 1;
                }
            })
        })
        .collect();

    // writers running — move the tenant out from under them
    while acked.lock().len() < 25 {
        std::thread::yield_now();
    }
    let report = cluster.fabric.migrate(tenant, target).expect("migration");
    // keep load on the (now proxying) old address past the flip
    let after = acked.lock().len();
    while acked.lock().len() < after + 25 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    let new_owner = cluster.fabric.node(target).expect("target node");
    let result = new_owner
        .sql(tenant, token, "SELECT id FROM f")
        .expect("post-migration scan");
    let present: BTreeSet<i64> = result
        .rows
        .iter()
        .map(|row| match &row[0] {
            odbis_storage::Value::Int(v) => *v,
            other => panic!("non-int id: {other:?}"),
        })
        .collect();
    let acked = Arc::try_unwrap(acked)
        .map(parking_lot::Mutex::into_inner)
        .unwrap_or_else(|a| a.lock().clone());
    let lost: BTreeSet<i64> = acked.difference(&present).copied().collect();
    MigrationDemo {
        report,
        acked,
        rejected: rejected.load(Ordering::Relaxed),
        present,
        lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_scales_and_migrates() {
        let cluster = BenchCluster::start(2, 2, 2, "selftest");
        let t = timed_write_throughput(
            &cluster,
            Routing::MapFirst,
            Duration::from_millis(50),
            Duration::from_millis(200),
        );
        assert!(t.acked_per_sec > 0.0, "no writes acked");
        assert!(t.p99_micros >= t.p50_micros);
        let (tenant, token) = cluster.tokens[0].clone();
        let owner = cluster.fabric.map().owner(&tenant).unwrap();
        let target = if owner == "node-0" { "node-1" } else { "node-0" };
        let demo = migrate_under_load(&cluster, &tenant, &token, target, 2);
        assert!(demo.lost.is_empty(), "acked writes lost: {:?}", demo.lost);
        assert_eq!(demo.report.to, target);
        cluster.teardown();
    }
}
