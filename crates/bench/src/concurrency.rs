//! Shared harness for the lock-granularity experiments: a mixed
//! read/write multi-tenant workload that can run against the per-table
//! locking the storage layer ships, or against an emulation of the old
//! database-wide lock.
//!
//! ## The two modes
//!
//! [`LockMode::PerTable`] drives the [`Database`] as-is: readers take only
//! their table's read lock, writers only their table's write lock (plus
//! the WAL file mutex inside the flush).
//!
//! [`LockMode::SingleLock`] wraps every statement in an *outer*
//! database-wide `RwLock<()>` — shared for reads, exclusive for writes,
//! held for the whole statement **including the WAL fsync** — which is
//! exactly the old `RwLock<HashMap<String, Table>>` discipline. The inner
//! per-table locks are still taken but are uncontended under the outer
//! gate, so the emulation measures the seed's blocking behavior on the
//! current row/WAL code paths rather than resurrecting old code.
//!
//! ## Workload shape
//!
//! `TENANTS` tenants, each its own [`DurableStore`] (fsync=always — a
//! writer statement really stalls in the disk flush). Per tenant: one
//! `dim` table (the dashboard target, scanned and aggregated by readers
//! through the cached columnar batch) and one `fact_<w>` table per writer
//! (the ETL target, single-row journaled inserts). Of `n` worker threads,
//! `n/2` write and the rest read; both roles round-robin across tenants.
//! This is the ODBIS contention story in miniature: ETL inserts into fact
//! tables racing dashboard aggregates over dimension tables of the same
//! tenant.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use odbis_storage::{
    Column, ColumnData, DataType, Database, DurableStore, FsyncPolicy, Schema, Value, WalSink,
};
use parking_lot::RwLock;

/// Rows in each tenant's `dim` table.
pub const DIM_ROWS: i64 = 2_000;
/// Tenants (separate databases, separate WALs) in the fleet.
pub const TENANTS: usize = 2;

/// Which locking discipline the workload runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Per-table locks — the shipped design.
    PerTable,
    /// One database-wide reader-writer gate around every statement — the
    /// seed's `RwLock<HashMap<String, Table>>` discipline.
    SingleLock,
}

impl LockMode {
    /// Stable label for bench ids and reports.
    pub fn label(self) -> &'static str {
        match self {
            LockMode::PerTable => "pertable",
            LockMode::SingleLock => "singlelock",
        }
    }
}

/// One tenant: a durable database plus the optional database-wide gate.
pub struct Tenant {
    db: Arc<Database>,
    gate: Option<Arc<RwLock<()>>>,
    dir: PathBuf,
}

impl Tenant {
    fn open(dir: PathBuf, mode: LockMode, writers: usize) -> Tenant {
        let _ = std::fs::remove_dir_all(&dir);
        let (db, store) = DurableStore::open(&dir, FsyncPolicy::Always).expect("open store");
        db.set_wal_sink(Arc::clone(store.wal()) as Arc<dyn WalSink>);
        db.create_table(
            "dim",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("region", DataType::Text),
                Column::new("amount", DataType::Float),
            ])
            .unwrap(),
        )
        .unwrap();
        db.insert_many(
            "dim",
            (0..DIM_ROWS)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::from(if i % 2 == 0 { "EU" } else { "US" }),
                        Value::Float(i as f64 * 1.25),
                    ]
                })
                .collect(),
        )
        .unwrap();
        for w in 0..writers.max(1) {
            db.create_table(
                &format!("fact_{w}"),
                Schema::new(vec![
                    Column::new("k", DataType::Int),
                    Column::new("v", DataType::Int),
                ])
                .unwrap(),
            )
            .unwrap();
        }
        // `store` holds the WAL the sink Arc points at; keep it alive by
        // leaking into the db's lifetime via the sink Arc (the sink IS the
        // wal), and drop the store handle itself.
        drop(store);
        Tenant {
            db: Arc::new(db),
            gate: match mode {
                LockMode::PerTable => None,
                LockMode::SingleLock => Some(Arc::new(RwLock::new(()))),
            },
            dir,
        }
    }

    /// One dashboard read: aggregate the dim table's `id` column through
    /// the cached columnar batch (a few µs of CPU — the op a dashboard
    /// repeats all day).
    pub fn read_op(&self) -> i64 {
        let _shared = self.gate.as_ref().map(|g| g.read());
        let batch = self.db.scan_batch("dim").expect("dim scan");
        match batch.column(0).data() {
            ColumnData::Int(v) => v.iter().sum(),
            other => panic!("dim id column decoded as {other:?}"),
        }
    }

    /// One ETL write: a journaled single-row insert into this writer's
    /// fact table; at fsync=always the statement stalls in the disk flush
    /// while (under per-table locking) readers keep going.
    pub fn write_op(&self, writer: usize, k: i64) {
        let _exclusive = self.gate.as_ref().map(|g| g.write());
        self.db
            .insert(
                &format!("fact_{writer}"),
                vec![Value::Int(k), Value::Int(2 * k)],
            )
            .expect("fact insert");
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A fleet of tenants for one experiment run.
pub struct Fleet {
    pub tenants: Vec<Arc<Tenant>>,
}

/// Scratch root for the tenant stores. `ODBIS_BENCH_DIR` overrides (point
/// it at a real filesystem — on tmpfs the fsync that creates the writer
/// stall is nearly free and the single-lock baseline looks better than a
/// disk-backed deployment would).
pub fn scratch_root(tag: &str) -> PathBuf {
    let root = std::env::var_os("ODBIS_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    root.join(format!("odbis-concurrency-{tag}-{}", std::process::id()))
}

impl Fleet {
    /// Build `TENANTS` tenants under `root`, each with `writers_per_tenant`
    /// fact tables pre-created.
    pub fn open(root: &Path, mode: LockMode, writers_per_tenant: usize) -> Fleet {
        let tenants = (0..TENANTS)
            .map(|t| {
                Arc::new(Tenant::open(
                    root.join(format!("tenant{t}")),
                    mode,
                    writers_per_tenant,
                ))
            })
            .collect();
        Fleet { tenants }
    }
}

/// Measured mixed throughput for one `(mode, threads)` cell.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Reader ops completed in the measurement window.
    pub reads: u64,
    /// Writer ops completed in the measurement window.
    pub writes: u64,
    /// Measurement window length.
    pub window: Duration,
}

impl Throughput {
    /// Reads + writes per second.
    pub fn mixed_per_sec(&self) -> f64 {
        (self.reads + self.writes) as f64 / self.window.as_secs_f64()
    }

    /// Reads per second.
    pub fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / self.window.as_secs_f64()
    }

    /// Writes per second.
    pub fn writes_per_sec(&self) -> f64 {
        self.writes as f64 / self.window.as_secs_f64()
    }
}

/// Role split for `n` worker threads: writers first, then readers.
pub fn split(n: usize) -> (usize, usize) {
    let writers = n / 2;
    (writers, n - writers)
}

/// Run the mixed workload on `n` threads for `warmup + window`, counting
/// only ops that complete inside the window. Writers and readers both
/// free-run; the counters tell the story (under the single lock the
/// readers collapse, under per-table locks they don't).
pub fn timed_mixed_throughput(
    mode: LockMode,
    n: usize,
    warmup: Duration,
    window: Duration,
) -> Throughput {
    let (writers, readers) = split(n);
    let root = scratch_root(&format!("tp-{}-{n}", mode.label()));
    let fleet = Fleet::open(&root, mode, writers.div_ceil(TENANTS).max(1));
    let stop = Arc::new(AtomicBool::new(false));
    let counting = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for w in 0..writers {
        let tenant = Arc::clone(&fleet.tenants[w % TENANTS]);
        let writer_slot = w / TENANTS;
        let stop = Arc::clone(&stop);
        let counting = Arc::clone(&counting);
        let writes = Arc::clone(&writes);
        handles.push(std::thread::spawn(move || {
            let mut k = 0i64;
            while !stop.load(Ordering::Relaxed) {
                tenant.write_op(writer_slot, k);
                k += 1;
                if counting.load(Ordering::Relaxed) {
                    writes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for r in 0..readers {
        let tenant = Arc::clone(&fleet.tenants[r % TENANTS]);
        let stop = Arc::clone(&stop);
        let counting = Arc::clone(&counting);
        let reads = Arc::clone(&reads);
        handles.push(std::thread::spawn(move || {
            let mut acc = 0i64;
            while !stop.load(Ordering::Relaxed) {
                acc = acc.wrapping_add(tenant.read_op());
                if counting.load(Ordering::Relaxed) {
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            }
            std::hint::black_box(acc);
        }));
    }

    std::thread::sleep(warmup);
    counting.store(true, Ordering::Relaxed);
    let started = Instant::now();
    std::thread::sleep(window);
    counting.store(false, Ordering::Relaxed);
    let measured = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("worker panicked");
    }
    let result = Throughput {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        window: measured,
    };
    drop(fleet);
    let _ = std::fs::remove_dir_all(&root);
    result
}

/// Fixed-work shape for criterion: the time for every reader to finish
/// `scans_per_reader` aggregates while the writer half churns journaled
/// inserts the whole time. This is the user-visible defect measured
/// directly — dashboard latency while ETL runs — and unlike a fixed
/// total-ops shape it is not Amdahl-capped at 2× on one core.
pub fn readers_complete_under_write_load(
    fleet: &Fleet,
    n: usize,
    scans_per_reader: usize,
) -> Duration {
    let (writers, readers) = split(n);
    let stop = Arc::new(AtomicBool::new(false));
    let mut writer_handles = Vec::new();
    for w in 0..writers {
        let tenant = Arc::clone(&fleet.tenants[w % TENANTS]);
        let writer_slot = w / TENANTS;
        let stop = Arc::clone(&stop);
        writer_handles.push(std::thread::spawn(move || {
            let mut k = 0i64;
            while !stop.load(Ordering::Relaxed) {
                tenant.write_op(writer_slot, k);
                k += 1;
            }
        }));
    }

    let started = Instant::now();
    let mut reader_handles = Vec::new();
    for r in 0..readers {
        let tenant = Arc::clone(&fleet.tenants[r % TENANTS]);
        reader_handles.push(std::thread::spawn(move || {
            let mut acc = 0i64;
            for _ in 0..scans_per_reader {
                acc = acc.wrapping_add(tenant.read_op());
            }
            std::hint::black_box(acc);
        }));
    }
    for h in reader_handles {
        h.join().expect("reader panicked");
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    for h in writer_handles {
        h.join().expect("writer panicked");
    }
    elapsed
}
