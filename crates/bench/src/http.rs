//! HTTP server benchmarks for experiment A7: connection scaling of the
//! epoll reactor vs the thread-per-connection cap of the threaded
//! backend, and noisy-neighbor isolation under per-tenant admission
//! control. The `http_probe` example drives these and its output is
//! recorded in `BENCH_http.json`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use odbis::{serve_platform, OdbisPlatform};
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{Backend, HttpResponse, HttpServer, Method, Router};

fn ping_router() -> Router {
    let mut r = Router::new();
    r.route(Method::Get, "/ping", |_, _| HttpResponse::text("pong"));
    r
}

/// A reactor-backed `/ping` server with a long idle timeout — the target
/// of the connection-scaling probe. Public so the probe example can run
/// it in a separate process: holding both ends of 10k connections needs
/// ~20k descriptors, more than one process gets on a stock `ulimit -n`.
pub fn ping_server(workers: usize) -> std::io::Result<HttpServer> {
    HttpServer::builder(ping_router())
        .workers(workers)
        .backend(Backend::Reactor)
        .idle_timeout(Duration::from_secs(600))
        .start()
}

/// A herd of established keep-alive connections (each has completed one
/// round-trip, proving the server parsed and answered on it).
pub struct Herd {
    conns: Vec<TcpStream>,
    /// Wall-clock seconds to connect + first-round-trip the whole herd.
    pub open_secs: f64,
}

/// Open `target` keep-alive connections and round-trip once on each.
pub fn open_herd(addr: &str, target: usize) -> std::io::Result<Herd> {
    let t0 = Instant::now();
    let mut conns = Vec::with_capacity(target);
    for _ in 0..target {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(10)))?;
        round_trip(&mut s);
        conns.push(s);
    }
    Ok(Herd {
        conns,
        open_secs: t0.elapsed().as_secs_f64(),
    })
}

/// Sample `sample` round-trips evenly across the held herd; returns the
/// sorted latencies in microseconds.
pub fn sample_herd(herd: &mut Herd, sample: usize) -> Vec<u64> {
    let step = (herd.conns.len() / sample).max(1);
    let mut lat: Vec<u64> = Vec::with_capacity(sample);
    for i in (0..herd.conns.len()).step_by(step) {
        lat.push(round_trip(&mut herd.conns[i]).as_micros() as u64);
    }
    lat.sort_unstable();
    lat
}

/// Percentile out of an already-sorted latency vector (nearest-rank).
pub fn pct(sorted: &[u64], p: usize) -> u64 {
    percentile(sorted, p)
}

/// One blocking round-trip on an already-open keep-alive connection.
/// Returns the wall-clock latency. Panics on a malformed response — the
/// bench must not silently count failures as fast requests.
fn round_trip(stream: &mut TcpStream) -> Duration {
    let t0 = Instant::now();
    stream
        .write_all(b"GET /ping HTTP/1.1\r\nHost: bench\r\n\r\n")
        .expect("write request");
    // responses are small and Content-Length framed; reading until the
    // known body suffices for the fixed /ping payload
    let mut buf = [0u8; 1024];
    let mut seen = Vec::new();
    loop {
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed a keep-alive connection");
        seen.extend_from_slice(&buf[..n]);
        if seen.windows(4).any(|w| w == b"\r\n\r\n") && seen.ends_with(b"pong") {
            break;
        }
    }
    t0.elapsed()
}

/// Result of the reactor connection-scaling probe.
pub struct ConnScaling {
    /// Connections asked for.
    pub target: usize,
    /// Connections the server reported open once all were established.
    pub held: usize,
    /// Round-trips sampled across the held set after establishment.
    pub sampled: usize,
    /// Sampled request latency, p50 (microseconds).
    pub p50_micros: u64,
    /// Sampled request latency, p99 (microseconds).
    pub p99_micros: u64,
    /// Wall-clock seconds to open + first-round-trip all connections.
    pub open_secs: f64,
}

/// Open `target` keep-alive connections against a reactor-backed server,
/// round-trip one request on each so every connection is established and
/// parsed, hold them all open, then sample `sample` round-trips across
/// the set to show the server still answers with the whole herd idle.
pub fn reactor_connection_scaling(target: usize, sample: usize) -> std::io::Result<ConnScaling> {
    let server = ping_server(2)?;
    let addr = server.addr().to_string();
    let mut herd = open_herd(&addr, target)?;
    let held = server.connections_open().unwrap_or(0) as usize;
    let lat = sample_herd(&mut herd, sample);
    let result = ConnScaling {
        target,
        held,
        sampled: lat.len(),
        p50_micros: percentile(&lat, 50),
        p99_micros: percentile(&lat, 99),
        open_secs: herd.open_secs,
    };
    drop(herd);
    server.shutdown();
    Ok(result)
}

/// How many keep-alive connections the threaded backend can actually
/// serve at once: each live connection pins a worker thread, so the
/// (workers + 1)-th connection's request stalls until someone hangs up.
/// Returns the number of concurrently-responsive connections observed.
pub fn threaded_connection_cap(workers: usize) -> std::io::Result<usize> {
    let server = HttpServer::builder(ping_router())
        .workers(workers)
        .backend(Backend::Threaded)
        .start()?;
    let addr = server.addr();

    let mut responsive = 0usize;
    let mut conns = Vec::new();
    for _ in 0..workers + 4 {
        let mut s = TcpStream::connect(addr)?;
        // short timeout: a stalled request means the pool is pinned out
        s.set_read_timeout(Some(Duration::from_millis(500)))?;
        s.write_all(b"GET /ping HTTP/1.1\r\nHost: bench\r\n\r\n")?;
        let mut buf = [0u8; 1024];
        match s.read(&mut buf) {
            Ok(n) if n > 0 => responsive += 1,
            _ => {
                break;
            }
        }
        conns.push(s); // hold the connection, pinning its worker
    }
    drop(conns);
    server.shutdown();
    Ok(responsive)
}

/// Result of the noisy-neighbor probe.
pub struct NoisyNeighbor {
    /// Quiet tenant's p50/p99 with no other traffic (microseconds).
    pub solo_p50_micros: u64,
    pub solo_p99_micros: u64,
    /// Quiet tenant's p50/p99 while the noisy tenant blasts (microseconds).
    pub contended_p50_micros: u64,
    pub contended_p99_micros: u64,
    /// Noisy tenant's admitted (200) and throttled (429) counts.
    pub noisy_ok: u32,
    pub noisy_throttled: u32,
    /// Quiet responses that were not a 200 (must be 0).
    pub quiet_errors: u32,
    /// Quiet requests measured per phase.
    pub quiet_requests: u32,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * p / 100).min(sorted.len() - 1);
    sorted[idx]
}

fn quiet_phase(addr: &str, requests: u32, pace: Duration) -> (Vec<u64>, u32) {
    let mut lat = Vec::with_capacity(requests as usize);
    let mut errors = 0u32;
    for _ in 0..requests {
        let t0 = Instant::now();
        match odbis_web::http_request(addr, "GET", "/api/v1/health", &[("x-tenant", "quiet")], b"")
        {
            Ok((200, _, _)) => lat.push(t0.elapsed().as_micros() as u64),
            _ => errors += 1,
        }
        std::thread::sleep(pace);
    }
    lat.sort_unstable();
    (lat, errors)
}

/// Fairness probe: the noisy tenant hammers from `noisy_threads` parallel
/// clients at well past 10x its configured rate while the quiet tenant
/// issues `quiet_requests` paced requests. Acceptance: the quiet p99
/// under contention stays within 2x its solo baseline, and the noisy
/// tenant collects structured 429s rather than starving the box.
pub fn noisy_neighbor(
    rate: i64,
    burst: i64,
    queue_depth: i64,
    noisy_threads: usize,
    quiet_requests: u32,
) -> std::io::Result<NoisyNeighbor> {
    let platform = Arc::new(OdbisPlatform::new());
    for t in ["noisy", "quiet"] {
        platform
            .provision_tenant(t, t, SubscriptionPlan::standard(), "root", "pw")
            .expect("provision");
    }
    let cfg = &platform.admin.config;
    cfg.set_for_tenant("noisy", "limits.rate", rate.into())
        .expect("rate");
    cfg.set_for_tenant("noisy", "limits.burst", burst.into())
        .expect("burst");
    cfg.set_for_tenant("noisy", "limits.queue_depth", queue_depth.into())
        .expect("queue");
    let server = serve_platform(&platform, 4)?;
    let addr = server.addr().to_string();
    let pace = Duration::from_millis(5);

    // phase 1: quiet tenant alone — the baseline
    let (solo, solo_errors) = quiet_phase(&addr, quiet_requests, pace);

    // phase 2: the noisy herd blasts while quiet repeats the same paced run
    let stop = Arc::new(AtomicBool::new(false));
    let noisy: Vec<_> = (0..noisy_threads)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let (mut ok, mut throttled) = (0u32, 0u32);
                while !stop.load(Ordering::Relaxed) {
                    match odbis_web::http_request(
                        &addr,
                        "GET",
                        "/api/v1/health",
                        &[("x-tenant", "noisy")],
                        b"",
                    ) {
                        Ok((200, _, _)) => ok += 1,
                        Ok((429, _, _)) => throttled += 1,
                        _ => {}
                    }
                }
                (ok, throttled)
            })
        })
        .collect();
    let (contended, contended_errors) = quiet_phase(&addr, quiet_requests, pace);
    stop.store(true, Ordering::Relaxed);
    let (mut noisy_ok, mut noisy_throttled) = (0u32, 0u32);
    for h in noisy {
        let (o, t) = h.join().expect("noisy thread");
        noisy_ok += o;
        noisy_throttled += t;
    }
    server.shutdown();

    Ok(NoisyNeighbor {
        solo_p50_micros: percentile(&solo, 50),
        solo_p99_micros: percentile(&solo, 99),
        contended_p50_micros: percentile(&contended, 50),
        contended_p99_micros: percentile(&contended, 99),
        noisy_ok,
        noisy_throttled,
        quiet_errors: solo_errors + contended_errors,
        quiet_requests,
    })
}
