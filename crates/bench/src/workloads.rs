//! Deterministic synthetic workload generators for the benchmark harness
//! and examples. The paper publishes no data sets; each generator is
//! seeded, so every run of the harness sees identical data.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use odbis_sql::Engine;
use odbis_storage::{Database, Value};

/// Department names for the healthcare workload (the domain of the
/// paper's Figure 6 dashboard).
pub const DEPARTMENTS: [&str; 6] = [
    "Cardiology",
    "Oncology",
    "Pediatrics",
    "Neurology",
    "Orthopedics",
    "Emergency",
];

/// Regions used by the retail/SaaS workloads.
pub const REGIONS: [&str; 4] = ["EU", "US", "APAC", "LATAM"];

/// Build the healthcare star schema and fill it with `admissions` synthetic
/// admissions spanning 2008–2010. Returns the populated database.
///
/// Tables: `dim_department(dept_id, name, head_count)` and
/// `fact_admission(id, dept_id, year, month, cost, stay_days)`.
pub fn healthcare_db(admissions: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = Database::new();
    let engine = Engine::new();
    engine
        .execute_script(
            &db,
            "CREATE TABLE dim_department (dept_id INT PRIMARY KEY, name TEXT NOT NULL, head_count INT);
             CREATE TABLE fact_admission (id INT PRIMARY KEY, dept_id INT, year INT, month INT, cost DOUBLE, stay_days INT);",
        )
        .expect("static DDL");
    for (i, name) in DEPARTMENTS.iter().enumerate() {
        db.insert(
            "dim_department",
            vec![
                Value::Int(i as i64),
                Value::from(*name),
                Value::Int(rng.random_range(20..200)),
            ],
        )
        .expect("dimension insert");
    }
    let mut rows = Vec::with_capacity(admissions);
    for id in 0..admissions {
        let dept = rng.random_range(0..DEPARTMENTS.len() as i64);
        let year = rng.random_range(2008..=2010i64);
        let month = rng.random_range(1..=12i64);
        // costs are department-skewed so the dashboard has structure
        let base = 500.0 + dept as f64 * 400.0;
        let cost = base + rng.random_range(0.0..2_000.0);
        let stay = rng.random_range(1..=21i64);
        rows.push(vec![
            Value::Int(id as i64),
            Value::Int(dept),
            Value::Int(year),
            Value::Int(month),
            Value::Float((cost * 100.0).round() / 100.0),
            Value::Int(stay),
        ]);
    }
    db.insert_many("fact_admission", rows).expect("fact insert");
    db
}

/// Generate retail order rows `(region, product_id, amount)` for the
/// multi-tenant workloads.
pub fn retail_orders(n: usize, seed: u64) -> Vec<(String, i64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let region = REGIONS[rng.random_range(0..REGIONS.len())].to_string();
            let product = rng.random_range(0..500i64);
            let amount: f64 = rng.random_range(1.0..1_000.0);
            (region, product, (amount * 100.0).round() / 100.0)
        })
        .collect()
}

/// Build a `(k INT, v INT)` table with `n` rows of uniformly random keys in
/// `0..key_space`, optionally indexed on `k`. Used by the storage/SQL
/// ablation benchmarks.
pub fn keyed_table(db: &Database, n: usize, key_space: i64, indexed: bool, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let engine = Engine::new();
    engine
        .execute(db, "CREATE TABLE bench_kv (k INT, v INT)")
        .expect("DDL");
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| {
            vec![
                Value::Int(rng.random_range(0..key_space)),
                Value::Int(rng.random_range(0..1_000_000)),
            ]
        })
        .collect();
    db.insert_many("bench_kv", rows).expect("insert");
    if indexed {
        engine
            .execute(db, "CREATE INDEX ix_bench_k ON bench_kv (k)")
            .expect("index");
    }
}

/// CSV text for an ETL workload: `id,region,amount,quality` with a
/// configurable share of rows that fail a positive-amount filter.
pub fn etl_csv(rows: usize, bad_share_percent: u8, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("id,region,amount,quality\n");
    for id in 0..rows {
        let region = REGIONS[rng.random_range(0..REGIONS.len())];
        let bad = rng.random_range(0..100) < i64::from(bad_share_percent);
        let amount = if bad {
            -rng.random_range(1.0..100.0f64)
        } else {
            rng.random_range(1.0..500.0f64)
        };
        let quality = rng.random_range(0..=5i64);
        out.push_str(&format!("{id},{region},{amount:.2},{quality}\n"));
    }
    out
}

/// Facts for the rules-engine workload: `Usage` facts across `tenants`
/// tenants, a known share exceeding the alert threshold of 1000 units.
pub fn usage_facts(n: usize, tenants: usize, seed: u64) -> Vec<odbis_rules::Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let t = rng.random_range(0..tenants);
            let units = rng.random_range(0..2_000i64);
            odbis_rules::Fact::new("Usage")
                .with("tenant", format!("t{t}"))
                .with("units", units)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthcare_db_is_deterministic_and_populated() {
        let a = healthcare_db(200, 7);
        let b = healthcare_db(200, 7);
        assert_eq!(
            a.scan("fact_admission").unwrap(),
            b.scan("fact_admission").unwrap()
        );
        assert_eq!(a.row_count("dim_department").unwrap(), 6);
        assert_eq!(a.row_count("fact_admission").unwrap(), 200);
        let c = healthcare_db(200, 8);
        assert_ne!(
            a.scan("fact_admission").unwrap(),
            c.scan("fact_admission").unwrap()
        );
    }

    #[test]
    fn keyed_table_builds_with_and_without_index() {
        let db = Database::new();
        keyed_table(&db, 100, 50, true, 1);
        assert_eq!(db.row_count("bench_kv").unwrap(), 100);
        db.read_table("bench_kv", |t| assert!(t.index("ix_bench_k").is_some()))
            .unwrap();
        let db2 = Database::new();
        keyed_table(&db2, 100, 50, false, 1);
        db2.read_table("bench_kv", |t| assert!(t.index("ix_bench_k").is_none()))
            .unwrap();
        // same seed → same data regardless of indexing
        assert_eq!(db.scan("bench_kv").unwrap(), db2.scan("bench_kv").unwrap());
    }

    #[test]
    fn etl_csv_shape() {
        let csv = etl_csv(50, 20, 3);
        assert_eq!(csv.lines().count(), 51);
        let frame = odbis_etl::parse_csv(&csv).unwrap();
        assert_eq!(frame.len(), 50);
        let negatives = frame
            .rows
            .iter()
            .filter(|r| r[2].as_f64().unwrap_or(0.0) < 0.0)
            .count();
        assert!(negatives > 0 && negatives < 50);
    }

    #[test]
    fn usage_facts_span_tenants() {
        let facts = usage_facts(100, 4, 9);
        assert_eq!(facts.len(), 100);
        let t0 = facts
            .iter()
            .filter(|f| f.get("tenant") == Value::from("t0"))
            .count();
        assert!(t0 > 0);
    }
}
