//! Checkpoint-format workload: a synthetic BI warehouse for comparing the
//! binary columnar segment checkpoint against the JSON snapshot it
//! replaced (experiment A8).
//!
//! The warehouse is shaped like the paper's on-demand BI tenants: several
//! fact tables whose columns are exactly the shapes the segment encodings
//! target — low-cardinality dimension strings (dict), near-sorted dates
//! (rle/bitpack), sequential ids (bitpack) and measures (plain). The
//! incremental scenario mutates **one** table out of N and checkpoints:
//! segments re-encode only the dirty table, JSON rewrites the world.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use odbis_storage::{
    Column, DataType, Database, DurableStore, FsyncPolicy, Schema, SnapshotFormat, Value, WalSink,
};

/// Tables in the synthetic warehouse.
pub const TABLES: usize = 8;
/// Rows per table.
pub const ROWS: usize = 10_000;

/// Scratch directory for one persist-bench store, preferring tmpfs so the
/// timings capture encode/decode work rather than writeback jitter.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let shm = PathBuf::from("/dev/shm");
    let root = if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    };
    let dir = root.join(format!(
        "odbis-bench-persist-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fact_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("region", DataType::Text).not_null(),
        Column::new("status", DataType::Text),
        Column::new("day", DataType::Date),
        Column::new("ts", DataType::Timestamp),
        Column::new("amount", DataType::Float),
    ])
    .unwrap()
    .with_primary_key(&["id"])
    .unwrap()
}

const REGIONS: &[&str] = &["eu", "us", "apac", "latam"];
const STATUSES: &[&str] = &["open", "shipped", "returned"];

/// One deterministic BI-shaped row: dict-friendly strings, near-sorted
/// date/timestamp, sequential id, plain float measure.
pub fn fact_row(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::from(REGIONS[(i % REGIONS.len() as i64) as usize]),
        if i % 17 == 0 {
            Value::Null
        } else {
            Value::from(STATUSES[(i % STATUSES.len() as i64) as usize])
        },
        Value::Date(20_000 + (i / 500) as i32),
        Value::Timestamp(1_700_000_000_000_000 + i * 1_000_000),
        Value::Float(i as f64 * 1.25),
    ]
}

/// Open a durable store in `dir` under `format` and load a `tables`×`rows`
/// warehouse through journaled `insert_many` statements.
pub fn build_warehouse_sized(
    dir: &Path,
    format: SnapshotFormat,
    tables: usize,
    rows: usize,
) -> (Database, DurableStore) {
    let (db, store) = DurableStore::open_with_format(dir, FsyncPolicy::Never, format).unwrap();
    db.set_wal_sink(Arc::clone(store.wal()) as Arc<dyn WalSink>);
    for t in 0..tables {
        let name = format!("fact_{t}");
        db.create_table(&name, fact_schema()).unwrap();
        for start in (0..rows as i64).step_by(500) {
            let chunk = 500.min(rows as i64 - start);
            let batch = (start..start + chunk).map(fact_row).collect();
            db.insert_many(&name, batch).unwrap();
        }
    }
    (db, store)
}

/// [`build_warehouse_sized`] at the standard [`TABLES`]×[`ROWS`] scale.
pub fn build_warehouse(dir: &Path, format: SnapshotFormat) -> (Database, DurableStore) {
    build_warehouse_sized(dir, format, TABLES, ROWS)
}

/// Mutate one table (append `n` rows to `fact_0`) so exactly one table is
/// dirty for the next checkpoint. Each call draws from a fresh pk range,
/// so bench loops can call it repeatedly against one store.
pub fn dirty_one_table(db: &Database, n: usize) {
    static NEXT_PK: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(1_000_000);
    let base = NEXT_PK.fetch_add(n as i64, Ordering::Relaxed);
    let rows = (0..n as i64).map(|i| fact_row(base + i)).collect();
    db.insert_many("fact_0", rows).unwrap();
}

/// Dirty one table without growing it: rewrite rows `0..n` of `fact_0`
/// in place (same pk, same shape). Keeps repeated bench iterations
/// checkpointing a constant-size table.
pub fn touch_one_table(db: &Database, n: usize) {
    for i in 0..n as i64 {
        db.write_table("fact_0", |t| t.update(i as u64, fact_row(i)))
            .unwrap()
            .unwrap();
    }
}

/// Total bytes of checkpoint artifacts (snapshot.json, manifest,
/// segments) under `dir` — the on-disk footprint a tenant pays at rest.
pub fn checkpoint_footprint(dir: &Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if name == "snapshot.json" || name == "manifest.json" || name.ends_with(".seg") {
                total += e.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

/// Timings (µs) and sizes (bytes) for one format's full cycle.
#[derive(Debug, Clone)]
pub struct PersistRun {
    /// Checkpoint with every table dirty (first fold after load).
    pub full_checkpoint_us: u64,
    /// Tables re-encoded by the full checkpoint.
    pub full_tables_flushed: usize,
    /// Checkpoint with one table of [`TABLES`] dirty.
    pub incr_checkpoint_us: u64,
    /// Tables re-encoded by the incremental checkpoint.
    pub incr_tables_flushed: usize,
    /// On-disk checkpoint footprint after the incremental fold.
    pub footprint_bytes: u64,
    /// Cold start: open the store and recover every table from disk.
    pub recovery_us: u64,
    /// Rows scanned per second across the recovered warehouse.
    pub cold_scan_rows_per_s: u64,
}

/// Run the A8 cycle under one format: load → full checkpoint → dirty one
/// table → incremental checkpoint → crash (drop) → recover → scan all.
pub fn run_cycle(format: SnapshotFormat) -> PersistRun {
    run_cycle_sized(format, TABLES, ROWS)
}

/// [`run_cycle`] at an explicit warehouse scale (the smoke test uses a
/// tiny one so debug-mode `cargo test` stays fast).
pub fn run_cycle_sized(format: SnapshotFormat, tables: usize, rows: usize) -> PersistRun {
    let dir = scratch_dir(format.as_str());
    let (db, store) = build_warehouse_sized(&dir, format, tables, rows);

    let t = Instant::now();
    let full = store.checkpoint(&db).unwrap();
    let full_checkpoint_us = t.elapsed().as_micros() as u64;

    dirty_one_table(&db, 500);
    let t = Instant::now();
    let incr = store.checkpoint(&db).unwrap();
    let incr_checkpoint_us = t.elapsed().as_micros() as u64;

    let footprint_bytes = checkpoint_footprint(&dir);
    drop((db, store)); // crash boundary

    let t = Instant::now();
    let (recovered, _store) =
        DurableStore::open_with_format(&dir, FsyncPolicy::Never, format).unwrap();
    let recovery_us = t.elapsed().as_micros() as u64;

    let t = Instant::now();
    let mut scanned = 0usize;
    for name in recovered.table_names() {
        scanned += recovered.scan(&name).unwrap().len();
    }
    assert_eq!(scanned, tables * rows + 500, "recovered warehouse is whole");
    let scan_s = t.elapsed().as_secs_f64();
    let cold_scan_rows_per_s = if scan_s > 0.0 {
        (scanned as f64 / scan_s) as u64
    } else {
        0
    };

    let _ = std::fs::remove_dir_all(&dir);
    PersistRun {
        full_checkpoint_us,
        full_tables_flushed: full.tables_flushed,
        incr_checkpoint_us,
        incr_tables_flushed: incr.tables_flushed,
        footprint_bytes,
        recovery_us,
        cold_scan_rows_per_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_runs_and_segments_flush_incrementally() {
        // tiny scale: this is a smoke test of the harness, not the bench
        let seg = run_cycle_sized(SnapshotFormat::Segments, 3, 1_000);
        assert_eq!(seg.full_tables_flushed, 3);
        assert_eq!(seg.incr_tables_flushed, 1);
        let json = run_cycle_sized(SnapshotFormat::Json, 3, 1_000);
        assert_eq!(json.incr_tables_flushed, 3); // JSON always rewrites
        assert!(seg.footprint_bytes < json.footprint_bytes);
    }
}
