//! # odbis-bench
//!
//! The benchmark harness for the ODBIS reproduction: seeded synthetic
//! workload generators (the paper ships no data) and one Criterion bench
//! group per experiment in `EXPERIMENTS.md` (figures E1–E6, claims C1–C4,
//! ablations A1–A4).

pub mod concurrency;
pub mod http;
pub mod persist;
pub mod sharding;
pub mod streaming;
pub mod workloads;
