//! Streaming-BI benchmarks for experiment A9: the cost of keeping a
//! materialized aggregate fresh by folding sequenced delta events versus
//! recomputing it from the fact table, and the end-to-end freshness
//! latency of the push path (warehouse write → delta event → aggregate
//! maintenance → long-poll watcher woken over HTTP). The
//! `streaming_probe` example drives these and its output is recorded in
//! `BENCH_streaming.json`.

use std::sync::Arc;
use std::time::Instant;

use odbis::{build_router, OdbisPlatform};
use odbis_olap::{
    AggregateCache, Aggregator, CubeDef, CubeEngine, DimensionDef, LevelDef, LevelRef,
    MaterializedAggregate, MeasureDef, TableDelta,
};
use odbis_storage::Value;
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_request, Backend, HttpServer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::workloads;

/// The admissions cube over [`workloads::healthcare_db`]: a snowflaked
/// department dimension, a degenerate year level, and the three
/// delta-maintainable aggregator families (SUM, COUNT, AVG).
fn admissions_cube() -> CubeDef {
    CubeDef {
        name: "admissions".into(),
        fact_table: "fact_admission".into(),
        dimensions: vec![
            DimensionDef {
                name: "dept".into(),
                table: Some("dim_department".into()),
                fact_fk: "dept_id".into(),
                dim_key: "dept_id".into(),
                levels: vec![LevelDef {
                    name: "name".into(),
                    column: "name".into(),
                }],
            },
            DimensionDef {
                name: "time".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![LevelDef {
                    name: "year".into(),
                    column: "year".into(),
                }],
            },
        ],
        measures: vec![
            MeasureDef {
                name: "total_cost".into(),
                column: "cost".into(),
                aggregator: Aggregator::Sum,
            },
            MeasureDef {
                name: "admissions".into(),
                column: "id".into(),
                aggregator: Aggregator::Count,
            },
            MeasureDef {
                name: "avg_cost".into(),
                column: "cost".into(),
                aggregator: Aggregator::Avg,
            },
        ],
    }
}

/// Result of [`delta_vs_recompute`].
#[derive(Debug, Clone)]
pub struct DeltaVsRecompute {
    /// Fact rows in the warehouse when the comparison runs.
    pub rows: usize,
    /// Single-row writes folded through the delta path.
    pub writes: usize,
    /// Median microseconds to fold one sequenced insert delta.
    pub delta_p50_us: u64,
    /// p99 microseconds for the fold.
    pub delta_p99_us: u64,
    /// Microseconds for one full rebuild of the same aggregate
    /// (min of three — the invalidate-and-recompute cost per write).
    pub rebuild_us: u64,
    /// `rebuild_us / delta_p50_us`: how many times cheaper one write's
    /// maintenance became.
    pub speedup: f64,
}

/// Fold `writes` single-row inserts into a materialized aggregate over a
/// `rows`-row warehouse and compare against the from-scratch rebuild the
/// pre-streaming design paid per write.
pub fn delta_vs_recompute(rows: usize, writes: usize, seed: u64) -> DeltaVsRecompute {
    let db = Arc::new(workloads::healthcare_db(rows, seed));
    let engine = CubeEngine::new(Arc::clone(&db));
    let cube = admissions_cube();
    let axes = vec![LevelRef::new("dept", "name"), LevelRef::new("time", "year")];
    let measures = vec![
        "total_cost".to_string(),
        "admissions".to_string(),
        "avg_cost".to_string(),
    ];

    let rebuild_us = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let agg = MaterializedAggregate::build(&engine, &cube, axes.clone(), measures.clone())
                .expect("rebuild");
            assert!(!agg.is_empty());
            t0.elapsed().as_micros() as u64
        })
        .min()
        .unwrap();

    let mut cache = AggregateCache::new();
    cache.add(MaterializedAggregate::build(&engine, &cube, axes, measures).expect("initial build"));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA9);
    let mut lat: Vec<u64> = Vec::with_capacity(writes);
    for i in 0..writes {
        let row = vec![
            Value::Int((rows + i) as i64),
            Value::Int(rng.random_range(0..7i64)),
            Value::Int(rng.random_range(2008..=2010i64)),
            Value::Int(rng.random_range(1..=12i64)),
            Value::Float(rng.random_range(500..250_000i64) as f64 / 100.0),
            Value::Int(rng.random_range(1..=21i64)),
        ];
        db.insert("fact_admission", row.clone()).expect("insert");
        let delta = TableDelta::Insert {
            table: "fact_admission".into(),
            rows: vec![row],
        };
        let t0 = Instant::now();
        let report = cache.apply_delta(&engine, (i + 1) as u64, &delta);
        lat.push(t0.elapsed().as_micros() as u64);
        assert_eq!(report.folded, 1, "the write must fold, not rebuild");
    }
    lat.sort_unstable();
    let delta_p50_us = lat[lat.len() / 2].max(1);
    DeltaVsRecompute {
        rows,
        writes,
        delta_p50_us,
        delta_p99_us: lat[(lat.len() * 99 / 100).min(lat.len() - 1)],
        rebuild_us,
        speedup: rebuild_us as f64 / delta_p50_us as f64,
    }
}

/// Result of [`watch_freshness`].
#[derive(Debug, Clone)]
pub struct Freshness {
    /// Committed writes measured.
    pub writes: usize,
    /// Median microseconds from issuing the write to the parked HTTP
    /// long-poll watcher holding the 200 response.
    pub e2e_p50_us: u64,
    /// p99 microseconds for the same span.
    pub e2e_p99_us: u64,
}

/// End-to-end freshness: a long-poll watcher parks on the dataset's
/// table over HTTP (reactor backend), a SQL write commits, and the span
/// until the watcher's response is back on the client counts as the
/// staleness window a pull-based client would have polled across.
pub fn watch_freshness(writes: usize) -> Freshness {
    let platform = Arc::new(OdbisPlatform::new());
    platform
        .provision_tenant("bench", "Bench", SubscriptionPlan::standard(), "root", "pw")
        .expect("tenant");
    let token = platform.login("bench", "root", "pw").expect("login");
    platform
        .sql("bench", &token, "CREATE TABLE ticks (id INT, v INT)")
        .expect("ddl");
    platform
        .define_dataset(
            "bench",
            &token,
            odbis_metadata::DataSet {
                name: "tick_sum".into(),
                source: "warehouse".into(),
                sql: "SELECT SUM(v) AS s FROM ticks".into(),
                description: String::new(),
            },
        )
        .expect("dataset");
    let server = HttpServer::builder(build_router(Arc::clone(&platform)))
        .workers(2)
        .backend(Backend::Reactor)
        .start()
        .expect("server");
    let addr = server.addr().to_string();
    let hub = Arc::clone(&platform.workspace("bench").expect("ws").watch);

    let mut lat: Vec<u64> = Vec::with_capacity(writes);
    for i in 0..writes {
        let cursor = hub.cursor();
        let watcher = {
            let addr = addr.clone();
            let bearer = format!("Bearer {token}");
            std::thread::spawn(move || {
                http_request(
                    &addr,
                    "GET",
                    &format!("/api/v1/datasets/tick_sum/watch?cursor={cursor}&timeout_ms=30000"),
                    &[("x-tenant", "bench"), ("Authorization", bearer.as_str())],
                    b"",
                )
                .expect("watch request")
            })
        };
        while hub.parked() == 0 {
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        platform
            .sql(
                "bench",
                &token,
                &format!("INSERT INTO ticks VALUES ({i}, {i})"),
            )
            .expect("insert");
        let (status, _, body) = watcher.join().expect("watcher");
        lat.push(t0.elapsed().as_micros() as u64);
        assert_eq!(status, 200, "watcher must see the change: {body}");
    }
    server.shutdown();
    lat.sort_unstable();
    Freshness {
        writes,
        e2e_p50_us: lat[lat.len() / 2],
        e2e_p99_us: lat[(lat.len() * 99 / 100).min(lat.len() - 1)],
    }
}
