//! E4 (Figure 4) — per-layer latency breakdown of the JEE-style
//! application stack: storage-direct vs platform-gated vs full HTTP
//! round trip. The deltas between the three series are the cost of the
//! service/security layer and of the web tier respectively.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use odbis::{build_router, OdbisPlatform};
use odbis_sql::Engine;
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_request, HttpServer};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

fn fig4_layer_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_layer_roundtrip");

    // shared fixture: platform + tenant + a small table
    let platform = Arc::new(OdbisPlatform::new());
    platform
        .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = platform.login("acme", "root", "pw").unwrap();
    platform
        .sql(
            "acme",
            &token,
            "CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)",
        )
        .unwrap();
    for i in 0..100 {
        platform
            .sql(
                "acme",
                &token,
                &format!("INSERT INTO kv VALUES ({i}, 'value-{i}')"),
            )
            .unwrap();
    }
    let warehouse = Arc::clone(&platform.workspace("acme").unwrap().warehouse);
    let engine = Engine::new();
    let query = "SELECT v FROM kv WHERE k = 42";

    // layer 1+2: data access + SQL engine only
    group.bench_function("storage_and_sql_only", |b| {
        b.iter(|| engine.execute(&warehouse, query).unwrap())
    });

    // + layer 3: the platform gate (tenancy check, session, authority,
    //   metering) around the same query
    group.bench_function("platform_gated", |b| {
        b.iter(|| platform.sql("acme", &token, query).unwrap())
    });

    // + layers 4-5: the full HTTP round trip through the web tier
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 4).unwrap();
    let addr = server.addr().to_string();
    group.bench_function("full_http_roundtrip", |b| {
        b.iter(|| {
            let (status, _, _) = http_request(
                &addr,
                "POST",
                "/sql",
                &[("x-tenant", "acme"), ("x-token", &token)],
                query.as_bytes(),
            )
            .unwrap();
            assert_eq!(status, 200);
        })
    });
    group.finish();
}

/// ESB delivery throughput: send+pump through a transformer into a sink.
fn esb_throughput(c: &mut Criterion) {
    use odbis_esb::{Endpoint, Message, MessageBus, Payload};
    let bus = MessageBus::new();
    bus.create_channel("in").unwrap();
    bus.create_channel("out").unwrap();
    bus.subscribe(
        "in",
        Endpoint::Transformer {
            to: "out".into(),
            transform: Box::new(|m| m.derive(Payload::Text("done".into()))),
        },
    )
    .unwrap();
    bus.subscribe("out", Endpoint::ServiceActivator(Box::new(|_| Ok(()))))
        .unwrap();
    c.bench_function("esb_send_transform_sink", |b| {
        b.iter(|| bus.send_and_pump("in", Message::text("payload")).unwrap())
    });
}

/// Raw web-tier throughput: a trivial handler over the loopback socket.
fn web_server_throughput(c: &mut Criterion) {
    use odbis_web::{HttpResponse, HttpServer, Method, Router};
    let mut router = Router::new();
    router.route(Method::Get, "/ping", |_, _| HttpResponse::text("pong"));
    let server = HttpServer::start(router, 4).unwrap();
    let addr = server.addr().to_string();
    c.bench_function("web_get_roundtrip", |b| {
        b.iter(|| {
            let (status, _) = odbis_web::http_get(&addr, "/ping").unwrap();
            assert_eq!(status, 200);
        })
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = fig4_layer_roundtrip, esb_throughput, web_server_throughput
}
criterion_main!(benches);
