//! A3 — rule-matching ablation: type-indexed (Rete-lite alpha network) vs
//! naive full-scan matching as working memory grows; plus engine firing
//! throughput.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::workloads::usage_facts;
use odbis_rules::{tvar, Action, NaiveMatcher, Pattern, Rule, RuleEngine, TestOp, WorkingMemory};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300))
}

/// Working memory with `n` Usage facts plus `4 n` facts of other types —
/// the realistic case where the alpha index pays off.
fn mixed_memory(n: usize) -> WorkingMemory {
    let mut wm = WorkingMemory::new();
    for f in usage_facts(n, 16, 42) {
        wm.insert(f);
    }
    for i in 0..(4 * n) {
        wm.insert(
            odbis_rules::Fact::new(if i % 2 == 0 {
                "Heartbeat"
            } else {
                "AuditEvent"
            })
            .with("seq", i as i64),
        );
    }
    wm
}

/// A3: match counting through the per-type index vs scanning all facts.
fn a3_rete_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_rete_ablation");
    let pattern = Pattern::on("Usage").test("units", TestOp::Gt, 1_000i64);
    for &n in &[500usize, 2_000, 8_000] {
        let wm = mixed_memory(n);
        // sanity: identical results
        assert_eq!(
            NaiveMatcher::count_matches(&pattern, &wm),
            NaiveMatcher::count_matches_indexed(&pattern, &wm)
        );
        group.bench_with_input(BenchmarkId::new("alpha_indexed", n), &n, |b, _| {
            b.iter(|| NaiveMatcher::count_matches_indexed(&pattern, &wm))
        });
        group.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |b, _| {
            b.iter(|| NaiveMatcher::count_matches(&pattern, &wm))
        });
    }
    group.finish();
}

/// Full engine run: alert rules over usage facts, chained assertion.
fn rules_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("rules_engine");
    group.sample_size(10);
    let mut engine = RuleEngine::new();
    engine
        .add_rule(
            Rule::new("flag-heavy-usage")
                .when(
                    Pattern::on("Usage")
                        .test("units", TestOp::Gt, 1_500i64)
                        .bind("t", "tenant"),
                )
                .then(Action::Assert {
                    fact_type: "Alert".into(),
                    fields: vec![("tenant".into(), tvar("t"))],
                }),
        )
        .unwrap();
    engine
        .add_rule(
            Rule::new("sweep-alerts")
                .salience(-1)
                .when(Pattern::on("Alert"))
                .then(Action::Retract { pattern_index: 0 }),
        )
        .unwrap();
    for &n in &[200usize, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut wm = WorkingMemory::new();
                for f in usage_facts(n, 8, 7) {
                    wm.insert(f);
                }
                engine.run(&mut wm).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = a3_rete_ablation, rules_engine_throughput
}
criterion_main!(benches);
