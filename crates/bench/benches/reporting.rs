//! E6 (Figure 6) — the healthcare dashboard render path: widget rendering,
//! full dashboard HTML, and the delivery formats.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::workloads::healthcare_db;
use odbis_delivery::{format_for, Channel, ReportPayload};
use odbis_metadata::{DataSet, DataSource, MetadataService};
use odbis_reporting::{
    render_chart_svg, ChartKind, ChartSpec, Dashboard, KpiSpec, ReportingService, TableSpec, Widget,
};
use odbis_sql::Engine;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(12)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

fn reporting_service(admissions: usize) -> ReportingService {
    let db = Arc::new(healthcare_db(admissions, 42));
    let mds = Arc::new(MetadataService::new());
    mds.register_source(
        DataSource {
            name: "warehouse".into(),
            url: "odbis://wh".into(),
            user: "bi".into(),
            password: "p".into(),
            driver: "odbis-storage".into(),
        },
        db,
    )
    .unwrap();
    for (name, sql) in [
        (
            "cost_by_department",
            "SELECT d.name AS department, SUM(f.cost) AS total_cost \
             FROM fact_admission f JOIN dim_department d ON f.dept_id = d.dept_id \
             GROUP BY d.name ORDER BY total_cost DESC",
        ),
        (
            "headline",
            "SELECT COUNT(*) AS admissions, SUM(cost) AS total_cost FROM fact_admission",
        ),
    ] {
        mds.define_dataset(DataSet {
            name: name.into(),
            source: "warehouse".into(),
            sql: sql.into(),
            description: String::new(),
        })
        .unwrap();
    }
    ReportingService::new(mds)
}

fn figure6_dashboard() -> Dashboard {
    Dashboard {
        name: "healthcare".into(),
        title: "Hospital Performance".into(),
        rows: vec![
            vec![
                Widget::Kpi {
                    dataset: "headline".into(),
                    spec: KpiSpec {
                        title: "Admissions".into(),
                        value_column: "admissions".into(),
                        unit: String::new(),
                    },
                },
                Widget::Kpi {
                    dataset: "headline".into(),
                    spec: KpiSpec {
                        title: "Total cost".into(),
                        value_column: "total_cost".into(),
                        unit: " EUR".into(),
                    },
                },
            ],
            vec![
                Widget::Chart {
                    dataset: "cost_by_department".into(),
                    spec: ChartSpec {
                        title: "Cost by department".into(),
                        kind: ChartKind::Bar,
                        category: "department".into(),
                        series: vec!["total_cost".into()],
                    },
                },
                Widget::Table {
                    dataset: "cost_by_department".into(),
                    spec: TableSpec {
                        title: "Detail".into(),
                        columns: vec![],
                        max_rows: None,
                    },
                },
            ],
        ],
    }
}

/// E6: full dashboard render (query + chart + table + KPI) as the
/// underlying fact table grows.
fn fig6_dashboard_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_dashboard_render");
    for &n in &[5_000usize, 25_000] {
        let rs = reporting_service(n);
        let dashboard = figure6_dashboard();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let html = rs.render_dashboard(&dashboard).unwrap();
                assert!(html.contains("<svg"));
                html
            })
        });
    }
    group.finish();
}

/// Chart rendering in isolation (SVG generation, no query).
fn chart_rendering(c: &mut Criterion) {
    let db = Arc::new(healthcare_db(10_000, 42));
    let data = Engine::new()
        .execute(
            &db,
            "SELECT d.name AS department, SUM(f.cost) AS total_cost \
             FROM fact_admission f JOIN dim_department d ON f.dept_id = d.dept_id \
             GROUP BY d.name",
        )
        .unwrap();
    let mut group = c.benchmark_group("chart_svg");
    for kind in [ChartKind::Bar, ChartKind::Line, ChartKind::Pie] {
        let spec = ChartSpec {
            title: "Cost".into(),
            kind,
            category: "department".into(),
            series: vec!["total_cost".into()],
        };
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| render_chart_svg(&spec, &data).unwrap())
        });
    }
    group.finish();
}

/// IDS channel formatting of a 1 000-row payload.
fn delivery_formats(c: &mut Criterion) {
    let db = Arc::new(healthcare_db(1_000, 42));
    let data = Engine::new()
        .execute(&db, "SELECT id, dept_id, year, cost FROM fact_admission")
        .unwrap();
    let payload = ReportPayload {
        title: "Admissions".into(),
        data,
    };
    let mut group = c.benchmark_group("delivery_formats");
    for channel in Channel::ALL {
        group.bench_function(format!("{channel:?}"), |b| {
            b.iter(|| format_for(channel, &payload))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = fig6_dashboard_render, chart_rendering, delivery_formats
}
criterion_main!(benches);
