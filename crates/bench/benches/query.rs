//! `query` group — optimizer + parallel-executor benchmarks on the paper's
//! Figure 6 healthcare-dashboard query shape (filtered star join with a
//! grouped aggregate).
//!
//! Two columns:
//! * `parallelism_N`: the same dashboard aggregate with the morsel pool
//!   pinned to 1/2/4/8 workers (`Engine::with_parallelism`);
//! * `pushdown_{on,off}`: a filtered join with the full rule pipeline vs
//!   `-pushdown,-prune` ablated, isolating what predicate pushdown through
//!   the join plus projection pruning buy.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::workloads;
use odbis_sql::Engine;
use odbis_storage::{Database, Value};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(12)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

/// The Figure 6 dashboard body: per-department admission counts and cost
/// totals for one year, joined to the department dimension.
const DASHBOARD: &str = "SELECT d.name, COUNT(*) AS admissions, SUM(f.cost) AS total, \
     AVG(f.cost) AS mean FROM fact_admission f \
     JOIN dim_department d ON f.dept_id = d.dept_id \
     WHERE f.year = 2009 GROUP BY d.name ORDER BY d.name";

/// A selective filtered join where pushdown + pruning have the most to cut:
/// without them every fact row crosses the join before filtering.
const FILTERED_JOIN: &str = "SELECT f.id, d.name FROM fact_admission f \
     JOIN dim_department d ON f.dept_id = d.dept_id \
     WHERE f.cost > 2400.0 AND f.stay_days < 5 AND d.head_count > 60";

/// Row equality with a relative tolerance on floats: the two-phase merge
/// tree changes shape with the worker count, so float SUM/AVG agree only up
/// to non-associativity (integer, count, min/max and text cells are exact).
fn assert_rows_close(left: &[Vec<Value>], right: &[Vec<Value>], label: &str) {
    assert_eq!(left.len(), right.len(), "row count diverges: {label}");
    for (l, r) in left.iter().zip(right) {
        assert_eq!(l.len(), r.len(), "row width diverges: {label}");
        for (a, b) in l.iter().zip(r) {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= 1e-9 * scale,
                        "float diverges beyond tolerance ({label}): {x} vs {y}"
                    );
                }
                _ => assert_eq!(a, b, "cell diverges ({label})"),
            }
        }
    }
}

fn query_group(c: &mut Criterion) {
    let db: Arc<Database> = Arc::new(workloads::healthcare_db(50_000, 7));
    let mut group = c.benchmark_group("query");

    let reference = Engine::new()
        .with_parallelism(1)
        .execute(&db, DASHBOARD)
        .expect("dashboard query");
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new().with_parallelism(workers);
        // all pool sizes must agree before their timings mean anything
        let out = engine.execute(&db, DASHBOARD).expect("dashboard query");
        assert_rows_close(
            &out.rows,
            &reference.rows,
            &format!("parallelism {workers}"),
        );
        group.bench_with_input(
            BenchmarkId::new("parallelism", workers),
            &workers,
            |b, _| b.iter(|| engine.execute(&db, DASHBOARD).unwrap()),
        );
    }

    let optimized = Engine::new();
    let ablated = Engine::new().with_optimizer_rules("-pushdown,-prune");
    let on = optimized.execute(&db, FILTERED_JOIN).expect("optimized");
    let off = ablated.execute(&db, FILTERED_JOIN).expect("ablated");
    assert_eq!(on.rows.len(), off.rows.len(), "ablation changes results");
    group.bench_function(BenchmarkId::new("pushdown", "on"), |b| {
        b.iter(|| optimized.execute(&db, FILTERED_JOIN).unwrap())
    });
    group.bench_function(BenchmarkId::new("pushdown", "off"), |b| {
        b.iter(|| ablated.execute(&db, FILTERED_JOIN).unwrap())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = query_group
}
criterion_main!(benches);
