//! Durability-spine overhead: the same insert workload against an
//! un-journaled in-memory database and a WAL-journaled durable store
//! (fsync=never), plus checkpoint and recovery latency. The acceptance
//! budget is <2× per-insert overhead for journaling at fsync=never.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_storage::{
    Column, DataType, Database, DurableStore, FsyncPolicy, Schema, Value, WalSink,
};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(2000))
        .warm_up_time(Duration::from_millis(400))
}

/// Scratch directory for one bench store. Prefers tmpfs (`/dev/shm`) so the
/// append measurements capture the software path — encode, checksum, frame,
/// buffered write — rather than the host filesystem's writeback jitter,
/// which at `fsync=never` is noise the store never waits on anyway.
fn bench_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let shm = PathBuf::from("/dev/shm");
    let root = if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    };
    let dir = root.join(format!("odbis-bench-wal-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("region", DataType::Text),
        Column::new("amount", DataType::Float),
    ])
    .unwrap()
}

fn row(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::from(if i % 2 == 0 { "EU" } else { "US" }),
        Value::Float(i as f64 * 1.5),
    ]
}

fn insert_rows(db: &Database, n: usize) {
    for i in 0..n as i64 {
        db.insert("orders", row(i)).unwrap();
    }
}

/// The statement-commit shape: rows arrive in multi-row statements
/// (`insert_many`), so the WAL group-commits each batch with one write.
fn insert_batched(db: &Database, n: usize, batch: usize) {
    for start in (0..n as i64).step_by(batch) {
        let rows = (start..start + batch as i64).map(row).collect();
        db.insert_many("orders", rows).unwrap();
    }
}

fn journaled_db(dir: &PathBuf) -> (Database, DurableStore) {
    let (db, store) = DurableStore::open(dir, FsyncPolicy::Never).unwrap();
    let wal: std::sync::Arc<dyn WalSink> = std::sync::Arc::clone(store.wal()) as _;
    db.set_wal_sink(wal);
    // the bench closure runs many times (calibration, warmup, samples)
    // against the same dir, so a reopen recovers the table from disk
    match db.create_table("orders", schema()) {
        Ok(()) | Err(odbis_storage::DbError::TableExists(_)) => {}
        Err(e) => panic!("create orders table: {e}"),
    }
    (db, store)
}

/// Journaling overhead in two workload shapes. Row-at-a-time: every insert
/// is its own statement, so each pays a WAL frame *and* a write syscall —
/// the floor is the syscall, not the encoder. Statement batches
/// (`insert_many`, 100 rows): group commit folds the whole statement into
/// one write, which is where the <2× acceptance budget is measured.
fn wal_append_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    {
        let n = 1_000usize;
        // Sustained-warehouse shape on both sides: one long-lived table,
        // rows accumulating across iterations. To bound memory, both
        // loops truncate the table once it passes 100k rows (identical
        // cost on each side); the journaled loop also folds the log into
        // the snapshot once it passes 4 MiB, so the WAL file stays
        // bounded exactly the way a deployed store would keep it.
        group.bench_with_input(BenchmarkId::new("unjournaled_insert", n), &n, |b, &n| {
            let db = Database::new();
            db.create_table("orders", schema()).unwrap();
            let mut live = 0usize;
            b.iter(|| {
                insert_rows(&db, n);
                live += n;
                if live >= 100_000 {
                    db.write_table("orders", |t| t.truncate()).unwrap();
                    live = 0;
                }
            })
        });
        let dir = bench_dir("append");
        group.bench_with_input(BenchmarkId::new("wal_insert", n), &n, |b, &n| {
            let (db, store) = journaled_db(&dir);
            let mut live = 0usize;
            b.iter(|| {
                insert_rows(&db, n);
                live += n;
                if live >= 100_000 {
                    db.write_table("orders", |t| t.truncate()).unwrap();
                    live = 0;
                    // fold the log while the table is empty, the way a
                    // deployment checkpoints off-peak; bounds the WAL file
                    store.checkpoint(&db).unwrap();
                }
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
        group.bench_with_input(
            BenchmarkId::new("unjournaled_insert_many_x100", n),
            &n,
            |b, &n| {
                let db = Database::new();
                db.create_table("orders", schema()).unwrap();
                let mut live = 0usize;
                b.iter(|| {
                    insert_batched(&db, n, 100);
                    live += n;
                    if live >= 100_000 {
                        db.write_table("orders", |t| t.truncate()).unwrap();
                        live = 0;
                    }
                })
            },
        );
        let dir = bench_dir("batch");
        group.bench_with_input(BenchmarkId::new("wal_insert_many_x100", n), &n, |b, &n| {
            let (db, store) = journaled_db(&dir);
            let mut live = 0usize;
            b.iter(|| {
                insert_batched(&db, n, 100);
                live += n;
                if live >= 100_000 {
                    db.write_table("orders", |t| t.truncate()).unwrap();
                    live = 0;
                    store.checkpoint(&db).unwrap();
                }
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Checkpoint latency: fold a 1k-insert log into the snapshot.
fn wal_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_checkpoint");
    group.bench_function("checkpoint_1k", |b| {
        b.iter(|| {
            let dir = bench_dir("ckpt");
            let (db, store) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            let wal: std::sync::Arc<dyn WalSink> = std::sync::Arc::clone(store.wal()) as _;
            db.set_wal_sink(wal);
            db.create_table("orders", schema()).unwrap();
            insert_batched(&db, 1_000, 100);
            let report = store.checkpoint(&db).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            report
        })
    });
    group.finish();
}

/// Recovery latency: replay a 1k-insert WAL into a fresh database.
fn wal_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    let dir = bench_dir("recover");
    {
        let (db, store) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let wal: std::sync::Arc<dyn WalSink> = std::sync::Arc::clone(store.wal()) as _;
        db.set_wal_sink(wal);
        db.create_table("orders", schema()).unwrap();
        insert_rows(&db, 1_000);
    }
    group.bench_function("replay_1k", |b| {
        b.iter(|| {
            let (db, _store) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            assert_eq!(db.scan("orders").unwrap().len(), 1_000);
            db
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = configured();
    targets = wal_append_overhead, wal_checkpoint, wal_recovery
}
criterion_main!(benches);
