//! A2 — cube pre-aggregation ablation, plus OLAP aggregation scaling over
//! the healthcare star schema.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::workloads::healthcare_db;
use odbis_olap::{
    Aggregator, CubeDef, CubeEngine, CubeQuery, DimensionDef, LevelDef, LevelRef,
    MaterializedAggregate, MeasureDef,
};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

fn admissions_cube() -> CubeDef {
    CubeDef {
        name: "admissions".into(),
        fact_table: "fact_admission".into(),
        dimensions: vec![
            DimensionDef {
                name: "department".into(),
                table: Some("dim_department".into()),
                fact_fk: "dept_id".into(),
                dim_key: "dept_id".into(),
                levels: vec![LevelDef {
                    name: "name".into(),
                    column: "name".into(),
                }],
            },
            DimensionDef {
                name: "time".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![
                    LevelDef {
                        name: "year".into(),
                        column: "year".into(),
                    },
                    LevelDef {
                        name: "month".into(),
                        column: "month".into(),
                    },
                ],
            },
        ],
        measures: vec![
            MeasureDef {
                name: "cost".into(),
                column: "cost".into(),
                aggregator: Aggregator::Sum,
            },
            MeasureDef {
                name: "admissions".into(),
                column: "id".into(),
                aggregator: Aggregator::Count,
            },
        ],
    }
}

/// A2: query latency from the base fact table vs from a materialized
/// aggregate that covers it.
fn a2_preagg_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_preagg_ablation");
    for &n in &[10_000usize, 50_000] {
        let db = Arc::new(healthcare_db(n, 42));
        let engine = CubeEngine::new(Arc::clone(&db));
        let cube = admissions_cube();
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            vec![
                LevelRef::new("time", "year"),
                LevelRef::new("department", "name"),
            ],
            vec!["cost".into(), "admissions".into()],
        )
        .unwrap();
        let query = CubeQuery {
            axes: vec![LevelRef::new("time", "year")],
            slices: vec![],
            measures: vec!["cost".into()],
        };
        // sanity: both paths agree (within float summation-order noise)
        let live = engine.query(&cube, &query).unwrap();
        let mat = agg.execute(&query).unwrap();
        assert_eq!(live.cells.len(), mat.cells.len());
        for ((lc, lm), (mc, mm)) in live.cells.iter().zip(&mat.cells) {
            assert_eq!(lc, mc);
            for (a, b) in lm.iter().zip(mm) {
                let (a, b) = (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0));
                assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
        group.bench_with_input(BenchmarkId::new("base_table", n), &n, |b, _| {
            b.iter(|| engine.query(&cube, &query).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("materialized", n), &n, |b, _| {
            b.iter(|| agg.execute(&query).unwrap())
        });
    }
    group.finish();
}

/// Cube aggregation latency as the fact table grows (snowflaked join +
/// group-by path).
fn olap_aggregation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("olap_aggregation_scaling");
    for &n in &[5_000usize, 20_000, 80_000] {
        let db = Arc::new(healthcare_db(n, 7));
        let engine = CubeEngine::new(db);
        let cube = admissions_cube();
        let query = CubeQuery {
            axes: vec![
                LevelRef::new("department", "name"),
                LevelRef::new("time", "year"),
            ],
            slices: vec![],
            measures: vec!["cost".into(), "admissions".into()],
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| engine.query(&cube, &query).unwrap())
        });
    }
    group.finish();
}

/// MDX-lite parse + execute path (the Analysis Service's query surface).
fn mdx_query_path(c: &mut Criterion) {
    let db = Arc::new(healthcare_db(20_000, 42));
    let engine = CubeEngine::new(db);
    let cube = admissions_cube();
    c.bench_function("mdx_parse_and_execute", |b| {
        b.iter(|| {
            let stmt = odbis_olap::parse_mdx(
                "SELECT cost BY department.name FROM admissions WHERE time.year = 2010",
            )
            .unwrap();
            engine.query(&cube, &stmt.query).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = a2_preagg_ablation, olap_aggregation_scaling, mdx_query_path
}
criterion_main!(benches);
