//! Lock-granularity bench: dashboard-read completion time under ETL write
//! load, per-table locking versus the old database-wide lock.
//!
//! Each measured iteration times how long the reader half of the fleet
//! takes to finish a fixed number of dim-table aggregates while the writer
//! half continuously runs journaled fsync=always inserts into fact
//! tables. Under the single database-wide lock every aggregate queues
//! behind a writer's disk flush; under per-table locks it doesn't. The
//! fixed work is the *reader* side only, so the ratio directly measures
//! the writer-blocks-readers defect instead of being Amdahl-capped by the
//! writers' own I/O time.
//!
//! The complementary free-running throughput shape (ops/sec over a timed
//! window, both roles counted) lives in `examples/concurrency_probe.rs`
//! and produces the numbers recorded in `BENCH_concurrency.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::concurrency::{
    readers_complete_under_write_load, scratch_root, split, Fleet, LockMode, TENANTS,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SCANS_PER_READER: usize = 100;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

fn bench_reader_completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrency");
    for mode in [LockMode::PerTable, LockMode::SingleLock] {
        for n in THREADS {
            let (writers, _) = split(n);
            let root = scratch_root(&format!("bench-{}-{n}", mode.label()));
            let fleet = Fleet::open(&root, mode, writers.div_ceil(TENANTS).max(1));
            group.bench_with_input(
                BenchmarkId::new(format!("readers_done/{}", mode.label()), n),
                &n,
                |b, &n| {
                    b.iter(|| readers_complete_under_write_load(&fleet, n, SCANS_PER_READER));
                },
            );
            drop(fleet);
            let _ = std::fs::remove_dir_all(&root);
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_reader_completion
}
criterion_main!(benches);
