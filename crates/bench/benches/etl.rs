//! A4 — ETL execution-mode ablation (operator-at-a-time vs fused row
//! pipeline) and integration-job throughput.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::workloads::etl_csv;
use odbis_etl::{AggOp, EtlJob, ExecutionMode, Extractor, JobRunner, LoadMode, Loader, Transform};
use odbis_storage::Database;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(12)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

fn row_local_job(csv: String) -> EtlJob {
    EtlJob {
        name: "clean".into(),
        extractor: Extractor::Csv(csv),
        transforms: vec![
            Transform::Filter("amount > 0".into()),
            Transform::Derive {
                column: "amount_eur".into(),
                expression: "amount * 0.92".into(),
            },
            Transform::Derive {
                column: "band".into(),
                expression: "CASE WHEN amount > 250 THEN 'high' ELSE 'low' END".into(),
            },
            Transform::Select(vec![
                "id".into(),
                "region".into(),
                "amount_eur".into(),
                "band".into(),
            ]),
        ],
        loader: Loader {
            table: "clean_orders".into(),
            mode: LoadMode::Replace,
        },
    }
}

/// A4: the same four-operator row-local chain in both execution modes.
fn a4_pipeline_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4_pipeline_ablation");
    for &n in &[2_000usize, 10_000] {
        let csv = etl_csv(n, 10, 42);
        // sanity: the two modes load identical data
        {
            let db1 = Arc::new(Database::new());
            let db2 = Arc::new(Database::new());
            JobRunner::with_mode(Arc::clone(&db1), ExecutionMode::OperatorAtATime)
                .run(&row_local_job(csv.clone()))
                .unwrap();
            JobRunner::with_mode(Arc::clone(&db2), ExecutionMode::FusedPipeline)
                .run(&row_local_job(csv.clone()))
                .unwrap();
            assert_eq!(
                db1.scan("clean_orders").unwrap(),
                db2.scan("clean_orders").unwrap()
            );
        }
        for (label, mode) in [
            ("operator_at_a_time", ExecutionMode::OperatorAtATime),
            ("fused_pipeline", ExecutionMode::FusedPipeline),
        ] {
            let csv = csv.clone();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let runner = JobRunner::with_mode(Arc::new(Database::new()), mode);
                    runner.run(&row_local_job(csv.clone())).unwrap()
                })
            });
        }
    }
    group.finish();
}

/// End-to-end job throughput including a blocking aggregate stage.
fn etl_job_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("etl_throughput");
    let csv = etl_csv(10_000, 10, 7);
    group.bench_function("aggregate_job_10k", |b| {
        b.iter(|| {
            let runner = JobRunner::new(Arc::new(Database::new()));
            runner
                .run(&EtlJob {
                    name: "summarize".into(),
                    extractor: Extractor::Csv(csv.clone()),
                    transforms: vec![
                        Transform::Filter("amount > 0".into()),
                        Transform::Aggregate {
                            group_by: vec!["region".into()],
                            aggs: vec![
                                (AggOp::Count, "id".into(), "orders".into()),
                                (AggOp::Sum, "amount".into(), "revenue".into()),
                            ],
                        },
                    ],
                    loader: Loader {
                        table: "mart".into(),
                        mode: LoadMode::Replace,
                    },
                })
                .unwrap()
        })
    });
    group.bench_function("csv_parse_10k", |b| {
        b.iter(|| odbis_etl::parse_csv(&csv).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = a4_pipeline_ablation, etl_job_throughput
}
criterion_main!(benches);
