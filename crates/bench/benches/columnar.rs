//! A10 — columnar data-plane ablation: the same SELECTs through the
//! row-at-a-time executor and the vectorized batch path, over the
//! healthcare star schema at two fact-table sizes.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::workloads;
use odbis_sql::Engine;
use odbis_storage::Database;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(12)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

const QUERIES: &[(&str, &str)] = &[
    ("scan", "SELECT id, cost, stay_days FROM fact_admission"),
    (
        "filter",
        "SELECT id, cost FROM fact_admission WHERE cost > 1500.0 AND stay_days < 10",
    ),
    (
        "aggregate",
        "SELECT dept_id, COUNT(*) AS n, SUM(cost) AS total, AVG(cost) AS mean \
         FROM fact_admission GROUP BY dept_id",
    ),
];

fn columnar_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_ablation");
    for n in [10_000usize, 50_000] {
        let db: Arc<Database> = Arc::new(workloads::healthcare_db(n, 7));
        let row_engine = Engine::with_row_execution();
        let vec_engine = Engine::new();
        for (label, sql) in QUERIES {
            // both paths must agree before their timings mean anything
            let row = row_engine.execute(&db, sql).expect("row path");
            let vec = vec_engine.execute(&db, sql).expect("vectorized path");
            assert_eq!(row.rows, vec.rows, "paths diverge on {label}");

            group.bench_with_input(BenchmarkId::new(format!("row_{label}"), n), &n, |b, _| {
                b.iter(|| row_engine.execute(&db, sql).unwrap())
            });
            group.bench_with_input(BenchmarkId::new(format!("batch_{label}"), n), &n, |b, _| {
                b.iter(|| vec_engine.execute(&db, sql).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = columnar_ablation
}
criterion_main!(benches);
