//! E3 (Figure 3) — MDA/2TUP layer construction: end-to-end pipeline cost
//! (BCIM → PIM → PSM → DDL → deploy) as the business model grows, plus
//! the QVT transformation step alone.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_mddws::{cim_metamodel, cim_to_pim, pim_metamodel, DwLayer, DwProject};
use odbis_metamodel::{AttrValue, ModelRepository};
use odbis_storage::Database;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

/// A business model with `facts` fact concepts and `facts * 2` dimensions,
/// each with 4 properties.
fn business_model(facts: usize) -> ModelRepository {
    let mut repo = ModelRepository::new("bench-bcim", cim_metamodel());
    for f in 0..facts {
        let mut props = Vec::new();
        for p in 0..4 {
            props.push(
                repo.create(
                    "BusinessProperty",
                    vec![
                        ("name", format!("measure_{f}_{p}").into()),
                        ("valueType", "NUMBER".into()),
                    ],
                )
                .unwrap(),
            );
        }
        repo.create(
            "BusinessConcept",
            vec![
                ("name", format!("fact{f}").into()),
                ("kind", "FACT".into()),
                ("properties", AttrValue::RefList(props)),
            ],
        )
        .unwrap();
        for d in 0..2 {
            let prop = repo
                .create(
                    "BusinessProperty",
                    vec![
                        ("name", format!("attr_{f}_{d}").into()),
                        ("valueType", "TEXT".into()),
                    ],
                )
                .unwrap();
            repo.create(
                "BusinessConcept",
                vec![
                    ("name", format!("dim{f}_{d}").into()),
                    ("kind", "DIMENSION".into()),
                    ("properties", AttrValue::RefList(vec![prop])),
                ],
            )
            .unwrap();
        }
    }
    repo
}

/// Figure 3 end to end, per model size.
fn fig3_layer_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_layer_construction");
    for &facts in &[1usize, 5, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(facts), &facts, |b, &facts| {
            b.iter(|| {
                let mut project = DwProject::new("bench");
                let db = Arc::new(Database::new());
                let created = project
                    .run_layer_pipeline(
                        DwLayer::Warehouse,
                        business_model(facts),
                        "ODBIS-STORAGE",
                        &db,
                    )
                    .unwrap();
                assert_eq!(created.len(), facts * 3); // 1 fact + 2 dim tables per fact
                project
            })
        });
    }
    group.finish();
}

/// The QVT transformation step in isolation (cim2pim over a 20-fact model).
fn qvt_transformation(c: &mut Criterion) {
    let bcim = business_model(20);
    c.bench_function("qvt_cim2pim_20_facts", |b| {
        b.iter(|| {
            let result = cim_to_pim().execute(&bcim, pim_metamodel(), "pim").unwrap();
            assert!(result.unmatched.is_empty());
            result
        })
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = fig3_layer_construction, qvt_transformation
}
criterion_main!(benches);
