//! C1 — multi-tenant economies of scale: cost per tenant under
//! shared-schema vs dedicated-instance deployment as the tenant count
//! grows. C2 — pay-as-you-go metering overhead.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_storage::{Column, DataType, Database, Schema, Value};
use odbis_tenancy::{DedicatedInstances, ServiceKind, SharedSchema, UsageMeter};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

fn order_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("amount", DataType::Float),
    ])
    .unwrap()
}

const ROWS_PER_TENANT: usize = 200;

/// C1: provision N tenants and run each one's workload (load + query) —
/// once against one shared-schema database, once against N dedicated
/// instances. The shared path amortizes table/catalog setup across
/// tenants; the dedicated path pays full per-tenant infrastructure.
fn c1_economies_of_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_economies_of_scale");
    for &tenants in &[4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("shared_schema", tenants),
            &tenants,
            |b, &tenants| {
                b.iter(|| {
                    let shared = SharedSchema::new(Arc::new(Database::new()));
                    shared
                        .create_shared_table("orders", order_schema())
                        .unwrap();
                    for t in 0..tenants {
                        let tenant = format!("t{t}");
                        for i in 0..ROWS_PER_TENANT {
                            shared
                                .insert(
                                    &tenant,
                                    "orders",
                                    vec![Value::Int(i as i64), Value::Float(i as f64)],
                                )
                                .unwrap();
                        }
                        let r = shared
                            .query(&tenant, "SELECT SUM(amount) FROM orders")
                            .unwrap();
                        assert_eq!(r.rows.len(), 1);
                    }
                    shared
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dedicated_instances", tenants),
            &tenants,
            |b, &tenants| {
                b.iter(|| {
                    let ded = DedicatedInstances::new();
                    for t in 0..tenants {
                        let tenant = format!("t{t}");
                        ded.execute(&tenant, "CREATE TABLE orders (id INT, amount DOUBLE)")
                            .unwrap();
                        let values: Vec<String> = (0..ROWS_PER_TENANT)
                            .map(|i| format!("({i}, {i}.0)"))
                            .collect();
                        ded.execute(
                            &tenant,
                            &format!("INSERT INTO orders VALUES {}", values.join(", ")),
                        )
                        .unwrap();
                        let r = ded
                            .execute(&tenant, "SELECT SUM(amount) FROM orders")
                            .unwrap();
                        assert_eq!(r.rows.len(), 1);
                    }
                    ded
                })
            },
        );
    }
    group.finish();
}

/// C2: the marginal cost of metering — the same loop with and without a
/// usage-record per operation.
fn c2_metering_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_metering_overhead");
    let meter = UsageMeter::new();
    group.bench_function("record_usage", |b| {
        b.iter(|| meter.record("tenant-1", ServiceKind::Reporting, 1))
    });
    group.bench_function("workload_unmetered_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        })
    });
    group.bench_function("workload_metered_1k", |b| {
        let meter = UsageMeter::new();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(i);
                meter.record("tenant-1", ServiceKind::Reporting, 1);
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = c1_economies_of_scale, c2_metering_overhead
}
criterion_main!(benches);
