//! C4 — security overhead: the per-request cost of the platform's
//! authorization gate (session resolution + role-hierarchy authority
//! check), plus password hashing and ACL checks.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use odbis_security::{hash_password, Permission, Role, SecurityManager};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300))
}

fn realm_with_hierarchy() -> (SecurityManager, String) {
    let sm = SecurityManager::new();
    // a five-deep role hierarchy, authority at the root
    sm.create_role(Role::new("R0").grant("PLATFORM_LOGIN"))
        .unwrap();
    for i in 1..5 {
        sm.create_role(Role::new(format!("R{i}")).inherits(format!("R{}", i - 1)))
            .unwrap();
    }
    sm.create_user("u", "pw").unwrap();
    sm.assign_role("u", "R4").unwrap();
    let token = sm.login("u", "pw").unwrap().token;
    (sm, token)
}

/// C4: the full gate as run on every platform service call.
fn c4_authz_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("c4_authz_overhead");
    let (sm, token) = realm_with_hierarchy();
    group.bench_function("authenticate_token", |b| {
        b.iter(|| sm.authenticate(&token).unwrap())
    });
    group.bench_function("authority_via_5_level_hierarchy", |b| {
        b.iter(|| assert!(sm.has_authority("u", "PLATFORM_LOGIN")))
    });
    group.bench_function("full_gate", |b| {
        b.iter(|| {
            let principal = sm.authenticate(&token).unwrap();
            sm.require_authority(&principal, "PLATFORM_LOGIN").unwrap();
        })
    });
    group.bench_function("denied_authority", |b| {
        b.iter(|| assert!(!sm.has_authority("u", "NOT_GRANTED")))
    });
    group.finish();
}

/// Password hashing is deliberately slow (key stretching); measured so the
/// cost is explicit in EXPERIMENTS.md.
fn password_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("password_hashing");
    group.sample_size(10);
    group.bench_function("pbkdf_1000_iterations", |b| {
        b.iter(|| hash_password("correct horse battery staple", b"salt"))
    });
    group.finish();
}

/// ACL checks scale with entries per object.
fn acl_checks(c: &mut Criterion) {
    let sm = SecurityManager::new();
    for i in 0..100 {
        sm.grant_acl("report:big", &format!("user{i}"), Permission::Read);
    }
    c.bench_function("acl_check_100_entries", |b| {
        b.iter(|| sm.check_acl("report:big", "user99", Permission::Read))
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = c4_authz_overhead, password_hashing, acl_checks
}
criterion_main!(benches);
