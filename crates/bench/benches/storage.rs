//! A1 — index vs scan ablation (DataSet point/range queries), plus
//! storage-engine insert throughput.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::workloads::keyed_table;
use odbis_sql::Engine;
use odbis_storage::{Column, DataType, Database, Schema, Value};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300))
}

/// A1: the same point query through the optimizer with and without index
/// selection, at growing table sizes.
fn a1_index_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_index_ablation");
    for &n in &[1_000usize, 10_000, 50_000] {
        let db = Database::new();
        keyed_table(&db, n, (n / 10) as i64, true, 42);
        let indexed = Engine::new();
        let naive = Engine::without_index_selection();
        let q = "SELECT v FROM bench_kv WHERE k = 7";
        // sanity: both agree
        assert_eq!(
            indexed.execute(&db, q).unwrap().rows.len(),
            naive.execute(&db, q).unwrap().rows.len()
        );
        group.bench_with_input(BenchmarkId::new("index_scan", n), &n, |b, _| {
            b.iter(|| indexed.execute(&db, q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, _| {
            b.iter(|| naive.execute(&db, q).unwrap())
        });
    }
    group.finish();
}

/// Range-query shape of the same ablation.
fn a1_range_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_range_queries");
    let n = 20_000usize;
    let db = Database::new();
    keyed_table(&db, n, 2_000, true, 42);
    let indexed = Engine::new();
    let naive = Engine::without_index_selection();
    let q = "SELECT COUNT(*) FROM bench_kv WHERE k BETWEEN 100 AND 120";
    group.bench_function("index_range", |b| {
        b.iter(|| indexed.execute(&db, q).unwrap())
    });
    group.bench_function("scan_range", |b| b.iter(|| naive.execute(&db, q).unwrap()));
    group.finish();
}

/// Baseline storage throughput: raw inserts with and without a PK index.
fn storage_insert_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_insert");
    group.bench_function("heap_insert_1k", |b| {
        b.iter(|| {
            let db = Database::new();
            let schema = Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
            ])
            .unwrap();
            db.create_table("t", schema).unwrap();
            for i in 0..1_000i64 {
                db.insert("t", vec![Value::Int(i), Value::from("payload")])
                    .unwrap();
            }
            db
        })
    });
    group.bench_function("pk_insert_1k", |b| {
        b.iter(|| {
            let db = Database::new();
            let schema = Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
            ])
            .unwrap()
            .with_primary_key(&["a"])
            .unwrap();
            db.create_table("t", schema).unwrap();
            for i in 0..1_000i64 {
                db.insert("t", vec![Value::Int(i), Value::from("payload")])
                    .unwrap();
            }
            db
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = a1_index_ablation, a1_range_queries, storage_insert_throughput
}
criterion_main!(benches);
