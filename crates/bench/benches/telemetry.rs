//! Telemetry-spine overhead: the same gated platform calls with the
//! tenant's `telemetry.enabled` flag on and off. The spine's acceptance
//! budget is ≤5% overhead on the traced path; the disabled path must be
//! indistinguishable from free.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis::OdbisPlatform;
use odbis_tenancy::SubscriptionPlan;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(3000))
        .warm_up_time(Duration::from_millis(500))
}

fn booted(telemetry_on: bool) -> (Arc<OdbisPlatform>, String) {
    let p = Arc::new(OdbisPlatform::new());
    p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = p.login("acme", "root", "pw").unwrap();
    if !telemetry_on {
        p.admin
            .config
            .set_for_tenant("acme", "telemetry.enabled", false.into())
            .unwrap();
    }
    p.sql("acme", &token, "CREATE TABLE kpis (k TEXT, v INT)")
        .unwrap();
    let mut insert = String::from("INSERT INTO kpis VALUES ('a', 0)");
    for i in 1..2_000 {
        insert.push_str(&format!(", ('k{i}', {i})"));
    }
    p.sql("acme", &token, &insert).unwrap();
    (p, token)
}

const QUERIES: &[(&str, &str)] = &[
    ("point", "SELECT v FROM kpis WHERE k = 'k999'"),
    (
        "aggregate",
        "SELECT COUNT(*) AS n, SUM(v) AS total FROM kpis",
    ),
];

/// The raw cost of the instrumentation itself, isolated from query noise:
/// one gate root span + one service child span, fully recorded, vs the
/// inert disabled span.
fn span_microcost(c: &mut Criterion) {
    let t = Arc::new(odbis_telemetry::Telemetry::new());
    let mut group = c.benchmark_group("telemetry_span");
    group.bench_function("root_child_pair", |b| {
        b.iter(|| {
            let mut s = t.span("acme", "MDS", "sql", 250);
            s.set_detail("SELECT v FROM kpis WHERE k = 'k999'");
            let mut child = odbis_telemetry::child_span("sql", "execute.vectorized");
            child.set_rows(1);
            drop(child);
            s.set_rows(1);
        })
    });
    group.bench_function("disabled_span", |b| {
        b.iter(|| {
            let mut s = odbis_telemetry::Span::disabled();
            s.set_rows(1);
        })
    });
    group.finish();
}

fn telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    for (mode, on) in [("on", true), ("off", false)] {
        let (p, token) = booted(on);
        for (label, sql) in QUERIES {
            group.bench_with_input(
                BenchmarkId::new(format!("sql_{label}"), mode),
                &mode,
                |b, _| b.iter(|| p.sql("acme", &token, sql).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = telemetry_overhead, span_microcost
}
criterion_main!(benches);
