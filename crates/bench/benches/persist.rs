//! Checkpoint-format comparison (experiment A8): binary columnar segments
//! vs the JSON snapshot they replaced, on a BI-shaped 8-table warehouse.
//! The headline case is the incremental fold — one dirty table of eight —
//! where segments re-encode only the dirty table while JSON rewrites the
//! world. Recovery opens the store cold from its checkpoint artifacts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odbis_bench::persist::{build_warehouse, scratch_dir, touch_one_table};
use odbis_storage::SnapshotFormat;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(2500))
        .warm_up_time(Duration::from_millis(500))
}

const FORMATS: &[SnapshotFormat] = &[SnapshotFormat::Segments, SnapshotFormat::Json];

/// Incremental checkpoint: one dirty table of eight. Each iteration
/// rewrites 500 rows of `fact_0` in place (table size stays constant
/// across iterations) and folds the log.
fn checkpoint_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_checkpoint_1_dirty_of_8");
    for &format in FORMATS {
        let dir = scratch_dir(&format!("incr-{}", format.as_str()));
        let (db, store) = build_warehouse(&dir, format);
        store.checkpoint(&db).unwrap(); // start from an all-clean fold
        group.bench_function(BenchmarkId::from_parameter(format.as_str()), |b| {
            b.iter(|| {
                touch_one_table(&db, 500);
                store.checkpoint(&db).unwrap()
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Full checkpoint: every table dirty, both formats rewrite everything —
/// isolates the raw encoder cost (columnar segments vs JSON text).
fn checkpoint_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_checkpoint_all_dirty");
    for &format in FORMATS {
        let dir = scratch_dir(&format!("full-{}", format.as_str()));
        let (db, store) = build_warehouse(&dir, format);
        // monotonic pk source shared across the harness's calibration and
        // measurement invocations of the closure
        static NEXT_ID: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(2_000_000);
        group.bench_function(BenchmarkId::from_parameter(format.as_str()), |b| {
            b.iter(|| {
                // dirty every table with one tiny unique-pk insert each
                for t in 0..odbis_bench::persist::TABLES {
                    let name = format!("fact_{t}");
                    let id = NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    db.insert(&name, odbis_bench::persist::fact_row(id))
                        .unwrap();
                }
                store.checkpoint(&db).unwrap()
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Cold recovery: open the store from its checkpoint artifacts and
/// scan one table to force decode.
fn recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_recovery_8x10k");
    for &format in FORMATS {
        let dir = scratch_dir(&format!("recover-{}", format.as_str()));
        {
            let (db, store) = build_warehouse(&dir, format);
            store.checkpoint(&db).unwrap();
        }
        group.bench_function(BenchmarkId::from_parameter(format.as_str()), |b| {
            b.iter(|| {
                let (db, _store) = odbis_storage::DurableStore::open_with_format(
                    &dir,
                    odbis_storage::FsyncPolicy::Never,
                    format,
                )
                .unwrap();
                assert_eq!(db.scan("fact_0").unwrap().len(), odbis_bench::persist::ROWS);
                db
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = checkpoint_incremental, checkpoint_full, recovery
}
criterion_main!(benches);
