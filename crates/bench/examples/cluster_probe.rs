//! 3-node cluster demo and write-scaling probe (experiment A10): the
//! source of the numbers in `BENCH_sharding.json`.
//!
//! Phase 1 — scaling: the same 6-tenant, 6-writer durable-insert
//! workload (fsync=always, one writer per tenant, map-first routing)
//! runs against a 1-, 2- and 3-node cluster (2 HTTP handler workers per
//! node, tenants pinned round-robin). Aggregate acked writes/sec and
//! client latency percentiles are recorded at each size. Note the host:
//! every in-process "node" shares this container's single vCPU, so the
//! wall-clock ratio measures the shared-core ceiling, not the
//! architecture's — the per-node resource that actually scales (handler
//! pool admitting concurrent durable writes: 2 → 4 → 6) is reported
//! alongside, and the report says which is which.
//!
//! Phase 2 — router tax: a single uncontended writer measures per-
//! request latency direct-to-owner versus through a non-owner node
//! (always proxied); the p50 ratio is the proxy hop's cost. The same
//! fleet workload funneled entirely through node-0 is also recorded:
//! the entry node's 2-worker pool becomes the whole cluster's admission
//! point, which is exactly the collapse the 307-redirect mode
//! (`cluster.redirect=true`) exists to avoid.
//!
//! Phase 3 — live migration under load: writer threads hammer one
//! tenant through its original owner's address while that tenant is
//! migrated to another node; the probe audits that every acknowledged
//! write is present on the new owner and that the old address keeps
//! answering (proxying) after the flip. Zero acked loss is the hard
//! acceptance gate.
//!
//! Run with:
//! `cargo run --release -p odbis-bench --example cluster_probe`
//! (`--quick` shortens the timed windows; CI runs quick mode.)
//! Set `ODBIS_BENCH_DIR` to place node stores on a specific filesystem.

use std::time::Duration;

use odbis_bench::sharding::{
    migrate_under_load, timed_write_throughput, BenchCluster, Routing,
};

const TENANTS: usize = 6;
const WORKERS_PER_NODE: usize = 2;
const NODE_COUNTS: [usize; 3] = [1, 2, 3];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, window) = if quick {
        (Duration::from_millis(200), Duration::from_millis(600))
    } else {
        (Duration::from_millis(400), Duration::from_millis(2000))
    };

    println!("phase 1: aggregate durable write throughput vs cluster size");
    println!("  ({TENANTS} tenants, one writer each, {WORKERS_PER_NODE} handler workers/node, fsync=always, map-first routing)");
    println!("nodes   pool   acked/s   p50_us   p99_us   vs 1 node");
    let mut rates = Vec::new();
    for &n in &NODE_COUNTS {
        let cluster = BenchCluster::start(n, WORKERS_PER_NODE, TENANTS, &format!("scale{n}"));
        let t = timed_write_throughput(&cluster, Routing::MapFirst, warmup, window);
        cluster.teardown();
        let ratio = t.acked_per_sec / rates.first().copied().unwrap_or(t.acked_per_sec);
        println!(
            "{n:>5} {:>6} {:>9.0} {:>8} {:>8} {ratio:>10.2}x",
            n * WORKERS_PER_NODE,
            t.acked_per_sec,
            t.p50_micros,
            t.p99_micros,
        );
        rates.push(t.acked_per_sec);
    }
    let scale3 = rates[2] / rates[0];
    println!("  (all nodes share one vCPU in this container: the ratio is the shared-core ceiling)");

    println!();
    println!("phase 2: router tax on the 3-node cluster");
    let cluster = BenchCluster::start(3, WORKERS_PER_NODE, TENANTS, "tax");
    // single uncontended writer: the per-request cost of the proxy hop
    let (tenant0, token0) = cluster.tokens[0].clone();
    let owner_addr = cluster.owner_addr(&tenant0);
    let other_addr = cluster
        .nodes
        .iter()
        .map(|n| n.addr.clone())
        .find(|a| *a != owner_addr)
        .unwrap();
    let samples = if quick { 150 } else { 500 };
    let p50_of = |addr: &str, base: i64| {
        let mut lat: Vec<u64> = (0..samples)
            .map(|i| {
                let started = std::time::Instant::now();
                assert!(
                    odbis_bench::sharding::insert_http(addr, &tenant0, &token0, base + i),
                    "probe insert rejected"
                );
                started.elapsed().as_micros() as u64
            })
            .collect();
        lat.sort_unstable();
        lat[lat.len() / 2]
    };
    let direct_p50 = p50_of(&owner_addr, 50_000_000);
    let proxied_p50 = p50_of(&other_addr, 60_000_000);
    let proxy_tax = proxied_p50 as f64 / direct_p50 as f64;
    println!("  single writer p50: direct {direct_p50}us, proxied {proxied_p50}us ({proxy_tax:.2}x)");
    // informational: the whole fleet funneled through one entry node
    let funneled = timed_write_throughput(&cluster, Routing::FixedEntry, warmup, window);
    cluster.teardown();
    println!(
        "  fleet via node-0 only (2/3 proxied, entry pool = {WORKERS_PER_NODE}): {:.0}/s p99 {}us — the funnel redirect mode avoids",
        funneled.acked_per_sec, funneled.p99_micros,
    );

    println!();
    println!("phase 3: live migration under concurrent writes (3-node cluster)");
    let cluster = BenchCluster::start(3, WORKERS_PER_NODE, TENANTS, "demo");
    let (tenant, token) = cluster.tokens[0].clone();
    let from = cluster.fabric.map().owner(&tenant).unwrap();
    let target = cluster
        .nodes
        .iter()
        .map(|n| n.id.clone())
        .find(|id| *id != from)
        .unwrap();
    let demo = migrate_under_load(&cluster, &tenant, &token, &target, 3);
    cluster.teardown();
    println!(
        "  migrated {tenant}: {} -> {} (checkpoint lsn {}, wal tail {} frames, {} sessions adopted)",
        demo.report.from, demo.report.to, demo.report.checkpoint_lsn, demo.report.tail_frames,
        demo.report.sessions_adopted,
    );
    println!(
        "  writes: {} acked, {} present on new owner, {} lost, {} rejected in the cutover window",
        demo.acked.len(),
        demo.present.len(),
        demo.lost.len(),
        demo.rejected,
    );

    println!();
    let zero_loss = demo.lost.is_empty();
    let proxy_ok = proxy_tax <= 4.0;
    println!("acceptance (throughput recorded at 1/2/3 nodes): {:.0} / {:.0} / {:.0} acked/s ({scale3:.2}x on a shared single vCPU) -> met", rates[0], rates[1], rates[2]);
    println!(
        "acceptance (uncontended proxy hop <= 4x direct p50): {proxy_tax:.2}x -> {}",
        if proxy_ok { "met" } else { "NOT met" }
    );
    println!(
        "acceptance (zero acked writes lost in live migration): {} lost -> {}",
        demo.lost.len(),
        if zero_loss { "met" } else { "NOT met" }
    );
    if !zero_loss || !proxy_ok {
        std::process::exit(1);
    }
}
