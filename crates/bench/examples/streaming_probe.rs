//! Experiment A9 probe: incremental view maintenance vs per-write
//! recompute, and end-to-end push freshness latency.
//!
//! Run with: cargo run --release -p odbis-bench --example streaming_probe
//!
//! The numbers printed here are recorded by hand into
//! `BENCH_streaming.json` at the repo root.

use odbis_bench::streaming;

fn main() {
    println!("== A9a: delta fold vs full rebuild (per single-row write) ==");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>9}",
        "rows", "writes", "delta p50", "delta p99", "rebuild", "speedup"
    );
    for &rows in &[5_000usize, 50_000] {
        let r = streaming::delta_vs_recompute(rows, 200, 0x0DB15);
        println!(
            "{:>8} {:>8} {:>9} us {:>9} us {:>9} us {:>8.1}x",
            r.rows, r.writes, r.delta_p50_us, r.delta_p99_us, r.rebuild_us, r.speedup
        );
    }

    println!();
    println!("== A9b: end-to-end freshness (write -> parked HTTP watcher answered) ==");
    let f = streaming::watch_freshness(50);
    println!(
        "{} writes: e2e p50 {} us, p99 {} us",
        f.writes, f.e2e_p50_us, f.e2e_p99_us
    );
}
