//! Sustained-shape WAL overhead probe.
//!
//! The criterion bench (`benches/wal.rs`) cycles a table through
//! truncate/checkpoint to bound memory, which leaves its un-journaled
//! baseline cache-hot (~140 ns/row on this container). This probe
//! measures the complementary shape: one long uninterrupted load of
//! `ROWS` rows in 100-row `insert_many` statements, no truncation, so
//! the baseline pays the real sustained cost of growing a warehouse
//! table. The journaled side runs at `fsync=never` on tmpfs when
//! available. Reported: ns/row each side, min of `REPS` passes, and the
//! journaled/un-journaled ratio the <2× acceptance budget refers to.
//!
//! Run with: `cargo run --release -p odbis-bench --example wal_sustained`

use std::path::PathBuf;
use std::time::Instant;

use odbis_storage::{
    Column, DataType, Database, DurableStore, FsyncPolicy, Schema, Value, WalSink,
};

const ROWS: usize = 200_000;
const BATCH: usize = 100;
const REPS: usize = 3;

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("region", DataType::Text),
        Column::new("amount", DataType::Float),
    ])
    .unwrap()
}

fn row(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::from(if i % 2 == 0 { "EU" } else { "US" }),
        Value::Float(i as f64 * 1.5),
    ]
}

fn load(db: &Database) -> f64 {
    let start = Instant::now();
    for base in (0..ROWS as i64).step_by(BATCH) {
        let rows = (base..base + BATCH as i64).map(row).collect();
        db.insert_many("orders", rows).unwrap();
    }
    start.elapsed().as_nanos() as f64 / ROWS as f64
}

fn scratch_dir() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    let root = if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    };
    let dir = root.join(format!("odbis-wal-sustained-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let mut base_best = f64::INFINITY;
    let mut wal_best = f64::INFINITY;
    for rep in 0..REPS {
        let db = Database::new();
        db.create_table("orders", schema()).unwrap();
        let base = load(&db);
        base_best = base_best.min(base);

        let dir = scratch_dir();
        let (db, store) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let wal: std::sync::Arc<dyn WalSink> = std::sync::Arc::clone(store.wal()) as _;
        db.set_wal_sink(wal);
        db.create_table("orders", schema()).unwrap();
        let journaled = load(&db);
        wal_best = wal_best.min(journaled);
        let wal_len = store.wal().stats().file_len;
        let _ = std::fs::remove_dir_all(&dir);

        println!(
            "rep {rep}: unjournaled {base:.0} ns/row, journaled {journaled:.0} ns/row \
             (ratio {:.2}x, wal {wal_len} bytes)",
            journaled / base
        );
    }
    println!(
        "best-of-{REPS}: unjournaled {base_best:.0} ns/row, journaled {wal_best:.0} ns/row, \
         ratio {:.2}x (budget < 2x)",
        wal_best / base_best
    );
}
