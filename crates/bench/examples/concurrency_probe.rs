//! Free-running mixed-throughput probe for the lock-granularity
//! experiment: the source of the numbers in `BENCH_concurrency.json`.
//!
//! For each thread count and each lock mode it runs the shared
//! multi-tenant workload (half writers doing journaled fsync=always
//! inserts, half readers aggregating the dim table) for a warmup plus a
//! timed window, and reports reads/sec, writes/sec and their sum. The
//! acceptance line is mixed throughput at 8 threads: per-table must be
//! ≥ 2× the single-lock baseline.
//!
//! Run with:
//! `cargo run --release -p odbis-bench --example concurrency_probe`
//! Set `ODBIS_BENCH_DIR` to place tenant stores on a specific filesystem
//! (fsync cost is the writer stall; tmpfs hides it).

use std::time::Duration;

use odbis_bench::concurrency::{split, timed_mixed_throughput, LockMode};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, window) = if quick {
        (Duration::from_millis(150), Duration::from_millis(400))
    } else {
        (Duration::from_millis(300), Duration::from_millis(1200))
    };

    println!("mode        threads  writers readers   reads/s   writes/s    mixed/s");
    let mut mixed_at = vec![[0f64; 2]; THREADS.len()];
    for (mi, mode) in [LockMode::SingleLock, LockMode::PerTable]
        .into_iter()
        .enumerate()
    {
        for (ti, &n) in THREADS.iter().enumerate() {
            let (writers, readers) = split(n);
            let t = timed_mixed_throughput(mode, n, warmup, window);
            mixed_at[ti][mi] = t.mixed_per_sec();
            println!(
                "{:<11} {:>7} {:>8} {:>7} {:>9.0} {:>10.0} {:>10.0}",
                mode.label(),
                n,
                writers,
                readers,
                t.reads_per_sec(),
                t.writes_per_sec(),
                t.mixed_per_sec(),
            );
        }
    }

    println!();
    for (ti, &n) in THREADS.iter().enumerate() {
        let [single, per_table] = mixed_at[ti];
        println!(
            "threads {n}: mixed throughput ratio pertable/singlelock = {:.2}x",
            per_table / single
        );
    }
    let [single8, pertable8] = mixed_at[THREADS.len() - 1];
    let ratio = pertable8 / single8;
    println!(
        "acceptance (8 threads, budget >= 2x): {:.2}x -> {}",
        ratio,
        if ratio >= 2.0 { "met" } else { "NOT met" }
    );
}
