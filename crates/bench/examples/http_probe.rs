//! Connection-scaling + noisy-neighbor probe for the event-driven HTTP
//! server (experiment A7): the source of the numbers in `BENCH_http.json`.
//!
//! Part 1 opens a herd of keep-alive connections against the epoll
//! reactor, holds them all, and samples request latency across the herd —
//! idle connections must cost a file descriptor, not a thread. The
//! threaded backend's cap (one pinned worker per live connection) is
//! measured alongside for contrast. The full-size run (10k connections)
//! needs ~20k descriptors across both ends, so the server runs in a child
//! process (`--serve-ping` mode, line protocol on stdin/stdout) and each
//! side stays inside a stock 20k `ulimit -n`; `--quick` keeps everything
//! in-process at 500 connections.
//!
//! Part 2 configures a rate limit on one tenant, blasts it from parallel
//! clients, and checks the other tenant's paced p99 against its solo
//! baseline while the noisy tenant collects structured 429s.
//!
//! Run with:
//! `cargo run --release -p odbis-bench --example http_probe` or `--quick`
//! for the CI-sized run.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use odbis_bench::http::{
    noisy_neighbor, open_herd, pct, ping_server, reactor_connection_scaling, sample_herd,
    threaded_connection_cap,
};

/// Child mode: serve `/ping` on the reactor, print the address, then
/// answer `report` lines on stdin with the live connection count until
/// stdin closes.
fn serve_ping() {
    let server = ping_server(2).expect("start ping server");
    println!("ADDR {}", server.addr());
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line.as_deref() {
            Ok("report") => {
                println!("OPEN {}", server.connections_open().unwrap_or(0));
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    server.shutdown();
}

/// Full-size scaling probe against a child-process server.
fn scale_against_child(target: usize, sample: usize) -> (usize, usize, f64, u64, u64, usize) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("--serve-ping")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let mut child_in = child.stdin.take().unwrap();
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    child_out.read_line(&mut line).expect("read child addr");
    let addr = line
        .strip_prefix("ADDR ")
        .expect("child handshake")
        .trim()
        .to_string();

    let mut herd = open_herd(&addr, target).expect("open herd");
    writeln!(child_in, "report").unwrap();
    line.clear();
    child_out.read_line(&mut line).expect("read child count");
    let held: usize = line
        .strip_prefix("OPEN ")
        .expect("child report")
        .trim()
        .parse()
        .expect("count");
    let lat = sample_herd(&mut herd, sample);
    let (p50, p99, sampled) = (pct(&lat, 50), pct(&lat, 99), lat.len());
    let open_secs = herd.open_secs;
    drop(herd);
    drop(child_in); // EOF: child shuts its server down
    let _ = child.wait();
    (target, held, open_secs, p50, p99, sampled)
}

fn main() {
    if std::env::args().any(|a| a == "--serve-ping") {
        serve_ping();
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let (target, sample) = if quick { (500, 100) } else { (10_000, 200) };
    let quiet_requests = if quick { 100 } else { 400 };

    println!("== connection scaling ==");
    let cap = threaded_connection_cap(4).expect("threaded cap probe");
    println!("threaded backend, 4 workers: {cap} concurrently-responsive connections");

    let (target, held, open_secs, p50, p99, sampled) = if quick {
        let s = reactor_connection_scaling(target, sample).expect("reactor scaling probe");
        (
            s.target,
            s.held,
            s.open_secs,
            s.p50_micros,
            s.p99_micros,
            s.sampled,
        )
    } else {
        scale_against_child(target, sample)
    };
    println!(
        "reactor: target={target} held={held} open_time={open_secs:.2}s sampled={sampled} p50={p50}us p99={p99}us"
    );
    let scaled = held >= target;
    println!(
        "acceptance: reactor held {held} >= {target} concurrent keep-alive connections: {}",
        if scaled { "PASS" } else { "FAIL" }
    );

    println!();
    println!("== noisy neighbor ==");
    let n = noisy_neighbor(20, 20, 4, 8, quiet_requests).expect("noisy-neighbor probe");
    println!(
        "quiet solo:      p50={}us p99={}us ({} reqs)",
        n.solo_p50_micros, n.solo_p99_micros, n.quiet_requests
    );
    println!(
        "quiet contended: p50={}us p99={}us ({} reqs, {} errors)",
        n.contended_p50_micros, n.contended_p99_micros, n.quiet_requests, n.quiet_errors
    );
    println!(
        "noisy tenant:    {} admitted, {} throttled (429 + Retry-After)",
        n.noisy_ok, n.noisy_throttled
    );
    let ratio = n.contended_p99_micros as f64 / n.solo_p99_micros.max(1) as f64;
    let fair = ratio <= 2.0 && n.quiet_errors == 0 && n.noisy_throttled > 0;
    println!(
        "acceptance: quiet p99 ratio contended/solo = {ratio:.2}x (<= 2x), quiet errors = {}, noisy throttled = {}: {}",
        n.quiet_errors,
        n.noisy_throttled,
        if fair { "PASS" } else { "FAIL" }
    );

    if !(scaled && fair) {
        std::process::exit(1);
    }
}
