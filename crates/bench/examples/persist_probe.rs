//! One-shot A8 probe: runs the full persist cycle (load → full checkpoint
//! → one-dirty-table incremental checkpoint → crash → recover → cold scan)
//! under both checkpoint formats and prints the comparison that
//! `BENCH_persist.json` records.
//!
//! Run with: `cargo run --release -p odbis-bench --example persist_probe`

use odbis_bench::persist::{run_cycle, ROWS, TABLES};
use odbis_storage::SnapshotFormat;

fn main() {
    println!("warehouse: {TABLES} tables x {ROWS} rows, BI-shaped columns");
    let mut results = Vec::new();
    for format in [SnapshotFormat::Segments, SnapshotFormat::Json] {
        // min-of-3: the container is noisy, the floor is the stable figure
        let runs: Vec<_> = (0..3).map(|_| run_cycle(format)).collect();
        let best =
            |f: fn(&odbis_bench::persist::PersistRun) -> u64| runs.iter().map(f).min().unwrap();
        println!("--- format={}", format.as_str());
        println!(
            "  full checkpoint   : {:>8} us  ({} tables flushed)",
            best(|r| r.full_checkpoint_us),
            runs[0].full_tables_flushed
        );
        println!(
            "  incr checkpoint   : {:>8} us  ({} of {TABLES} tables flushed)",
            best(|r| r.incr_checkpoint_us),
            runs[0].incr_tables_flushed
        );
        println!(
            "  footprint         : {:>8} bytes",
            best(|r| r.footprint_bytes)
        );
        println!("  recovery          : {:>8} us", best(|r| r.recovery_us));
        println!(
            "  cold scan         : {:>8} rows/s",
            runs.iter().map(|r| r.cold_scan_rows_per_s).max().unwrap()
        );
        results.push((
            format.as_str(),
            best(|r| r.incr_checkpoint_us),
            best(|r| r.footprint_bytes),
        ));
    }
    let (_, seg_incr, seg_fp) = results[0];
    let (_, json_incr, json_fp) = results[1];
    println!("--- segments vs json");
    println!(
        "  incr checkpoint speedup : {:.2}x",
        json_incr as f64 / seg_incr.max(1) as f64
    );
    println!(
        "  footprint ratio         : {:.2}x smaller",
        json_fp as f64 / seg_fp.max(1) as f64
    );
}
