//! Property-based tests: cube aggregation agrees with SQL GROUP BY, and
//! materialized roll-ups agree with live queries, for random fact data.

use std::sync::Arc;

use odbis_olap::{
    Aggregator, CubeDef, CubeEngine, CubeQuery, DimensionDef, LevelDef, LevelRef,
    MaterializedAggregate, MeasureDef,
};
use odbis_sql::Engine;
use odbis_storage::{Database, Value};
use proptest::prelude::*;

fn cube() -> CubeDef {
    CubeDef {
        name: "c".into(),
        fact_table: "facts".into(),
        dimensions: vec![
            DimensionDef {
                name: "g".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![LevelDef {
                    name: "a".into(),
                    column: "a".into(),
                }],
            },
            DimensionDef {
                name: "h".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![LevelDef {
                    name: "b".into(),
                    column: "b".into(),
                }],
            },
        ],
        measures: vec![MeasureDef {
            name: "m".into(),
            column: "x".into(),
            aggregator: Aggregator::Sum,
        }],
    }
}

fn load(rows: &[(i64, i64, i64)]) -> Arc<Database> {
    let db = Arc::new(Database::new());
    Engine::new()
        .execute(&db, "CREATE TABLE facts (a INT, b INT, x INT)")
        .unwrap();
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(a, b, x)| vec![Value::Int(*a), Value::Int(*b), Value::Int(*x)])
        .collect();
    db.insert_many("facts", data).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cube aggregation over one axis equals SQL GROUP BY over the same
    /// column.
    #[test]
    fn cube_equals_sql_group_by(rows in prop::collection::vec((0i64..5, 0i64..5, -50i64..50), 1..60)) {
        let db = load(&rows);
        let engine = CubeEngine::new(Arc::clone(&db));
        let cells = engine.query(&cube(), &CubeQuery {
            axes: vec![LevelRef::new("g", "a")],
            slices: vec![],
            measures: vec!["m".into()],
        }).unwrap();
        let sql = Engine::new()
            .execute(&db, "SELECT a, SUM(x) FROM facts GROUP BY a ORDER BY a")
            .unwrap();
        prop_assert_eq!(cells.len(), sql.rows.len());
        for row in &sql.rows {
            let measures = cells.cell(&[row[0].clone()]).unwrap();
            prop_assert_eq!(&measures[0], &row[1]);
        }
    }

    /// Rolling up a two-axis materialized aggregate to one axis equals the
    /// live one-axis query.
    #[test]
    fn rollup_equals_live(rows in prop::collection::vec((0i64..4, 0i64..4, -30i64..30), 1..50)) {
        let db = load(&rows);
        let engine = CubeEngine::new(Arc::clone(&db));
        let c = cube();
        let agg = MaterializedAggregate::build(
            &engine,
            &c,
            vec![LevelRef::new("g", "a"), LevelRef::new("h", "b")],
            vec!["m".into()],
        ).unwrap();
        let q = CubeQuery {
            axes: vec![LevelRef::new("h", "b")],
            slices: vec![],
            measures: vec!["m".into()],
        };
        prop_assert!(agg.answers(&q));
        let rolled = agg.execute(&q).unwrap();
        let live = engine.query(&c, &q).unwrap();
        prop_assert_eq!(rolled.cells, live.cells);
    }

    /// Grand total is invariant across any grouping of the cube.
    #[test]
    fn grand_total_invariant(rows in prop::collection::vec((0i64..6, 0i64..6, -40i64..40), 1..60)) {
        let db = load(&rows);
        let engine = CubeEngine::new(Arc::clone(&db));
        let c = cube();
        let expected: i64 = rows.iter().map(|(_, _, x)| x).sum();
        for axes in [
            vec![],
            vec![LevelRef::new("g", "a")],
            vec![LevelRef::new("g", "a"), LevelRef::new("h", "b")],
        ] {
            let cells = engine.query(&c, &CubeQuery {
                axes,
                slices: vec![],
                measures: vec!["m".into()],
            }).unwrap();
            let total: i64 = cells
                .cells
                .iter()
                .map(|(_, m)| m[0].as_i64().unwrap_or(0))
                .sum();
            prop_assert_eq!(total, expected);
        }
    }
}
