//! Data mining — fills the RapidMiner slot the paper lists among the
//! technical-resources-layer BI APIs (§3.1): k-means clustering, simple
//! linear regression and apriori association rules.

use std::collections::{BTreeSet, HashMap};

use crate::OlapError;

/// Result of [`kmeans`]: assignments per point and final centroids.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

/// k-means clustering with deterministic k-means++-style seeding driven by
/// `seed` (no RNG dependency: a splitmix64 stream).
pub fn kmeans(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    seed: u64,
) -> Result<KMeansResult, OlapError> {
    if points.is_empty() {
        return Err(OlapError::Mining("no points".into()));
    }
    if k == 0 || k > points.len() {
        return Err(OlapError::Mining(format!(
            "k={k} must be in 1..={}",
            points.len()
        )));
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return Err(OlapError::Mining("inconsistent point dimensions".into()));
    }

    let mut rng = seed;
    let mut next = move || {
        rng = rng.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };

    // k-means++ seeding: first centroid random, then proportional to D^2
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[(next() as usize) % points.len()].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total == 0.0 {
            // all points coincide with centroids; pick any
            centroids.push(points[(next() as usize) % points.len()].clone());
            continue;
        }
        let mut target = (next() as f64 / u64::MAX as f64) * total;
        let mut chosen = 0;
        for (i, d) in d2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| dist2(p, &centroids[a]).total_cmp(&dist2(p, &centroids[b])))
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist2(p, &centroids[a]))
        .sum();
    Ok(KMeansResult {
        assignments,
        centroids,
        iterations,
        inertia,
    })
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Simple linear regression `y = slope * x + intercept` with R².
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl Regression {
    /// Predict `y` for `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over `(x, y)` pairs.
pub fn linear_regression(points: &[(f64, f64)]) -> Result<Regression, OlapError> {
    if points.len() < 2 {
        return Err(OlapError::Mining("need at least two points".into()));
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return Err(OlapError::Mining("x values are constant".into()));
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(Regression {
        slope,
        intercept,
        r_squared,
    })
}

/// An association rule `antecedent → consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Left-hand itemset.
    pub antecedent: Vec<String>,
    /// Right-hand item.
    pub consequent: String,
    /// Fraction of transactions containing both sides.
    pub support: f64,
    /// support(both) / support(antecedent).
    pub confidence: f64,
}

/// Apriori-style association-rule mining over transactions (itemsets up to
/// size 2 antecedents — basket-analysis scale).
pub fn association_rules(
    transactions: &[Vec<String>],
    min_support: f64,
    min_confidence: f64,
) -> Result<Vec<AssociationRule>, OlapError> {
    if transactions.is_empty() {
        return Err(OlapError::Mining("no transactions".into()));
    }
    if !(0.0..=1.0).contains(&min_support) || !(0.0..=1.0).contains(&min_confidence) {
        return Err(OlapError::Mining(
            "support/confidence must be in [0, 1]".into(),
        ));
    }
    let n = transactions.len() as f64;
    let sets: Vec<BTreeSet<&str>> = transactions
        .iter()
        .map(|t| t.iter().map(String::as_str).collect())
        .collect();

    // frequent single items
    let mut item_count: HashMap<&str, usize> = HashMap::new();
    for s in &sets {
        for item in s {
            *item_count.entry(item).or_insert(0) += 1;
        }
    }
    let frequent: Vec<&str> = {
        let mut v: Vec<&str> = item_count
            .iter()
            .filter(|(_, &c)| c as f64 / n >= min_support)
            .map(|(&i, _)| i)
            .collect();
        v.sort();
        v
    };

    let count_subset = |items: &[&str]| -> usize {
        sets.iter()
            .filter(|s| items.iter().all(|i| s.contains(i)))
            .count()
    };

    let mut rules = Vec::new();
    // 1 -> 1 rules
    for &a in &frequent {
        for &b in &frequent {
            if a == b {
                continue;
            }
            let both = count_subset(&[a, b]) as f64 / n;
            if both < min_support {
                continue;
            }
            let conf = both / (item_count[a] as f64 / n);
            if conf >= min_confidence {
                rules.push(AssociationRule {
                    antecedent: vec![a.to_string()],
                    consequent: b.to_string(),
                    support: both,
                    confidence: conf,
                });
            }
        }
    }
    // 2 -> 1 rules
    for i in 0..frequent.len() {
        for j in (i + 1)..frequent.len() {
            let pair = [frequent[i], frequent[j]];
            let pair_count = count_subset(&pair);
            if (pair_count as f64 / n) < min_support {
                continue;
            }
            for &c in &frequent {
                if pair.contains(&c) {
                    continue;
                }
                let all = count_subset(&[pair[0], pair[1], c]) as f64 / n;
                if all < min_support {
                    continue;
                }
                let conf = all / (pair_count as f64 / n);
                if conf >= min_confidence {
                    rules.push(AssociationRule {
                        antecedent: vec![pair[0].to_string(), pair[1].to_string()],
                        consequent: c.to_string(),
                        support: all,
                        confidence: conf,
                    });
                }
            }
        }
    }
    rules.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            points.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        let r = kmeans(&points, 2, 50, 42).unwrap();
        // points 0,2,4.. (cluster A) must share a label distinct from odd ones
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for i in 0..10 {
            assert_eq!(r.assignments[2 * i], a);
            assert_eq!(r.assignments[2 * i + 1], b);
        }
        assert!(r.inertia < 1.0);
        // deterministic under the same seed
        let r2 = kmeans(&points, 2, 50, 42).unwrap();
        assert_eq!(r.assignments, r2.assignments);
    }

    #[test]
    fn kmeans_input_validation() {
        assert!(kmeans(&[], 1, 10, 0).is_err());
        assert!(kmeans(&[vec![1.0]], 2, 10, 0).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 10, 0).is_err());
        assert!(kmeans(&[vec![1.0]], 0, 10, 0).is_err());
    }

    #[test]
    fn regression_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let r = linear_regression(&pts).unwrap();
        assert!((r.slope - 3.0).abs() < 1e-9);
        assert!((r.intercept - 7.0).abs() < 1e-9);
        assert!((r.r_squared - 1.0).abs() < 1e-9);
        assert!((r.predict(100.0) - 307.0).abs() < 1e-9);
        assert!(linear_regression(&[(1.0, 1.0)]).is_err());
        assert!(linear_regression(&[(1.0, 1.0), (1.0, 2.0)]).is_err());
    }

    #[test]
    fn association_rules_basket() {
        let tx: Vec<Vec<String>> = vec![
            vec!["bread".into(), "butter".into(), "milk".into()],
            vec!["bread".into(), "butter".into()],
            vec!["bread".into(), "jam".into()],
            vec!["butter".into(), "milk".into()],
            vec!["bread".into(), "butter".into(), "jam".into()],
        ];
        let rules = association_rules(&tx, 0.4, 0.7).unwrap();
        // butter -> bread: support 3/5, confidence 3/4
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec!["butter".to_string()] && r.consequent == "bread")
            .expect("butter->bread rule");
        assert!((r.support - 0.6).abs() < 1e-9);
        assert!((r.confidence - 0.75).abs() < 1e-9);
        assert!(association_rules(&[], 0.5, 0.5).is_err());
        assert!(association_rules(&tx, 1.5, 0.5).is_err());
    }
}
