//! # odbis-olap
//!
//! The Analysis Service (AS) — the ODBIS core BI service that "allows
//! definition of analysis data models (OLAP data cube), data cube
//! visualization and navigation" (§3.1) — plus the data-mining API slot
//! the paper fills with RapidMiner.
//!
//! * [`CubeDef`] — star-schema cubes (snowflaked or degenerate dimensions,
//!   hierarchies, measures), validated against the warehouse catalog;
//! * [`CubeEngine`] — ROLAP execution: cube queries compile to SQL over
//!   the platform's own engine;
//! * [`CubeView`] — stateful navigation: drill-down, roll-up, slice, dice,
//!   pivot;
//! * [`parse_mdx`] — MDX-lite (`SELECT m BY d.l FROM cube WHERE ...`);
//! * [`MaterializedAggregate`] / [`AggregateCache`] — pre-aggregation
//!   (ablation A2), with correct refusal to re-aggregate AVG;
//! * [`mining`] — k-means, linear regression and association rules.

#![warn(missing_docs)]

mod cube;
mod mdx;
pub mod mining;
mod preagg;
mod view;

pub use cube::{
    Aggregator, CellSet, CubeDef, CubeEngine, CubeQuery, DimensionDef, LevelDef, LevelRef,
    MeasureDef, Slice,
};
pub use mdx::{parse_mdx, MdxStatement};
pub use preagg::{AggregateCache, DeltaOutcome, DeltaReport, MaterializedAggregate, TableDelta};
pub use view::CubeView;

/// Errors raised by the analysis service.
#[derive(Debug, Clone, PartialEq)]
pub enum OlapError {
    /// Unknown dimension name.
    UnknownDimension(String),
    /// Unknown level name.
    UnknownLevel(String),
    /// Unknown measure name.
    UnknownMeasure(String),
    /// Structural problem in a cube definition or query.
    Invalid(String),
    /// SQL execution failure.
    Execution(String),
    /// Navigation beyond hierarchy bounds.
    Navigation(String),
    /// MDX-lite parse error.
    Mdx(String),
    /// Mining input error.
    Mining(String),
}

impl std::fmt::Display for OlapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OlapError::UnknownDimension(d) => write!(f, "unknown dimension {d}"),
            OlapError::UnknownLevel(l) => write!(f, "unknown level {l}"),
            OlapError::UnknownMeasure(m) => write!(f, "unknown measure {m}"),
            OlapError::Invalid(m) => write!(f, "invalid cube/query: {m}"),
            OlapError::Execution(m) => write!(f, "execution failed: {m}"),
            OlapError::Navigation(m) => write!(f, "navigation error: {m}"),
            OlapError::Mdx(m) => write!(f, "MDX parse error: {m}"),
            OlapError::Mining(m) => write!(f, "mining error: {m}"),
        }
    }
}

impl std::error::Error for OlapError {}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use odbis_sql::Engine;
    use odbis_storage::Database;

    /// A small star schema: fact_sales + dim_store, degenerate time dim.
    pub fn sales_db() -> Database {
        let db = Database::new();
        Engine::new()
            .execute_script(
                &db,
                "CREATE TABLE dim_store (store_id INT PRIMARY KEY, region TEXT, country TEXT, city TEXT);
                 CREATE TABLE fact_sales (id INT PRIMARY KEY, store_id INT, year INT, month INT, amount DOUBLE, qty INT);
                 INSERT INTO dim_store VALUES
                   (1, 'EU', 'FR', 'Paris'), (2, 'EU', 'DE', 'Berlin'), (3, 'US', 'US', 'NYC');
                 INSERT INTO fact_sales VALUES
                   (1, 1, 2009, 1, 10, 1),
                   (2, 2, 2009, 2, 20, 1),
                   (3, 3, 2009, 3, 30, 1),
                   (4, 1, 2010, 1, 40, 1);",
            )
            .unwrap();
        db
    }

    /// The cube over [`sales_db`].
    pub fn sales_cube() -> CubeDef {
        CubeDef {
            name: "sales".into(),
            fact_table: "fact_sales".into(),
            dimensions: vec![
                DimensionDef {
                    name: "store".into(),
                    table: Some("dim_store".into()),
                    fact_fk: "store_id".into(),
                    dim_key: "store_id".into(),
                    levels: vec![
                        LevelDef {
                            name: "region".into(),
                            column: "region".into(),
                        },
                        LevelDef {
                            name: "country".into(),
                            column: "country".into(),
                        },
                        LevelDef {
                            name: "city".into(),
                            column: "city".into(),
                        },
                    ],
                },
                DimensionDef {
                    name: "time".into(),
                    table: None,
                    fact_fk: String::new(),
                    dim_key: String::new(),
                    levels: vec![
                        LevelDef {
                            name: "year".into(),
                            column: "year".into(),
                        },
                        LevelDef {
                            name: "month".into(),
                            column: "month".into(),
                        },
                    ],
                },
            ],
            measures: vec![
                MeasureDef {
                    name: "revenue".into(),
                    column: "amount".into(),
                    aggregator: Aggregator::Sum,
                },
                MeasureDef {
                    name: "units".into(),
                    column: "qty".into(),
                    aggregator: Aggregator::Count,
                },
            ],
        }
    }
}
