//! Materialized aggregates (ablation A2): pre-computed roll-ups that
//! answer matching cube queries without touching the fact table.
//!
//! Since the streaming-BI change the aggregates are *incrementally
//! maintained*: [`MaterializedAggregate::apply_delta`] folds inserted fact
//! rows straight into the stored cells (SUM/COUNT/MIN/MAX directly, AVG as
//! an internal SUM+COUNT pair), so a warehouse write costs one cell update
//! instead of a full rebuild. Writes a fold cannot express — updates,
//! deletes, truncates, dimension-table changes — mark the aggregate stale
//! and it is rebuilt from the engine. Delta application is idempotent:
//! [`AggregateCache::apply_delta`] tracks a monotonic sequence number, so
//! a redelivered event is skipped and a *gap* in the sequence (a lost
//! event) conservatively marks every aggregate stale.

use std::collections::HashMap;

use odbis_storage::{Batch, Database, Value};

use crate::cube::{Aggregator, CellSet, CubeDef, CubeEngine, CubeQuery, LevelRef, MeasureDef};
use crate::OlapError;

/// One stored accumulator: the internal representation of a measure in a
/// cell. AVG keeps its SUM+COUNT decomposition so inserts can fold into
/// it; everything else stores the aggregate value directly.
#[derive(Debug, Clone, PartialEq)]
enum CellAcc {
    /// SUM/COUNT/MIN/MAX: the aggregate value itself.
    Plain(Value),
    /// AVG decomposed into a re-aggregable pair.
    AvgPair {
        /// Sum of the non-null inputs (Int until overflow, then Float).
        sum: Value,
        /// Count of the non-null inputs.
        count: i64,
    },
}

impl CellAcc {
    /// The accumulator a brand-new (delta-created) cell starts from,
    /// mirroring what the SQL engine reports for a group with no non-null
    /// inputs: COUNT = 0, SUM/MIN/MAX/AVG = NULL.
    fn empty(agg: Aggregator) -> CellAcc {
        match agg {
            Aggregator::Count => CellAcc::Plain(Value::Int(0)),
            Aggregator::Avg => CellAcc::AvgPair {
                sum: Value::Null,
                count: 0,
            },
            _ => CellAcc::Plain(Value::Null),
        }
    }

    /// Render the externally-visible aggregate value.
    fn render(&self) -> Value {
        match self {
            CellAcc::Plain(v) => v.clone(),
            CellAcc::AvgPair { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    match sum.as_f64() {
                        Some(s) => Value::Float(s / *count as f64),
                        None => Value::Null,
                    }
                }
            }
        }
    }

    /// Fold one inserted fact value into the accumulator. NULL inputs
    /// never fold (COUNT skips them, SUM/MIN/MAX/AVG ignore them) — they
    /// only contributed to the group's existence, which the caller has
    /// already recorded by creating the cell.
    fn fold(&mut self, agg: Aggregator, v: Value) {
        if v.is_null() {
            return;
        }
        match (self, agg) {
            (CellAcc::AvgPair { sum, count }, _) => {
                add_into(sum, &v);
                *count += 1;
            }
            (CellAcc::Plain(p), Aggregator::Count) => {
                *p = match p {
                    Value::Int(n) => Value::Int(*n + 1),
                    _ => Value::Int(1),
                };
            }
            (CellAcc::Plain(p), Aggregator::Sum) => add_into(p, &v),
            (CellAcc::Plain(p), Aggregator::Min) => {
                if p.is_null() || v < *p {
                    *p = v;
                }
            }
            (CellAcc::Plain(p), Aggregator::Max) => {
                if p.is_null() || v > *p {
                    *p = v;
                }
            }
            // AVG is always an AvgPair; unreachable but harmless.
            (CellAcc::Plain(_), Aggregator::Avg) => {}
        }
    }
}

/// `p += v` with the engine's numeric semantics: Int+Int stays Int until
/// it would overflow (then promotes to Float, like the executor's
/// checked-add accumulator), everything else adds as f64.
fn add_into(p: &mut Value, v: &Value) {
    *p = match (&*p, v) {
        (Value::Null, _) => v.clone(),
        (Value::Int(a), Value::Int(b)) => a
            .checked_add(*b)
            .map(Value::Int)
            .unwrap_or(Value::Float(*a as f64 + *b as f64)),
        _ => match (p.as_f64(), v.as_f64()) {
            (Some(a), Some(b)) => Value::Float(a + b),
            _ => p.clone(),
        },
    };
}

/// What [`MaterializedAggregate::apply_delta`] did with a write event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// Rows were folded into the stored cells.
    Folded,
    /// The write cannot be folded; the aggregate must be rebuilt.
    NeedsRebuild,
    /// The write touches none of the aggregate's tables.
    Unrelated,
}

/// One warehouse write event, as derived from a WAL-acked record. This is
/// the payload of the `warehouse.delta` ESB channel (serialized as the
/// underlying WAL record); the cache consumes it via
/// [`AggregateCache::apply_delta`].
#[derive(Debug, Clone, PartialEq)]
pub enum TableDelta {
    /// Rows appended to `table` (INSERT / bulk load in append mode).
    Insert {
        /// Written table.
        table: String,
        /// The appended rows, full arity, schema order.
        rows: Vec<Vec<Value>>,
    },
    /// An in-place mutation of `table` (UPDATE/DELETE/TRUNCATE/replace
    /// load): not foldable, dependent aggregates rebuild.
    Mutate {
        /// Mutated table.
        table: String,
    },
    /// `table` was dropped: aggregates over it as a fact table die,
    /// aggregates joining it go stale (and drop when their rebuild fails).
    Drop {
        /// Dropped table.
        table: String,
    },
}

impl TableDelta {
    /// The table the event is about.
    pub fn table(&self) -> &str {
        match self {
            TableDelta::Insert { table, .. }
            | TableDelta::Mutate { table }
            | TableDelta::Drop { table } => table,
        }
    }
}

/// A materialized aggregate: the cell set of one (axes, measures)
/// combination, indexed for point lookups and further roll-ups.
#[derive(Debug, Clone)]
pub struct MaterializedAggregate {
    /// Cube the aggregate belongs to.
    pub cube: String,
    /// Axes the aggregate is grouped by.
    pub axes: Vec<LevelRef>,
    /// Measures stored, with their aggregators (needed to know whether a
    /// further roll-up is valid: AVG/COUNT-DISTINCT style measures are not
    /// re-aggregable here).
    pub measures: Vec<(String, Aggregator)>,
    /// The defining cube, retained so deltas can be resolved (axis →
    /// fact/dimension columns) and stale cells rebuilt without a registry
    /// lookup.
    def: CubeDef,
    cells: HashMap<Vec<Value>, Vec<CellAcc>>,
    stale: bool,
}

impl MaterializedAggregate {
    /// Build by executing the aggregation once through the engine. AVG
    /// measures are fetched as their SUM+COUNT decomposition so the
    /// stored cells stay delta-maintainable.
    pub fn build(
        engine: &CubeEngine,
        cube: &CubeDef,
        axes: Vec<LevelRef>,
        measure_names: Vec<String>,
    ) -> Result<Self, OlapError> {
        let measures: Result<Vec<(String, Aggregator)>, OlapError> = measure_names
            .iter()
            .map(|m| cube.measure(m).map(|md| (md.name.clone(), md.aggregator)))
            .collect();
        let measures = measures?;
        let cells = build_cells(engine, cube, &axes, &measures)?;
        Ok(MaterializedAggregate {
            cube: cube.name.clone(),
            axes,
            measures,
            def: cube.clone(),
            cells,
            stale: false,
        })
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the aggregate is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether a non-foldable write has invalidated the cells. A stale
    /// aggregate refuses to answer queries until [`Self::rebuild`] runs.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Mark the cells invalid (a write arrived that a fold cannot
    /// express, or a delta event was lost).
    pub fn mark_stale(&mut self) {
        self.stale = true;
    }

    /// Every warehouse table the stored cells depend on: the fact table
    /// plus the dimension tables of snowflaked axes.
    pub fn tables(&self) -> Vec<String> {
        let mut out = vec![self.def.fact_table.clone()];
        for lr in &self.axes {
            if let Ok(dim) = self.def.dimension(&lr.dimension) {
                if let Some(t) = &dim.table {
                    if !out.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                        out.push(t.clone());
                    }
                }
            }
        }
        out
    }

    /// Whether a write to `table` can change the stored cells.
    pub fn depends_on(&self, table: &str) -> bool {
        self.tables().iter().any(|t| t.eq_ignore_ascii_case(table))
    }

    /// Re-run the defining aggregation and replace the cells.
    pub fn rebuild(&mut self, engine: &CubeEngine) -> Result<(), OlapError> {
        self.cells = build_cells(engine, &self.def, &self.axes, &self.measures)?;
        self.stale = false;
        Ok(())
    }

    /// Fold a batch of rows inserted into `table` into the stored cells.
    ///
    /// Returns [`DeltaOutcome::Folded`] when the cells now reflect the
    /// insert, [`DeltaOutcome::NeedsRebuild`] when the write touches a
    /// dependent table but cannot be folded (dimension-table insert, or
    /// the aggregate is already stale), and [`DeltaOutcome::Unrelated`]
    /// when the write cannot affect the cells at all — the scoped
    /// invalidation that lets unrelated cubes survive a load.
    ///
    /// Fact rows whose foreign key has no dimension match are skipped:
    /// the ROLAP SQL inner-joins dimensions, so such rows are invisible
    /// to the aggregation (and to any later rebuild).
    pub fn apply_delta(
        &mut self,
        db: &Database,
        table: &str,
        rows: &Batch,
    ) -> Result<DeltaOutcome, OlapError> {
        if !table.eq_ignore_ascii_case(&self.def.fact_table) {
            return Ok(if self.depends_on(table) {
                DeltaOutcome::NeedsRebuild
            } else {
                DeltaOutcome::Unrelated
            });
        }
        if self.stale {
            return Ok(DeltaOutcome::NeedsRebuild);
        }
        let invalid = |e: odbis_storage::DbError| OlapError::Invalid(e.to_string());
        let schema = db.table_schema(table).map_err(invalid)?;

        // How each axis coordinate is read off an inserted fact row.
        enum AxisSrc {
            /// Degenerate level: fact column index.
            Fact(usize),
            /// Snowflaked level: fk column index + key → member lookup
            /// built from the current dimension table.
            Dim(usize, HashMap<Value, Value>),
        }
        let mut srcs = Vec::with_capacity(self.axes.len());
        for lr in &self.axes {
            let dim = self.def.dimension(&lr.dimension)?;
            let level = dim
                .levels
                .iter()
                .find(|l| l.name.eq_ignore_ascii_case(&lr.level))
                .ok_or_else(|| OlapError::UnknownLevel(format!("{}.{}", lr.dimension, lr.level)))?;
            match &dim.table {
                None => {
                    let i = schema.index_of(&level.column).ok_or_else(|| {
                        OlapError::Invalid(format!("fact column {} missing", level.column))
                    })?;
                    srcs.push(AxisSrc::Fact(i));
                }
                Some(t) => {
                    let fk = schema.index_of(&dim.fact_fk).ok_or_else(|| {
                        OlapError::Invalid(format!("fact fk {} missing", dim.fact_fk))
                    })?;
                    let dschema = db.table_schema(t).map_err(invalid)?;
                    let ki = dschema.index_of(&dim.dim_key).ok_or_else(|| {
                        OlapError::Invalid(format!("dim key {} missing on {t}", dim.dim_key))
                    })?;
                    let li = dschema.index_of(&level.column).ok_or_else(|| {
                        OlapError::Invalid(format!("level column {} missing on {t}", level.column))
                    })?;
                    let mut map = HashMap::new();
                    for row in db.scan(t).map_err(invalid)? {
                        map.insert(row[ki].clone(), row[li].clone());
                    }
                    srcs.push(AxisSrc::Dim(fk, map));
                }
            }
        }
        let mcols: Result<Vec<usize>, OlapError> = self
            .measures
            .iter()
            .map(|(name, _)| {
                let md = self.def.measure(name)?;
                schema.index_of(&md.column).ok_or_else(|| {
                    OlapError::Invalid(format!("measure column {} missing", md.column))
                })
            })
            .collect();
        let mcols = mcols?;
        let empty: Vec<CellAcc> = self
            .measures
            .iter()
            .map(|(_, agg)| CellAcc::empty(*agg))
            .collect();

        for r in 0..rows.num_rows() {
            let mut key = Vec::with_capacity(srcs.len());
            let mut visible = true;
            for s in &srcs {
                match s {
                    AxisSrc::Fact(i) => key.push(rows.value(*i, r)),
                    AxisSrc::Dim(fk, map) => match map.get(&rows.value(*fk, r)) {
                        Some(v) => key.push(v.clone()),
                        None => {
                            visible = false;
                            break;
                        }
                    },
                }
            }
            if !visible {
                continue;
            }
            let entry = self.cells.entry(key).or_insert_with(|| empty.clone());
            for (acc, ((_, agg), &col)) in entry.iter_mut().zip(self.measures.iter().zip(&mcols)) {
                acc.fold(*agg, rows.value(col, r));
            }
        }
        Ok(DeltaOutcome::Folded)
    }

    /// Can this aggregate answer `query` exactly?
    ///
    /// Conditions: same cube axes as a prefix-set (every query axis is one
    /// of ours), every slice level is one of our axes, every requested
    /// measure is stored, and — when the query needs a further roll-up
    /// (fewer axes than stored) — all measures are SUM/COUNT/MIN/MAX
    /// (AVG cannot be re-aggregated from per-group AVGs).
    pub fn answers(&self, query: &CubeQuery) -> bool {
        let has_axis = |lr: &LevelRef| {
            self.axes.iter().any(|a| {
                a.dimension.eq_ignore_ascii_case(&lr.dimension)
                    && a.level.eq_ignore_ascii_case(&lr.level)
            })
        };
        if !query.axes.iter().all(has_axis) {
            return false;
        }
        if !query.slices.iter().all(|s| has_axis(&s.level)) {
            return false;
        }
        let measure_ok = |name: &String| {
            self.measures
                .iter()
                .any(|(m, _)| m.eq_ignore_ascii_case(name))
        };
        if !query.measures.iter().all(measure_ok) {
            return false;
        }
        let needs_rollup = query.axes.len() < self.axes.len() || !query.slices.is_empty();
        if needs_rollup {
            query.measures.iter().all(|name| {
                self.measures
                    .iter()
                    .find(|(m, _)| m.eq_ignore_ascii_case(name))
                    .is_some_and(|(_, agg)| {
                        matches!(
                            agg,
                            Aggregator::Sum | Aggregator::Count | Aggregator::Min | Aggregator::Max
                        )
                    })
            })
        } else {
            true
        }
    }

    /// Answer a query from the materialized cells (must satisfy
    /// [`MaterializedAggregate::answers`]).
    pub fn execute(&self, query: &CubeQuery) -> Result<CellSet, OlapError> {
        if !self.answers(query) {
            return Err(OlapError::Invalid(
                "aggregate does not cover this query".into(),
            ));
        }
        let axis_pos: Vec<usize> = query
            .axes
            .iter()
            .map(|lr| {
                self.axes
                    .iter()
                    .position(|a| {
                        a.dimension.eq_ignore_ascii_case(&lr.dimension)
                            && a.level.eq_ignore_ascii_case(&lr.level)
                    })
                    .expect("answers() checked")
            })
            .collect();
        let slice_pos: Vec<(usize, &Value)> = query
            .slices
            .iter()
            .map(|s| {
                (
                    self.axes
                        .iter()
                        .position(|a| {
                            a.dimension.eq_ignore_ascii_case(&s.level.dimension)
                                && a.level.eq_ignore_ascii_case(&s.level.level)
                        })
                        .expect("answers() checked"),
                    &s.member,
                )
            })
            .collect();
        let measure_pos: Vec<(usize, Aggregator)> = query
            .measures
            .iter()
            .map(|name| {
                let i = self
                    .measures
                    .iter()
                    .position(|(m, _)| m.eq_ignore_ascii_case(name))
                    .expect("answers() checked");
                (i, self.measures[i].1)
            })
            .collect();

        // roll up stored cells onto the requested axes
        let mut grouped: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
        for (coords, ms) in &self.cells {
            if !slice_pos.iter().all(|(i, v)| &coords[*i] == *v) {
                continue;
            }
            let key: Vec<Value> = axis_pos.iter().map(|&i| coords[i].clone()).collect();
            let entry = grouped.entry(key).or_insert_with(|| {
                measure_pos
                    .iter()
                    .map(|(_, agg)| match agg {
                        Aggregator::Sum | Aggregator::Count => Value::Null,
                        Aggregator::Min | Aggregator::Max => Value::Null,
                        Aggregator::Avg => Value::Null,
                    })
                    .collect()
            });
            for (out, (mi, agg)) in entry.iter_mut().zip(&measure_pos) {
                let v = ms[*mi].render();
                if v.is_null() {
                    continue;
                }
                *out = match (agg, &*out) {
                    (_, Value::Null) => v.clone(),
                    (Aggregator::Sum | Aggregator::Count, prev) => {
                        match (prev.as_f64(), v.as_f64()) {
                            (Some(a), Some(b)) => {
                                if matches!((prev, &v), (Value::Int(_), Value::Int(_))) {
                                    Value::Int(prev.as_i64().unwrap() + v.as_i64().unwrap())
                                } else {
                                    Value::Float(a + b)
                                }
                            }
                            _ => prev.clone(),
                        }
                    }
                    (Aggregator::Min, prev) => {
                        if v < *prev {
                            v.clone()
                        } else {
                            prev.clone()
                        }
                    }
                    (Aggregator::Max, prev) => {
                        if v > *prev {
                            v.clone()
                        } else {
                            prev.clone()
                        }
                    }
                    // answers() refuses AVG roll-ups, but a query whose key
                    // still collapses distinct stored cells (e.g. duplicate
                    // axes) can reach a merge; surface it instead of
                    // silently keeping the first-seen value. (The internal
                    // SUM+COUNT pair could express it, but the cache's
                    // roll-up contract for AVG is pinned to refuse.)
                    (Aggregator::Avg, _) => {
                        return Err(OlapError::Invalid(format!(
                            "measure {} (AVG) cannot be re-aggregated from materialized cells",
                            self.measures[*mi].0
                        )))
                    }
                };
            }
        }
        let mut cells: Vec<(Vec<Value>, Vec<Value>)> = grouped.into_iter().collect();
        cells.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(CellSet {
            axis_names: query
                .axes
                .iter()
                .map(|a| format!("{}.{}", a.dimension, a.level))
                .collect(),
            measure_names: query.measures.clone(),
            cells,
        })
    }
}

/// Execute the defining aggregation and store the result as accumulator
/// cells. AVG measures query their SUM+COUNT decomposition (two synthetic
/// measures on the same column) in one pass so the pair is consistent.
fn build_cells(
    engine: &CubeEngine,
    def: &CubeDef,
    axes: &[LevelRef],
    measures: &[(String, Aggregator)],
) -> Result<HashMap<Vec<Value>, Vec<CellAcc>>, OlapError> {
    let mut qcube = def.clone();
    let mut qnames = Vec::new();
    for (name, agg) in measures {
        if matches!(agg, Aggregator::Avg) {
            let column = def.measure(name)?.column.clone();
            for (suffix, sub) in [("isum", Aggregator::Sum), ("icnt", Aggregator::Count)] {
                let qname = format!("{name}__{suffix}");
                qcube.measures.push(MeasureDef {
                    name: qname.clone(),
                    column: column.clone(),
                    aggregator: sub,
                });
                qnames.push(qname);
            }
        } else {
            qnames.push(name.clone());
        }
    }
    let cs = engine.query(
        &qcube,
        &CubeQuery {
            axes: axes.to_vec(),
            slices: vec![],
            measures: qnames,
        },
    )?;
    let mut cells = HashMap::with_capacity(cs.cells.len());
    for (coords, vals) in cs.cells {
        let mut it = vals.into_iter();
        let mut accs = Vec::with_capacity(measures.len());
        for (_, agg) in measures {
            if matches!(agg, Aggregator::Avg) {
                let sum = it.next().unwrap_or(Value::Null);
                let count = it.next().and_then(|v| v.as_i64()).unwrap_or(0);
                accs.push(CellAcc::AvgPair { sum, count });
            } else {
                accs.push(CellAcc::Plain(it.next().unwrap_or(Value::Null)));
            }
        }
        cells.insert(coords, accs);
    }
    Ok(cells)
}

/// What one [`AggregateCache::apply_delta`] call did, for telemetry and
/// tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Aggregates that folded the rows in place.
    pub folded: usize,
    /// Aggregates rebuilt from the engine (stale, or fold impossible).
    pub rebuilt: usize,
    /// Aggregates dropped (fact table gone, or rebuild failed).
    pub dropped: usize,
    /// The event was a redelivered duplicate and was skipped entirely.
    pub duplicate: bool,
}

/// A cache of materialized aggregates consulted before hitting the fact
/// table, kept fresh by sequenced delta events.
#[derive(Debug, Default)]
pub struct AggregateCache {
    aggregates: Vec<MaterializedAggregate>,
    last_seq: u64,
}

impl AggregateCache {
    /// Empty cache.
    pub fn new() -> Self {
        AggregateCache::default()
    }

    /// Register a materialized aggregate.
    pub fn add(&mut self, agg: MaterializedAggregate) {
        self.aggregates.push(agg);
    }

    /// Number of registered aggregates.
    pub fn len(&self) -> usize {
        self.aggregates.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.aggregates.is_empty()
    }

    /// Drop every aggregate (the pre-streaming invalidation hammer, still
    /// used when the warehouse is rebuilt wholesale).
    pub fn clear(&mut self) {
        self.aggregates.clear();
    }

    /// The highest delta sequence number applied so far.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Fast-forward [`Self::last_seq`] to `seq` after an out-of-band
    /// recovery (e.g. a dead-lettered delta was compensated for with a
    /// full rebuild), so the next live event is not misread as a second
    /// gap. Never moves the sequence backwards.
    pub fn resync(&mut self, seq: u64) {
        self.last_seq = self.last_seq.max(seq);
    }

    /// Mark every aggregate stale (used when a delta event was lost and
    /// the exact scope of the miss is unknown).
    pub fn mark_all_stale(&mut self) {
        for a in &mut self.aggregates {
            a.mark_stale();
        }
    }

    /// Rebuild every stale aggregate; aggregates whose rebuild fails
    /// (e.g. their tables were dropped) are removed. Returns how many
    /// rebuilds ran.
    pub fn rebuild_stale(&mut self, engine: &CubeEngine) -> usize {
        let mut rebuilt = 0;
        self.aggregates.retain_mut(|a| {
            if !a.is_stale() {
                return true;
            }
            rebuilt += 1;
            a.rebuild(engine).is_ok()
        });
        rebuilt
    }

    /// Apply one sequenced warehouse delta to every registered aggregate.
    ///
    /// Idempotency and loss-safety live here: `seq` must be the event's
    /// per-warehouse monotonic sequence number. A `seq` at or below
    /// [`Self::last_seq`] is a redelivered duplicate and is skipped; a
    /// `seq` that skips ahead means an event was lost, so every aggregate
    /// is conservatively marked stale before this event applies. Stale
    /// aggregates are rebuilt before the call returns, so the cache never
    /// serves a half-maintained cell. Pass `seq = 0` for unsequenced
    /// (direct, non-ESB) application.
    pub fn apply_delta(
        &mut self,
        engine: &CubeEngine,
        seq: u64,
        delta: &TableDelta,
    ) -> DeltaReport {
        let mut report = DeltaReport::default();
        if seq != 0 {
            if seq <= self.last_seq {
                report.duplicate = true;
                return report;
            }
            if seq > self.last_seq + 1 {
                self.mark_all_stale();
            }
            self.last_seq = seq;
        }
        let db = engine.database().clone();
        // A ragged delta (rows of unequal arity) cannot become a Batch;
        // treat it like a mutation so dependent aggregates rebuild.
        let (batch, ragged) = match delta {
            TableDelta::Insert { rows, .. } if !rows.is_empty() => {
                match Batch::from_rows(rows[0].len(), rows.clone()) {
                    Ok(b) => (Some(b), false),
                    Err(_) => (None, true),
                }
            }
            _ => (None, false),
        };
        self.aggregates.retain_mut(|a| {
            match delta {
                TableDelta::Insert { table, .. } => {
                    if let Some(batch) = &batch {
                        match a.apply_delta(&db, table, batch) {
                            Ok(DeltaOutcome::Folded) => report.folded += 1,
                            Ok(DeltaOutcome::NeedsRebuild) | Err(_) => a.mark_stale(),
                            Ok(DeltaOutcome::Unrelated) => {}
                        }
                    } else if ragged && a.depends_on(table) {
                        a.mark_stale();
                    }
                }
                TableDelta::Mutate { table } => {
                    if a.depends_on(table) {
                        a.mark_stale();
                    }
                }
                TableDelta::Drop { table } => {
                    if table.eq_ignore_ascii_case(&a.def.fact_table) {
                        report.dropped += 1;
                        return false;
                    }
                    if a.depends_on(table) {
                        a.mark_stale();
                    }
                }
            }
            true
        });
        let before = self.aggregates.len();
        report.rebuilt = self.rebuild_stale(engine);
        report.dropped += before - self.aggregates.len();
        report
    }

    /// Answer from the cache if any fresh aggregate covers the query.
    pub fn try_answer(&self, cube: &str, query: &CubeQuery) -> Option<CellSet> {
        self.aggregates
            .iter()
            .find(|a| !a.is_stale() && a.cube == cube && a.answers(query))
            .and_then(|a| a.execute(query).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Slice;
    use crate::test_fixtures::{sales_cube, sales_db};
    use odbis_sql::Engine;
    use std::sync::Arc;

    fn engine() -> CubeEngine {
        CubeEngine::new(Arc::new(sales_db()))
    }

    #[test]
    fn materialized_matches_live_query() {
        let engine = engine();
        let cube = sales_cube();
        let axes = vec![
            LevelRef::new("time", "year"),
            LevelRef::new("store", "region"),
        ];
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            axes.clone(),
            vec!["revenue".into(), "units".into()],
        )
        .unwrap();
        assert!(!agg.is_empty());
        let q = CubeQuery {
            axes,
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(agg.answers(&q));
        let from_agg = agg.execute(&q).unwrap();
        let live = engine.query(&cube, &q).unwrap();
        assert_eq!(from_agg.cells, live.cells);
    }

    #[test]
    fn rollup_from_finer_aggregate() {
        let engine = engine();
        let cube = sales_cube();
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            vec![
                LevelRef::new("time", "year"),
                LevelRef::new("store", "region"),
            ],
            vec!["revenue".into()],
        )
        .unwrap();
        // roll up to region only
        let q = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(agg.answers(&q));
        let rolled = agg.execute(&q).unwrap();
        let live = engine.query(&cube, &q).unwrap();
        assert_eq!(rolled.cells, live.cells);
    }

    #[test]
    fn sliced_query_from_aggregate() {
        let engine = engine();
        let cube = sales_cube();
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            vec![
                LevelRef::new("time", "year"),
                LevelRef::new("store", "region"),
            ],
            vec!["revenue".into()],
        )
        .unwrap();
        let q = CubeQuery {
            axes: vec![LevelRef::new("time", "year")],
            slices: vec![Slice {
                level: LevelRef::new("store", "region"),
                member: "EU".into(),
            }],
            measures: vec!["revenue".into()],
        };
        let rolled = agg.execute(&q).unwrap();
        let live = engine.query(&cube, &q).unwrap();
        assert_eq!(rolled.cells, live.cells);
    }

    #[test]
    fn avg_cannot_roll_up_but_exact_match_ok() {
        let engine = engine();
        let mut cube = sales_cube();
        cube.measures.push(crate::cube::MeasureDef {
            name: "avg_amount".into(),
            column: "amount".into(),
            aggregator: Aggregator::Avg,
        });
        let axes = vec![
            LevelRef::new("time", "year"),
            LevelRef::new("store", "region"),
        ];
        let agg =
            MaterializedAggregate::build(&engine, &cube, axes.clone(), vec!["avg_amount".into()])
                .unwrap();
        // exact-match query is fine
        let exact = CubeQuery {
            axes: axes.clone(),
            slices: vec![],
            measures: vec!["avg_amount".into()],
        };
        assert!(agg.answers(&exact));
        // roll-up is refused
        let rollup = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["avg_amount".into()],
        };
        assert!(!agg.answers(&rollup));
    }

    #[test]
    fn duplicate_axis_avg_merge_errors_instead_of_wrong_value() {
        // Axes [year, year] pass answers() (same arity, every axis covered)
        // but collapse distinct (year, region) cells onto one key, forcing
        // a merge AVG cannot express — 2009 has both EU and US cells. This
        // must be a structured error, not a silent first-seen value.
        let engine = engine();
        let mut cube = sales_cube();
        cube.measures.push(crate::cube::MeasureDef {
            name: "avg_amount".into(),
            column: "amount".into(),
            aggregator: Aggregator::Avg,
        });
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            vec![
                LevelRef::new("time", "year"),
                LevelRef::new("store", "region"),
            ],
            vec!["avg_amount".into()],
        )
        .unwrap();
        let q = CubeQuery {
            axes: vec![LevelRef::new("time", "year"), LevelRef::new("time", "year")],
            slices: vec![],
            measures: vec!["avg_amount".into()],
        };
        assert!(agg.answers(&q));
        assert!(matches!(agg.execute(&q), Err(OlapError::Invalid(_))));
    }

    #[test]
    fn cache_answers_covered_queries_only() {
        let engine = engine();
        let cube = sales_cube();
        let mut cache = AggregateCache::new();
        cache.add(
            MaterializedAggregate::build(
                &engine,
                &cube,
                vec![LevelRef::new("store", "region")],
                vec!["revenue".into()],
            )
            .unwrap(),
        );
        let covered = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(cache.try_answer("sales", &covered).is_some());
        let uncovered = CubeQuery {
            axes: vec![LevelRef::new("store", "city")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(cache.try_answer("sales", &uncovered).is_none());
        assert!(cache.try_answer("other_cube", &covered).is_none());
    }

    // ------------------------------------------------ delta maintenance

    fn insert_fact(db: &Database, rows: &str) -> Vec<Vec<Value>> {
        let sql = format!("INSERT INTO fact_sales VALUES {rows}");
        Engine::new().execute(db, &sql).unwrap();
        // return the literal rows for the delta, freshest-last
        Engine::new()
            .execute(
                db,
                "SELECT id, store_id, year, month, amount, qty FROM fact_sales",
            )
            .unwrap()
            .rows
    }

    #[test]
    fn insert_delta_matches_rebuild_across_snowflake_and_degenerate_axes() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(Arc::clone(&db));
        let cube = sales_cube();
        let axes = vec![
            LevelRef::new("time", "year"),
            LevelRef::new("store", "region"),
        ];
        let mut agg = MaterializedAggregate::build(
            &engine,
            &cube,
            axes.clone(),
            vec!["revenue".into(), "units".into()],
        )
        .unwrap();
        // new rows: existing cell (EU 2009), brand-new cell (US 2011)
        Engine::new()
            .execute(
                &db,
                "INSERT INTO fact_sales VALUES (5, 2, 2009, 4, 15, 2), (6, 3, 2011, 1, 99, 1)",
            )
            .unwrap();
        let delta = Batch::from_rows(
            6,
            vec![
                vec![
                    5.into(),
                    2.into(),
                    2009.into(),
                    4.into(),
                    Value::Float(15.0),
                    2.into(),
                ],
                vec![
                    6.into(),
                    3.into(),
                    2011.into(),
                    1.into(),
                    Value::Float(99.0),
                    1.into(),
                ],
            ],
        )
        .unwrap();
        assert_eq!(
            agg.apply_delta(&db, "fact_sales", &delta).unwrap(),
            DeltaOutcome::Folded
        );
        let rebuilt = MaterializedAggregate::build(
            &engine,
            &cube,
            axes.clone(),
            vec!["revenue".into(), "units".into()],
        )
        .unwrap();
        let q = CubeQuery {
            axes,
            slices: vec![],
            measures: vec!["revenue".into(), "units".into()],
        };
        assert_eq!(
            agg.execute(&q).unwrap().cells,
            rebuilt.execute(&q).unwrap().cells
        );
    }

    #[test]
    fn avg_pair_folds_and_renders_like_the_engine() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(Arc::clone(&db));
        let mut cube = sales_cube();
        cube.measures.push(MeasureDef {
            name: "avg_amount".into(),
            column: "amount".into(),
            aggregator: Aggregator::Avg,
        });
        let axes = vec![LevelRef::new("store", "region")];
        let mut agg =
            MaterializedAggregate::build(&engine, &cube, axes.clone(), vec!["avg_amount".into()])
                .unwrap();
        Engine::new()
            .execute(&db, "INSERT INTO fact_sales VALUES (5, 1, 2011, 1, 70, 3)")
            .unwrap();
        let delta = Batch::from_rows(
            6,
            vec![vec![
                5.into(),
                1.into(),
                2011.into(),
                1.into(),
                Value::Float(70.0),
                3.into(),
            ]],
        )
        .unwrap();
        agg.apply_delta(&db, "fact_sales", &delta).unwrap();
        let q = CubeQuery {
            axes,
            slices: vec![],
            measures: vec!["avg_amount".into()],
        };
        let live = engine.query(&cube, &q).unwrap();
        let from_agg = agg.execute(&q).unwrap();
        for ((ck, cv), (lk, lv)) in from_agg.cells.iter().zip(live.cells.iter()) {
            assert_eq!(ck, lk);
            let (a, b) = (cv[0].as_f64().unwrap(), lv[0].as_f64().unwrap());
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn unmatched_fk_insert_is_invisible_like_the_inner_join() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(Arc::clone(&db));
        let cube = sales_cube();
        let axes = vec![LevelRef::new("store", "region")];
        let mut agg =
            MaterializedAggregate::build(&engine, &cube, axes.clone(), vec!["revenue".into()])
                .unwrap();
        // store 99 has no dim_store row: the ROLAP join drops it
        Engine::new()
            .execute(
                &db,
                "INSERT INTO fact_sales VALUES (5, 99, 2011, 1, 1000, 1)",
            )
            .unwrap();
        let delta = Batch::from_rows(
            6,
            vec![vec![
                5.into(),
                99.into(),
                2011.into(),
                1.into(),
                Value::Float(1000.0),
                1.into(),
            ]],
        )
        .unwrap();
        agg.apply_delta(&db, "fact_sales", &delta).unwrap();
        let q = CubeQuery {
            axes,
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert_eq!(
            agg.execute(&q).unwrap().cells,
            engine.query(&cube, &q).unwrap().cells
        );
    }

    #[test]
    fn cache_mutation_rebuilds_and_unrelated_tables_survive() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(Arc::clone(&db));
        let cube = sales_cube();
        let mut cache = AggregateCache::new();
        cache.add(
            MaterializedAggregate::build(
                &engine,
                &cube,
                vec![LevelRef::new("store", "region")],
                vec!["revenue".into()],
            )
            .unwrap(),
        );
        // an unrelated table's write leaves the aggregate untouched
        let r = cache.apply_delta(
            &engine,
            1,
            &TableDelta::Insert {
                table: "somewhere_else".into(),
                rows: vec![vec![1.into()]],
            },
        );
        assert_eq!((r.folded, r.rebuilt, r.dropped), (0, 0, 0));
        assert_eq!(cache.len(), 1);
        // a mutation of the fact table forces a rebuild — and the rebuilt
        // cells see the new state
        Engine::new()
            .execute(&db, "UPDATE fact_sales SET amount = 110 WHERE id = 1")
            .unwrap();
        let r = cache.apply_delta(
            &engine,
            2,
            &TableDelta::Mutate {
                table: "fact_sales".into(),
            },
        );
        assert_eq!(r.rebuilt, 1);
        let q = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert_eq!(
            cache.try_answer("sales", &q).unwrap().cells,
            engine.query(&cube, &q).unwrap().cells
        );
    }

    #[test]
    fn duplicate_seq_is_skipped_and_gap_marks_stale() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(Arc::clone(&db));
        let cube = sales_cube();
        let mut cache = AggregateCache::new();
        cache.add(
            MaterializedAggregate::build(
                &engine,
                &cube,
                vec![LevelRef::new("store", "region")],
                vec!["revenue".into()],
            )
            .unwrap(),
        );
        let rows = insert_fact(&db, "(5, 1, 2011, 1, 5, 1)");
        let newest = vec![rows.last().unwrap().clone()];
        let delta = TableDelta::Insert {
            table: "fact_sales".into(),
            rows: newest,
        };
        let r = cache.apply_delta(&engine, 1, &delta);
        assert_eq!(r.folded, 1);
        // redelivery of the same sequence number must not double-fold
        let r = cache.apply_delta(&engine, 1, &delta);
        assert!(r.duplicate);
        let q = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert_eq!(
            cache.try_answer("sales", &q).unwrap().cells,
            engine.query(&cube, &q).unwrap().cells
        );
        // a sequence gap (event 2 lost, event 3 arrives) forces a rebuild,
        // which reads the warehouse and converges anyway
        Engine::new()
            .execute(&db, "INSERT INTO fact_sales VALUES (6, 2, 2012, 1, 7, 1)")
            .unwrap();
        Engine::new()
            .execute(&db, "INSERT INTO fact_sales VALUES (7, 3, 2012, 2, 9, 1)")
            .unwrap();
        let r = cache.apply_delta(
            &engine,
            3,
            &TableDelta::Insert {
                table: "fact_sales".into(),
                rows: vec![vec![
                    7.into(),
                    3.into(),
                    2012.into(),
                    2.into(),
                    Value::Float(9.0),
                    1.into(),
                ]],
            },
        );
        assert_eq!(r.rebuilt, 1);
        assert_eq!(
            cache.try_answer("sales", &q).unwrap().cells,
            engine.query(&cube, &q).unwrap().cells
        );
    }

    #[test]
    fn drop_of_fact_table_removes_the_aggregate() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(Arc::clone(&db));
        let cube = sales_cube();
        let mut cache = AggregateCache::new();
        cache.add(
            MaterializedAggregate::build(
                &engine,
                &cube,
                vec![LevelRef::new("store", "region")],
                vec!["revenue".into()],
            )
            .unwrap(),
        );
        let r = cache.apply_delta(
            &engine,
            1,
            &TableDelta::Drop {
                table: "fact_sales".into(),
            },
        );
        assert_eq!(r.dropped, 1);
        assert!(cache.is_empty());
    }
}
