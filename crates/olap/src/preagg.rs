//! Materialized aggregates (ablation A2): pre-computed roll-ups that
//! answer matching cube queries without touching the fact table.

use std::collections::HashMap;

use odbis_storage::Value;

use crate::cube::{Aggregator, CellSet, CubeDef, CubeEngine, CubeQuery, LevelRef};
use crate::OlapError;

/// A materialized aggregate: the cell set of one (axes, measures)
/// combination, indexed for point lookups and further roll-ups.
#[derive(Debug, Clone)]
pub struct MaterializedAggregate {
    /// Cube the aggregate belongs to.
    pub cube: String,
    /// Axes the aggregate is grouped by.
    pub axes: Vec<LevelRef>,
    /// Measures stored, with their aggregators (needed to know whether a
    /// further roll-up is valid: AVG/COUNT-DISTINCT style measures are not
    /// re-aggregable here).
    pub measures: Vec<(String, Aggregator)>,
    cells: HashMap<Vec<Value>, Vec<Value>>,
}

impl MaterializedAggregate {
    /// Build by executing the aggregation once through the engine.
    pub fn build(
        engine: &CubeEngine,
        cube: &CubeDef,
        axes: Vec<LevelRef>,
        measure_names: Vec<String>,
    ) -> Result<Self, OlapError> {
        let measures: Result<Vec<(String, Aggregator)>, OlapError> = measure_names
            .iter()
            .map(|m| cube.measure(m).map(|md| (md.name.clone(), md.aggregator)))
            .collect();
        let measures = measures?;
        let cs = engine.query(
            cube,
            &CubeQuery {
                axes: axes.clone(),
                slices: vec![],
                measures: measure_names,
            },
        )?;
        let cells = cs.cells.into_iter().collect();
        Ok(MaterializedAggregate {
            cube: cube.name.clone(),
            axes,
            measures,
            cells,
        })
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the aggregate is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Can this aggregate answer `query` exactly?
    ///
    /// Conditions: same cube axes as a prefix-set (every query axis is one
    /// of ours), every slice level is one of our axes, every requested
    /// measure is stored, and — when the query needs a further roll-up
    /// (fewer axes than stored) — all measures are SUM/COUNT/MIN/MAX
    /// (AVG cannot be re-aggregated from per-group AVGs).
    pub fn answers(&self, query: &CubeQuery) -> bool {
        let has_axis = |lr: &LevelRef| {
            self.axes.iter().any(|a| {
                a.dimension.eq_ignore_ascii_case(&lr.dimension)
                    && a.level.eq_ignore_ascii_case(&lr.level)
            })
        };
        if !query.axes.iter().all(has_axis) {
            return false;
        }
        if !query.slices.iter().all(|s| has_axis(&s.level)) {
            return false;
        }
        let measure_ok = |name: &String| {
            self.measures
                .iter()
                .any(|(m, _)| m.eq_ignore_ascii_case(name))
        };
        if !query.measures.iter().all(measure_ok) {
            return false;
        }
        let needs_rollup = query.axes.len() < self.axes.len() || !query.slices.is_empty();
        if needs_rollup {
            query.measures.iter().all(|name| {
                self.measures
                    .iter()
                    .find(|(m, _)| m.eq_ignore_ascii_case(name))
                    .is_some_and(|(_, agg)| {
                        matches!(
                            agg,
                            Aggregator::Sum | Aggregator::Count | Aggregator::Min | Aggregator::Max
                        )
                    })
            })
        } else {
            true
        }
    }

    /// Answer a query from the materialized cells (must satisfy
    /// [`MaterializedAggregate::answers`]).
    pub fn execute(&self, query: &CubeQuery) -> Result<CellSet, OlapError> {
        if !self.answers(query) {
            return Err(OlapError::Invalid(
                "aggregate does not cover this query".into(),
            ));
        }
        let axis_pos: Vec<usize> = query
            .axes
            .iter()
            .map(|lr| {
                self.axes
                    .iter()
                    .position(|a| {
                        a.dimension.eq_ignore_ascii_case(&lr.dimension)
                            && a.level.eq_ignore_ascii_case(&lr.level)
                    })
                    .expect("answers() checked")
            })
            .collect();
        let slice_pos: Vec<(usize, &Value)> = query
            .slices
            .iter()
            .map(|s| {
                (
                    self.axes
                        .iter()
                        .position(|a| {
                            a.dimension.eq_ignore_ascii_case(&s.level.dimension)
                                && a.level.eq_ignore_ascii_case(&s.level.level)
                        })
                        .expect("answers() checked"),
                    &s.member,
                )
            })
            .collect();
        let measure_pos: Vec<(usize, Aggregator)> = query
            .measures
            .iter()
            .map(|name| {
                let i = self
                    .measures
                    .iter()
                    .position(|(m, _)| m.eq_ignore_ascii_case(name))
                    .expect("answers() checked");
                (i, self.measures[i].1)
            })
            .collect();

        // roll up stored cells onto the requested axes
        let mut grouped: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
        for (coords, ms) in &self.cells {
            if !slice_pos.iter().all(|(i, v)| &coords[*i] == *v) {
                continue;
            }
            let key: Vec<Value> = axis_pos.iter().map(|&i| coords[i].clone()).collect();
            let entry = grouped.entry(key).or_insert_with(|| {
                measure_pos
                    .iter()
                    .map(|(_, agg)| match agg {
                        Aggregator::Sum | Aggregator::Count => Value::Null,
                        Aggregator::Min | Aggregator::Max => Value::Null,
                        Aggregator::Avg => Value::Null,
                    })
                    .collect()
            });
            for (out, (mi, agg)) in entry.iter_mut().zip(&measure_pos) {
                let v = &ms[*mi];
                if v.is_null() {
                    continue;
                }
                *out = match (agg, &*out) {
                    (_, Value::Null) => v.clone(),
                    (Aggregator::Sum | Aggregator::Count, prev) => {
                        match (prev.as_f64(), v.as_f64()) {
                            (Some(a), Some(b)) => {
                                if matches!((prev, v), (Value::Int(_), Value::Int(_))) {
                                    Value::Int(prev.as_i64().unwrap() + v.as_i64().unwrap())
                                } else {
                                    Value::Float(a + b)
                                }
                            }
                            _ => prev.clone(),
                        }
                    }
                    (Aggregator::Min, prev) => {
                        if v < prev {
                            v.clone()
                        } else {
                            prev.clone()
                        }
                    }
                    (Aggregator::Max, prev) => {
                        if v > prev {
                            v.clone()
                        } else {
                            prev.clone()
                        }
                    }
                    // answers() refuses AVG roll-ups, but a query whose key
                    // still collapses distinct stored cells (e.g. duplicate
                    // axes) can reach a merge; surface it instead of
                    // silently keeping the first-seen value.
                    (Aggregator::Avg, _) => {
                        return Err(OlapError::Invalid(format!(
                            "measure {} (AVG) cannot be re-aggregated from materialized cells",
                            self.measures[*mi].0
                        )))
                    }
                };
            }
        }
        let mut cells: Vec<(Vec<Value>, Vec<Value>)> = grouped.into_iter().collect();
        cells.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(CellSet {
            axis_names: query
                .axes
                .iter()
                .map(|a| format!("{}.{}", a.dimension, a.level))
                .collect(),
            measure_names: query.measures.clone(),
            cells,
        })
    }
}

/// A cache of materialized aggregates consulted before hitting the fact
/// table.
#[derive(Debug, Default)]
pub struct AggregateCache {
    aggregates: Vec<MaterializedAggregate>,
}

impl AggregateCache {
    /// Empty cache.
    pub fn new() -> Self {
        AggregateCache::default()
    }

    /// Register a materialized aggregate.
    pub fn add(&mut self, agg: MaterializedAggregate) {
        self.aggregates.push(agg);
    }

    /// Number of registered aggregates.
    pub fn len(&self) -> usize {
        self.aggregates.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.aggregates.is_empty()
    }

    /// Drop every aggregate. Called after any warehouse write: a
    /// materialized aggregate summarizes the fact table at build time, so
    /// the first write after a build makes every aggregate stale.
    pub fn clear(&mut self) {
        self.aggregates.clear();
    }

    /// Answer from the cache if any aggregate covers the query.
    pub fn try_answer(&self, cube: &str, query: &CubeQuery) -> Option<CellSet> {
        self.aggregates
            .iter()
            .find(|a| a.cube == cube && a.answers(query))
            .and_then(|a| a.execute(query).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Slice;
    use crate::test_fixtures::{sales_cube, sales_db};
    use std::sync::Arc;

    fn engine() -> CubeEngine {
        CubeEngine::new(Arc::new(sales_db()))
    }

    #[test]
    fn materialized_matches_live_query() {
        let engine = engine();
        let cube = sales_cube();
        let axes = vec![
            LevelRef::new("time", "year"),
            LevelRef::new("store", "region"),
        ];
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            axes.clone(),
            vec!["revenue".into(), "units".into()],
        )
        .unwrap();
        assert!(!agg.is_empty());
        let q = CubeQuery {
            axes,
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(agg.answers(&q));
        let from_agg = agg.execute(&q).unwrap();
        let live = engine.query(&cube, &q).unwrap();
        assert_eq!(from_agg.cells, live.cells);
    }

    #[test]
    fn rollup_from_finer_aggregate() {
        let engine = engine();
        let cube = sales_cube();
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            vec![
                LevelRef::new("time", "year"),
                LevelRef::new("store", "region"),
            ],
            vec!["revenue".into()],
        )
        .unwrap();
        // roll up to region only
        let q = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(agg.answers(&q));
        let rolled = agg.execute(&q).unwrap();
        let live = engine.query(&cube, &q).unwrap();
        assert_eq!(rolled.cells, live.cells);
    }

    #[test]
    fn sliced_query_from_aggregate() {
        let engine = engine();
        let cube = sales_cube();
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            vec![
                LevelRef::new("time", "year"),
                LevelRef::new("store", "region"),
            ],
            vec!["revenue".into()],
        )
        .unwrap();
        let q = CubeQuery {
            axes: vec![LevelRef::new("time", "year")],
            slices: vec![Slice {
                level: LevelRef::new("store", "region"),
                member: "EU".into(),
            }],
            measures: vec!["revenue".into()],
        };
        let rolled = agg.execute(&q).unwrap();
        let live = engine.query(&cube, &q).unwrap();
        assert_eq!(rolled.cells, live.cells);
    }

    #[test]
    fn avg_cannot_roll_up_but_exact_match_ok() {
        let engine = engine();
        let mut cube = sales_cube();
        cube.measures.push(crate::cube::MeasureDef {
            name: "avg_amount".into(),
            column: "amount".into(),
            aggregator: Aggregator::Avg,
        });
        let axes = vec![
            LevelRef::new("time", "year"),
            LevelRef::new("store", "region"),
        ];
        let agg =
            MaterializedAggregate::build(&engine, &cube, axes.clone(), vec!["avg_amount".into()])
                .unwrap();
        // exact-match query is fine
        let exact = CubeQuery {
            axes: axes.clone(),
            slices: vec![],
            measures: vec!["avg_amount".into()],
        };
        assert!(agg.answers(&exact));
        // roll-up is refused
        let rollup = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["avg_amount".into()],
        };
        assert!(!agg.answers(&rollup));
    }

    #[test]
    fn duplicate_axis_avg_merge_errors_instead_of_wrong_value() {
        // Axes [year, year] pass answers() (same arity, every axis covered)
        // but collapse distinct (year, region) cells onto one key, forcing
        // a merge AVG cannot express — 2009 has both EU and US cells. This
        // must be a structured error, not a silent first-seen value.
        let engine = engine();
        let mut cube = sales_cube();
        cube.measures.push(crate::cube::MeasureDef {
            name: "avg_amount".into(),
            column: "amount".into(),
            aggregator: Aggregator::Avg,
        });
        let agg = MaterializedAggregate::build(
            &engine,
            &cube,
            vec![
                LevelRef::new("time", "year"),
                LevelRef::new("store", "region"),
            ],
            vec!["avg_amount".into()],
        )
        .unwrap();
        let q = CubeQuery {
            axes: vec![LevelRef::new("time", "year"), LevelRef::new("time", "year")],
            slices: vec![],
            measures: vec!["avg_amount".into()],
        };
        assert!(agg.answers(&q));
        assert!(matches!(agg.execute(&q), Err(OlapError::Invalid(_))));
    }

    #[test]
    fn cache_answers_covered_queries_only() {
        let engine = engine();
        let cube = sales_cube();
        let mut cache = AggregateCache::new();
        cache.add(
            MaterializedAggregate::build(
                &engine,
                &cube,
                vec![LevelRef::new("store", "region")],
                vec!["revenue".into()],
            )
            .unwrap(),
        );
        let covered = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(cache.try_answer("sales", &covered).is_some());
        let uncovered = CubeQuery {
            axes: vec![LevelRef::new("store", "city")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(cache.try_answer("sales", &uncovered).is_none());
        assert!(cache.try_answer("other_cube", &covered).is_none());
    }
}
