//! Cube navigation: the "data cube visualization and navigation" of ODBIS
//! §3.1 — drill-down, roll-up, slice, dice and pivot over a stateful view.

use std::sync::Arc;

use odbis_storage::Value;

use crate::cube::{CellSet, CubeDef, CubeEngine, CubeQuery, LevelRef, Slice};
use crate::OlapError;

/// A navigable view over a cube: holds the current axes/slices and
/// re-executes on each navigation step.
pub struct CubeView {
    engine: Arc<CubeEngine>,
    cube: CubeDef,
    axes: Vec<LevelRef>,
    slices: Vec<Slice>,
    measures: Vec<String>,
}

impl CubeView {
    /// Open a view with initial axes and measures.
    pub fn new(
        engine: Arc<CubeEngine>,
        cube: CubeDef,
        axes: Vec<LevelRef>,
        measures: Vec<String>,
    ) -> Self {
        CubeView {
            engine,
            cube,
            axes,
            slices: Vec::new(),
            measures,
        }
    }

    /// Current axes.
    pub fn axes(&self) -> &[LevelRef] {
        &self.axes
    }

    /// Current slices.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Execute the current state.
    pub fn cells(&self) -> Result<CellSet, OlapError> {
        self.engine.query(
            &self.cube,
            &CubeQuery {
                axes: self.axes.clone(),
                slices: self.slices.clone(),
                measures: self.measures.clone(),
            },
        )
    }

    fn axis_position(&self, dimension: &str) -> Result<usize, OlapError> {
        self.axes
            .iter()
            .position(|a| a.dimension.eq_ignore_ascii_case(dimension))
            .ok_or_else(|| OlapError::UnknownDimension(format!("{dimension} not on an axis")))
    }

    /// Drill down: move the dimension's axis one level finer (e.g. year →
    /// month). Errors at the finest level.
    pub fn drill_down(&mut self, dimension: &str) -> Result<(), OlapError> {
        let pos = self.axis_position(dimension)?;
        let dim = self.cube.dimension(dimension)?;
        let cur = dim
            .level_index(&self.axes[pos].level)
            .ok_or_else(|| OlapError::UnknownLevel(self.axes[pos].level.clone()))?;
        if cur + 1 >= dim.levels.len() {
            return Err(OlapError::Navigation(format!(
                "{dimension} is already at its finest level"
            )));
        }
        self.axes[pos].level = dim.levels[cur + 1].name.clone();
        Ok(())
    }

    /// Roll up: move the dimension's axis one level coarser. Errors at the
    /// coarsest level.
    pub fn roll_up(&mut self, dimension: &str) -> Result<(), OlapError> {
        let pos = self.axis_position(dimension)?;
        let dim = self.cube.dimension(dimension)?;
        let cur = dim
            .level_index(&self.axes[pos].level)
            .ok_or_else(|| OlapError::UnknownLevel(self.axes[pos].level.clone()))?;
        if cur == 0 {
            return Err(OlapError::Navigation(format!(
                "{dimension} is already at its coarsest level"
            )));
        }
        self.axes[pos].level = dim.levels[cur - 1].name.clone();
        Ok(())
    }

    /// Slice: fix one level to a member.
    pub fn slice(&mut self, dimension: &str, level: &str, member: impl Into<Value>) {
        self.slices.push(Slice {
            level: LevelRef::new(dimension, level),
            member: member.into(),
        });
    }

    /// Dice: apply several member filters at once.
    pub fn dice(&mut self, filters: Vec<(LevelRef, Value)>) {
        for (level, member) in filters {
            self.slices.push(Slice { level, member });
        }
    }

    /// Remove all slices.
    pub fn clear_slices(&mut self) {
        self.slices.clear();
    }

    /// Pivot: swap the first two axes (rows ↔ columns).
    pub fn pivot(&mut self) -> Result<(), OlapError> {
        if self.axes.len() < 2 {
            return Err(OlapError::Navigation(
                "pivot requires at least two axes".into(),
            ));
        }
        self.axes.swap(0, 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{sales_cube, sales_db};

    fn view() -> CubeView {
        let engine = Arc::new(CubeEngine::new(Arc::new(sales_db())));
        CubeView::new(
            engine,
            sales_cube(),
            vec![
                LevelRef::new("time", "year"),
                LevelRef::new("store", "region"),
            ],
            vec!["revenue".into()],
        )
    }

    #[test]
    fn drill_down_and_roll_up_change_granularity() {
        let mut v = view();
        let coarse = v.cells().unwrap();
        v.drill_down("store").unwrap(); // region -> country
        let finer = v.cells().unwrap();
        assert!(finer.len() >= coarse.len());
        assert_eq!(v.axes()[1].level, "country");
        v.roll_up("store").unwrap();
        assert_eq!(v.axes()[1].level, "region");
        // totals preserved under roll-up
        let back = v.cells().unwrap();
        assert_eq!(back, coarse);
    }

    #[test]
    fn navigation_bounds_error() {
        let mut v = view();
        v.roll_up("store").unwrap_err(); // region is coarsest
        v.drill_down("store").unwrap(); // country
        v.drill_down("store").unwrap(); // city
        assert!(matches!(
            v.drill_down("store"),
            Err(OlapError::Navigation(_))
        ));
        assert!(matches!(
            v.drill_down("ghost"),
            Err(OlapError::UnknownDimension(_))
        ));
    }

    #[test]
    fn slice_and_dice_filter_cells() {
        let mut v = view();
        v.slice("store", "region", "EU");
        let cs = v.cells().unwrap();
        assert!(cs
            .cells
            .iter()
            .all(|(coords, _)| coords[1] == Value::from("EU")));
        v.clear_slices();
        v.dice(vec![
            (LevelRef::new("store", "region"), "EU".into()),
            (LevelRef::new("time", "year"), 2010.into()),
        ]);
        let cs = v.cells().unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.cells[0].1, vec![Value::Float(40.0)]);
    }

    #[test]
    fn pivot_swaps_axes() {
        let mut v = view();
        let before = v.cells().unwrap();
        v.pivot().unwrap();
        let after = v.cells().unwrap();
        assert_eq!(after.axis_names, vec!["store.region", "time.year"]);
        // same cells, transposed coordinates
        assert_eq!(before.len(), after.len());
        for (coords, measures) in &before.cells {
            let swapped = vec![coords[1].clone(), coords[0].clone()];
            assert_eq!(after.cell(&swapped).unwrap(), measures.as_slice());
        }
    }
}
