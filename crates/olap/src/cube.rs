//! Cube definitions and the aggregation engine.

use std::sync::Arc;

use odbis_sql::Engine;
use odbis_storage::{Database, Value};

use crate::OlapError;

/// Aggregators available for measures (mirrors the CWM OLAP `Measure`
/// aggregator enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // self-documenting
pub enum Aggregator {
    Sum,
    Count,
    Avg,
    Min,
    Max,
}

impl Aggregator {
    /// SQL function name.
    pub fn sql(self) -> &'static str {
        match self {
            Aggregator::Sum => "SUM",
            Aggregator::Count => "COUNT",
            Aggregator::Avg => "AVG",
            Aggregator::Min => "MIN",
            Aggregator::Max => "MAX",
        }
    }

    /// Parse a name (as in MDX-lite / CWM models).
    pub fn parse(s: &str) -> Option<Aggregator> {
        match s.to_ascii_uppercase().as_str() {
            "SUM" => Some(Aggregator::Sum),
            "COUNT" => Some(Aggregator::Count),
            "AVG" => Some(Aggregator::Avg),
            "MIN" => Some(Aggregator::Min),
            "MAX" => Some(Aggregator::Max),
            _ => None,
        }
    }
}

/// A measure: an aggregated fact column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureDef {
    /// Measure name (e.g. `revenue`).
    pub name: String,
    /// Fact-table column.
    pub column: String,
    /// Aggregation function.
    pub aggregator: Aggregator,
}

/// One level of a dimension hierarchy, coarse → fine order within the
/// dimension (e.g. `year` before `month`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelDef {
    /// Level name (e.g. `year`).
    pub name: String,
    /// Column holding the level member (on the dimension table, or on the
    /// fact table for degenerate dimensions).
    pub column: String,
}

/// A dimension: either snowflaked out to a dimension table joined by a
/// foreign key, or degenerate (its level columns live on the fact table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionDef {
    /// Dimension name (e.g. `time`, `department`).
    pub name: String,
    /// Dimension table; `None` for degenerate dimensions.
    pub table: Option<String>,
    /// Fact-table foreign-key column (ignored for degenerate dimensions).
    pub fact_fk: String,
    /// Dimension-table key column (ignored for degenerate dimensions).
    pub dim_key: String,
    /// Hierarchy levels, coarse → fine.
    pub levels: Vec<LevelDef>,
}

impl DimensionDef {
    /// Position of a level by name.
    pub fn level_index(&self, level: &str) -> Option<usize> {
        self.levels
            .iter()
            .position(|l| l.name.eq_ignore_ascii_case(level))
    }
}

/// A cube: fact table + dimensions + measures (the AS's "analysis data
/// model (OLAP data cube)" of ODBIS §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CubeDef {
    /// Cube name.
    pub name: String,
    /// Fact table.
    pub fact_table: String,
    /// Dimensions.
    pub dimensions: Vec<DimensionDef>,
    /// Measures.
    pub measures: Vec<MeasureDef>,
}

impl CubeDef {
    /// Find a dimension by name.
    pub fn dimension(&self, name: &str) -> Result<&DimensionDef, OlapError> {
        self.dimensions
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| OlapError::UnknownDimension(name.to_string()))
    }

    /// Find a measure by name.
    pub fn measure(&self, name: &str) -> Result<&MeasureDef, OlapError> {
        self.measures
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| OlapError::UnknownMeasure(name.to_string()))
    }

    /// Validate the cube against the catalog: fact/dimension tables and all
    /// referenced columns must exist.
    pub fn validate(&self, db: &Database) -> Result<(), OlapError> {
        let fact = db
            .table_schema(&self.fact_table)
            .map_err(|e| OlapError::Invalid(e.to_string()))?;
        for m in &self.measures {
            if fact.index_of(&m.column).is_none() {
                return Err(OlapError::Invalid(format!(
                    "measure {} references missing fact column {}",
                    m.name, m.column
                )));
            }
        }
        for d in &self.dimensions {
            match &d.table {
                None => {
                    for l in &d.levels {
                        if fact.index_of(&l.column).is_none() {
                            return Err(OlapError::Invalid(format!(
                                "degenerate level {}.{} missing on fact table",
                                d.name, l.name
                            )));
                        }
                    }
                }
                Some(t) => {
                    let dim = db
                        .table_schema(t)
                        .map_err(|e| OlapError::Invalid(e.to_string()))?;
                    if fact.index_of(&d.fact_fk).is_none() {
                        return Err(OlapError::Invalid(format!(
                            "dimension {} fk {} missing on fact table",
                            d.name, d.fact_fk
                        )));
                    }
                    if dim.index_of(&d.dim_key).is_none() {
                        return Err(OlapError::Invalid(format!(
                            "dimension {} key {} missing on {t}",
                            d.name, d.dim_key
                        )));
                    }
                    for l in &d.levels {
                        if dim.index_of(&l.column).is_none() {
                            return Err(OlapError::Invalid(format!(
                                "level {}.{} missing on {t}",
                                d.name, l.name
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A `(dimension, level)` coordinate on a query axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelRef {
    /// Dimension name.
    pub dimension: String,
    /// Level name.
    pub level: String,
}

impl LevelRef {
    /// Construct from names.
    pub fn new(dimension: impl Into<String>, level: impl Into<String>) -> Self {
        LevelRef {
            dimension: dimension.into(),
            level: level.into(),
        }
    }
}

/// A slice filter: `level member = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Slice {
    /// Filtered level.
    pub level: LevelRef,
    /// Member value the level must equal.
    pub member: Value,
}

/// A cube query: group by `axes`, filter by `slices`, aggregate `measures`.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeQuery {
    /// Grouping levels, in output order.
    pub axes: Vec<LevelRef>,
    /// Slice/dice filters (ANDed).
    pub slices: Vec<Slice>,
    /// Measure names to compute.
    pub measures: Vec<String>,
}

/// The result of a cube query: coordinates per axis plus measure values.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSet {
    /// Axis headers (`dimension.level`).
    pub axis_names: Vec<String>,
    /// Measure headers.
    pub measure_names: Vec<String>,
    /// One entry per cell: (coordinates, measure values).
    pub cells: Vec<(Vec<Value>, Vec<Value>)>,
}

impl CellSet {
    /// Find a cell by its coordinates.
    pub fn cell(&self, coords: &[Value]) -> Option<&[Value]> {
        self.cells
            .iter()
            .find(|(c, _)| c.as_slice() == coords)
            .map(|(_, m)| m.as_slice())
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cell set is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The Analysis Service engine: executes [`CubeQuery`]s by generating SQL
/// over the star schema (dogfooding the platform's own SQL engine, the way
/// a ROLAP server generates SQL against the warehouse).
pub struct CubeEngine {
    db: Arc<Database>,
    engine: Engine,
}

impl CubeEngine {
    /// Engine over a warehouse database.
    pub fn new(db: Arc<Database>) -> Self {
        CubeEngine {
            db,
            engine: Engine::new(),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Generate the ROLAP SQL for a query (exposed for EXPLAIN-style
    /// inspection and tests).
    pub fn generate_sql(&self, cube: &CubeDef, query: &CubeQuery) -> Result<String, OlapError> {
        let mut select_parts = Vec::new();
        let mut group_parts = Vec::new();
        let mut joins: Vec<String> = Vec::new();
        let mut joined: Vec<&str> = Vec::new();

        let mut resolve = |lr: &LevelRef| -> Result<String, OlapError> {
            let dim = cube.dimension(&lr.dimension)?;
            let level = dim
                .levels
                .iter()
                .find(|l| l.name.eq_ignore_ascii_case(&lr.level))
                .ok_or_else(|| OlapError::UnknownLevel(format!("{}.{}", lr.dimension, lr.level)))?;
            match &dim.table {
                None => Ok(format!("f.{}", level.column)),
                Some(t) => {
                    let alias = format!("d_{}", dim.name);
                    if !joined.contains(&dim.name.as_str()) {
                        joins.push(format!(
                            "JOIN {t} {alias} ON f.{} = {alias}.{}",
                            dim.fact_fk, dim.dim_key
                        ));
                        joined.push(dim.name.as_str());
                    }
                    Ok(format!("{alias}.{}", level.column))
                }
            }
        };

        for axis in &query.axes {
            let col = resolve(axis)?;
            select_parts.push(format!("{col} AS {}_{}", axis.dimension, axis.level));
            group_parts.push(col);
        }
        let mut where_parts = Vec::new();
        for slice in &query.slices {
            let col = resolve(&slice.level)?;
            let lit = match &slice.member {
                Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
                v => v.render(),
            };
            where_parts.push(format!("{col} = {lit}"));
        }
        for mname in &query.measures {
            let m = cube.measure(mname)?;
            select_parts.push(format!(
                "{}(f.{}) AS {}",
                m.aggregator.sql(),
                m.column,
                m.name
            ));
        }
        if select_parts.is_empty() {
            return Err(OlapError::Invalid("query selects nothing".into()));
        }
        let mut sql = format!(
            "SELECT {} FROM {} f",
            select_parts.join(", "),
            cube.fact_table
        );
        for j in &joins {
            sql.push(' ');
            sql.push_str(j);
        }
        if !where_parts.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&where_parts.join(" AND "));
        }
        if !group_parts.is_empty() {
            sql.push_str(" GROUP BY ");
            sql.push_str(&group_parts.join(", "));
            sql.push_str(" ORDER BY ");
            sql.push_str(&group_parts.join(", "));
        }
        Ok(sql)
    }

    /// Execute a cube query.
    ///
    /// The generated SQL runs on the vectorized path and the cell set is
    /// assembled straight from the columnar [`odbis_storage::Batch`] —
    /// coordinates and measures are read column-wise without first
    /// pivoting the whole result to rows.
    pub fn query(&self, cube: &CubeDef, query: &CubeQuery) -> Result<CellSet, OlapError> {
        let mut span = odbis_telemetry::child_span("olap", "cube.query");
        span.set_detail(&cube.name);
        let sql = self.generate_sql(cube, query)?;
        let batch = match self.engine.execute_select_batch(&self.db, &sql) {
            Ok((_, batch)) => batch,
            Err(e) => {
                span.fail();
                return Err(OlapError::Execution(e.to_string()));
            }
        };
        span.set_rows(batch.num_rows() as u64);
        let n_axes = query.axes.len();
        let mut cells = Vec::with_capacity(batch.num_rows());
        for i in 0..batch.num_rows() {
            let coords = (0..n_axes).map(|c| batch.value(c, i)).collect();
            let measures = (n_axes..batch.num_columns())
                .map(|c| batch.value(c, i))
                .collect();
            cells.push((coords, measures));
        }
        Ok(CellSet {
            axis_names: query
                .axes
                .iter()
                .map(|a| format!("{}.{}", a.dimension, a.level))
                .collect(),
            measure_names: query.measures.clone(),
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{sales_cube, sales_db};

    #[test]
    fn validation_catches_bad_references() {
        let db = sales_db();
        let cube = sales_cube();
        cube.validate(&db).unwrap();
        let mut bad = cube.clone();
        bad.measures[0].column = "ghost".into();
        assert!(bad.validate(&db).is_err());
        let mut bad = cube.clone();
        bad.dimensions[0].levels.push(LevelDef {
            name: "nope".into(),
            column: "nope".into(),
        });
        assert!(bad.validate(&db).is_err());
    }

    #[test]
    fn single_axis_rollup() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(db);
        let cube = sales_cube();
        let cs = engine
            .query(
                &cube,
                &CubeQuery {
                    axes: vec![LevelRef::new("store", "region")],
                    slices: vec![],
                    measures: vec!["revenue".into(), "units".into()],
                },
            )
            .unwrap();
        assert_eq!(cs.axis_names, vec!["store.region"]);
        // EU: 10+20+40 = 70 ; US: 30
        assert_eq!(
            cs.cell(&["EU".into()]).unwrap(),
            &[Value::Float(70.0), Value::Int(3)]
        );
        assert_eq!(
            cs.cell(&["US".into()]).unwrap(),
            &[Value::Float(30.0), Value::Int(1)]
        );
    }

    #[test]
    fn two_axes_with_degenerate_time() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(db);
        let cube = sales_cube();
        let cs = engine
            .query(
                &cube,
                &CubeQuery {
                    axes: vec![
                        LevelRef::new("time", "year"),
                        LevelRef::new("store", "region"),
                    ],
                    slices: vec![],
                    measures: vec!["revenue".into()],
                },
            )
            .unwrap();
        assert_eq!(
            cs.cell(&[2009.into(), "EU".into()]).unwrap(),
            &[Value::Float(30.0)]
        );
        assert_eq!(
            cs.cell(&[2010.into(), "EU".into()]).unwrap(),
            &[Value::Float(40.0)]
        );
    }

    #[test]
    fn slicing_restricts_cells() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(db);
        let cube = sales_cube();
        let cs = engine
            .query(
                &cube,
                &CubeQuery {
                    axes: vec![LevelRef::new("store", "city")],
                    slices: vec![Slice {
                        level: LevelRef::new("store", "region"),
                        member: "EU".into(),
                    }],
                    measures: vec!["revenue".into()],
                },
            )
            .unwrap();
        // only EU cities appear
        assert!(cs.cell(&["NYC".into()]).is_none());
        assert_eq!(cs.cell(&["Paris".into()]).unwrap(), &[Value::Float(50.0)]);
    }

    #[test]
    fn generated_sql_is_inspectable() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(db);
        let cube = sales_cube();
        let sql = engine
            .generate_sql(
                &cube,
                &CubeQuery {
                    axes: vec![LevelRef::new("store", "region")],
                    slices: vec![],
                    measures: vec!["revenue".into()],
                },
            )
            .unwrap();
        assert!(sql.contains("JOIN dim_store"));
        assert!(sql.contains("GROUP BY"));
        assert!(sql.contains("SUM(f.amount)"));
    }

    #[test]
    fn unknown_names_error() {
        let db = Arc::new(sales_db());
        let engine = CubeEngine::new(db);
        let cube = sales_cube();
        let q = CubeQuery {
            axes: vec![LevelRef::new("ghost", "x")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        assert!(matches!(
            engine.query(&cube, &q),
            Err(OlapError::UnknownDimension(_))
        ));
        let q = CubeQuery {
            axes: vec![LevelRef::new("store", "ghost")],
            slices: vec![],
            measures: vec![],
        };
        assert!(matches!(
            engine.query(&cube, &q),
            Err(OlapError::UnknownLevel(_))
        ));
        let q = CubeQuery {
            axes: vec![LevelRef::new("store", "region")],
            slices: vec![],
            measures: vec!["ghost".into()],
        };
        assert!(matches!(
            engine.query(&cube, &q),
            Err(OlapError::UnknownMeasure(_))
        ));
    }
}
