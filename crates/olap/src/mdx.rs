//! MDX-lite: a small multidimensional query language for the Analysis
//! Service.
//!
//! Grammar:
//!
//! ```text
//! SELECT <measure> [, <measure>]*
//! BY <dim>.<level> [, <dim>.<level>]*
//! FROM <cube>
//! [WHERE <dim>.<level> = <literal> [AND ...]]
//! ```
//!
//! Example: `SELECT revenue, units BY time.year, store.region FROM sales
//! WHERE store.region = 'EU'`.

use odbis_storage::Value;

use crate::cube::{CubeQuery, LevelRef, Slice};
use crate::OlapError;

/// A parsed MDX-lite statement.
#[derive(Debug, Clone, PartialEq)]
pub struct MdxStatement {
    /// Target cube name.
    pub cube: String,
    /// The equivalent engine query.
    pub query: CubeQuery,
}

/// Parse an MDX-lite statement.
pub fn parse_mdx(input: &str) -> Result<MdxStatement, OlapError> {
    let text = input.trim();
    let upper = text.to_ascii_uppercase();
    let err = |m: &str| OlapError::Mdx(format!("{m} in {input:?}"));

    if !upper.starts_with("SELECT ") {
        return Err(err("expected SELECT"));
    }
    let by_pos = upper.find(" BY ").ok_or_else(|| err("expected BY"))?;
    if by_pos < 7 {
        return Err(err("no measures"));
    }
    let from_pos = upper.find(" FROM ").ok_or_else(|| err("expected FROM"))?;
    if from_pos < by_pos {
        return Err(err("FROM must follow BY"));
    }
    let measures: Vec<String> = text[7..by_pos]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if measures.is_empty() {
        return Err(err("no measures"));
    }
    let axes: Result<Vec<LevelRef>, OlapError> = text[by_pos + 4..from_pos]
        .split(',')
        .map(|s| parse_level_ref(s.trim()).ok_or_else(|| err("bad axis (want dim.level)")))
        .collect();
    let axes = axes?;
    let rest = &text[from_pos + 6..];
    let (cube, where_clause) = match rest.to_ascii_uppercase().find(" WHERE ") {
        None => (rest.trim().to_string(), None),
        Some(w) => (
            rest[..w].trim().to_string(),
            Some(rest[w + 7..].trim().to_string()),
        ),
    };
    if cube.is_empty() {
        return Err(err("missing cube name"));
    }
    let mut slices = Vec::new();
    if let Some(w) = where_clause {
        for cond in split_and(&w) {
            let (lhs, rhs) = cond
                .split_once('=')
                .ok_or_else(|| err("WHERE condition must be level = literal"))?;
            let level = parse_level_ref(lhs.trim()).ok_or_else(|| err("bad level in WHERE"))?;
            slices.push(Slice {
                level,
                member: parse_literal(rhs.trim()).ok_or_else(|| err("bad literal in WHERE"))?,
            });
        }
    }
    Ok(MdxStatement {
        cube,
        query: CubeQuery {
            axes,
            slices,
            measures,
        },
    })
}

fn split_and(s: &str) -> Vec<String> {
    // split on AND outside quotes
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\'' {
            in_quote = !in_quote;
            cur.push(chars[i]);
            i += 1;
            continue;
        }
        if !in_quote && i + 3 <= chars.len() {
            let window: String = chars[i..(i + 3).min(chars.len())].iter().collect();
            if window.eq_ignore_ascii_case("and")
                && (i == 0 || chars[i - 1].is_whitespace())
                && chars.get(i + 3).is_none_or(|c| c.is_whitespace())
            {
                parts.push(std::mem::take(&mut cur));
                i += 3;
                continue;
            }
        }
        cur.push(chars[i]);
        i += 1;
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts.into_iter().map(|p| p.trim().to_string()).collect()
}

fn parse_level_ref(s: &str) -> Option<LevelRef> {
    let (dim, level) = s.split_once('.')?;
    let dim = dim.trim();
    let level = level.trim();
    if dim.is_empty() || level.is_empty() || level.contains('.') {
        return None;
    }
    Some(LevelRef::new(dim, level))
}

fn parse_literal(s: &str) -> Option<Value> {
    if let Some(stripped) = s.strip_prefix('\'') {
        let inner = stripped.strip_suffix('\'')?;
        return Some(Value::Text(inner.replace("''", "'")));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Some(Value::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Some(Value::Float(f));
    }
    match s.to_ascii_lowercase().as_str() {
        "true" => Some(Value::Bool(true)),
        "false" => Some(Value::Bool(false)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeEngine;
    use crate::test_fixtures::{sales_cube, sales_db};
    use std::sync::Arc;

    #[test]
    fn parses_full_statement() {
        let stmt = parse_mdx(
            "SELECT revenue, units BY time.year, store.region FROM sales \
             WHERE store.region = 'EU' AND time.year = 2010",
        )
        .unwrap();
        assert_eq!(stmt.cube, "sales");
        assert_eq!(stmt.query.measures, vec!["revenue", "units"]);
        assert_eq!(stmt.query.axes.len(), 2);
        assert_eq!(stmt.query.slices.len(), 2);
        assert_eq!(stmt.query.slices[0].member, Value::from("EU"));
        assert_eq!(stmt.query.slices[1].member, Value::Int(2010));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_mdx("FOO bar").is_err());
        assert!(parse_mdx("SELECT revenue FROM sales").is_err()); // no BY
        assert!(parse_mdx("SELECT revenue BY year FROM sales").is_err()); // bad axis
        assert!(parse_mdx("SELECT BY time.year FROM sales").is_err()); // no measures
        assert!(parse_mdx("SELECT r BY t.y FROM c WHERE t.y LIKE 'x'").is_err());
        assert!(parse_mdx("SELECT r BY t.y FROM ").is_err());
    }

    #[test]
    fn quoted_literals_with_and_inside() {
        let stmt = parse_mdx("SELECT r BY d.l FROM c WHERE d.l = 'rock and roll'").unwrap();
        assert_eq!(stmt.query.slices[0].member, Value::from("rock and roll"));
    }

    #[test]
    fn executes_against_engine() {
        let engine = CubeEngine::new(Arc::new(sales_db()));
        let cube = sales_cube();
        let stmt =
            parse_mdx("SELECT revenue BY store.region FROM sales WHERE time.year = 2010").unwrap();
        let cs = engine.query(&cube, &stmt.query).unwrap();
        assert_eq!(cs.cell(&["EU".into()]).unwrap(), &[Value::Float(40.0)]);
    }
}
