//! Property-based tests for the Integration Service: CSV round-trips,
//! execution-mode equivalence, and conservation of rows.

use std::sync::Arc;

use odbis_etl::{
    parse_csv, to_csv, AggOp, EtlJob, ExecutionMode, Extractor, Frame, JobRunner, LoadMode, Loader,
    Transform,
};
use odbis_storage::{Database, Value};
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = String> {
    prop_oneof![
        (-1_000i64..1_000).prop_map(|i| i.to_string()),
        "[a-zA-Z ,\"]{0,10}",
        Just(String::new()),
    ]
}

proptest! {
    /// CSV writer output always re-parses to the same frame (quoting is
    /// correct for commas, quotes, embedded text).
    #[test]
    fn csv_round_trip(
        rows in prop::collection::vec(prop::collection::vec(arb_cell(), 3), 1..20)
    ) {
        let frame = Frame::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            rows.iter().map(|r| r.iter().map(|c| odbis_etl::infer_value(c)).collect()).collect(),
        ).unwrap();
        let csv = to_csv(&frame);
        let reparsed = parse_csv(&csv).unwrap();
        // rendering collapses types to text; compare rendered forms
        prop_assert_eq!(frame.len(), reparsed.len());
        for (a, b) in frame.rows.iter().zip(&reparsed.rows) {
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.render(), y.render());
            }
        }
    }

    /// Both execution modes load identical data for any random filter
    /// threshold and derivation, and extracted = loaded + filtered.
    #[test]
    fn execution_modes_agree(
        values in prop::collection::vec(-500i64..500, 1..80),
        threshold in -500i64..500,
    ) {
        let mut csv = String::from("id,v\n");
        for (i, v) in values.iter().enumerate() {
            csv.push_str(&format!("{i},{v}\n"));
        }
        let job = EtlJob {
            name: "p".into(),
            extractor: Extractor::Csv(csv),
            transforms: vec![
                Transform::Filter(format!("v > {threshold}")),
                Transform::Derive { column: "w".into(), expression: "v * 2 + 1".into() },
            ],
            loader: Loader { table: "out".into(), mode: LoadMode::Replace },
        };
        let db1 = Arc::new(Database::new());
        let db2 = Arc::new(Database::new());
        let r1 = JobRunner::with_mode(Arc::clone(&db1), ExecutionMode::OperatorAtATime).run(&job).unwrap();
        let r2 = JobRunner::with_mode(Arc::clone(&db2), ExecutionMode::FusedPipeline).run(&job).unwrap();
        prop_assert_eq!(r1.loaded, r2.loaded);
        prop_assert_eq!(db1.scan("out").unwrap(), db2.scan("out").unwrap());
        let expected = values.iter().filter(|&&v| v > threshold).count();
        prop_assert_eq!(r1.loaded, expected);
        prop_assert_eq!(r1.extracted, values.len());
        // derivation applied everywhere
        for row in db1.scan("out").unwrap() {
            let v = row[1].as_i64().unwrap();
            prop_assert_eq!(row[2].clone(), Value::Int(v * 2 + 1));
        }
    }

    /// Aggregation conserves the sum: SUM over groups equals SUM over rows.
    #[test]
    fn aggregation_conserves_sum(rows in prop::collection::vec((0i64..5, -100i64..100), 1..60)) {
        let mut csv = String::from("g,x\n");
        for (g, x) in &rows {
            csv.push_str(&format!("{g},{x}\n"));
        }
        let db = Arc::new(Database::new());
        let runner = JobRunner::new(Arc::clone(&db));
        runner.run(&EtlJob {
            name: "agg".into(),
            extractor: Extractor::Csv(csv),
            transforms: vec![Transform::Aggregate {
                group_by: vec!["g".into()],
                aggs: vec![(AggOp::Sum, "x".into(), "total".into())],
            }],
            loader: Loader { table: "sums".into(), mode: LoadMode::Replace },
        }).unwrap();
        let grand: f64 = db
            .scan("sums").unwrap()
            .iter()
            .map(|r| r[1].as_f64().unwrap_or(0.0))
            .sum();
        let expected: i64 = rows.iter().map(|(_, x)| x).sum();
        prop_assert!((grand - expected as f64).abs() < 1e-9);
    }
}
