//! ETL transforms: declarative operators compiled against the frame header.

use std::collections::{HashMap, HashSet};

use odbis_sql::plan::PlanCol;
use odbis_sql::{planner, BExpr};
use odbis_storage::{DataType, Database, Value};

use crate::frame::Frame;
use crate::EtlError;

/// Aggregation functions for the [`Transform::Aggregate`] operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // self-documenting
pub enum AggOp {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// A declarative transform step — the executable counterparts of the CWM
/// `TransformationStep` operations (FILTER, MAP, JOIN/LOOKUP, AGGREGATE,
/// DEDUPLICATE).
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Keep rows where the SQL expression is true, e.g. `"amount > 0"`.
    Filter(String),
    /// Add (or replace) a column computed from a SQL expression.
    Derive {
        /// New column name.
        column: String,
        /// SQL expression over existing columns.
        expression: String,
    },
    /// Keep only the listed columns, in order.
    Select(Vec<String>),
    /// Rename a column.
    Rename {
        /// Existing name.
        from: String,
        /// New name.
        to: String,
    },
    /// Cast a column to a type, quarantining rows that cannot convert.
    Cast {
        /// Column to cast.
        column: String,
        /// Target type.
        to: DataType,
    },
    /// Enrich rows from a dimension table: match `key_column` against
    /// `lookup_key` in `table`, appending `lookup_value` as `output`.
    /// Unmatched rows get NULL.
    Lookup {
        /// Input column holding the key.
        key_column: String,
        /// Lookup table name.
        table: String,
        /// Key column in the lookup table.
        lookup_key: String,
        /// Value column in the lookup table.
        lookup_value: String,
        /// Name of the appended column.
        output: String,
    },
    /// Drop duplicate rows, keeping the first occurrence, considering the
    /// listed columns (empty = all columns).
    Deduplicate(Vec<String>),
    /// Group by columns and aggregate: output = group cols + one column per
    /// aggregation `(op, column, output_name)`.
    Aggregate {
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregations.
        aggs: Vec<(AggOp, String, String)>,
    },
}

fn frame_schema(frame: &Frame) -> Vec<PlanCol> {
    frame
        .columns
        .iter()
        .map(|c| PlanCol {
            qualifier: None,
            name: c.clone(),
        })
        .collect()
}

/// Compile a SQL scalar expression against a frame header.
pub fn compile_expression(expr: &str, frame: &Frame) -> Result<BExpr, EtlError> {
    let sql = format!("SELECT {expr}");
    let stmt = odbis_sql::parse(&sql).map_err(|e| EtlError::Expression(format!("{expr}: {e}")))?;
    let odbis_sql::ast::Statement::Select(sel) = stmt else {
        return Err(EtlError::Expression(format!("{expr}: not an expression")));
    };
    let odbis_sql::ast::SelectItem::Expr { expr: ast, .. } = &sel.items[0] else {
        return Err(EtlError::Expression(format!("{expr}: not an expression")));
    };
    planner::bind(ast, &frame_schema(frame))
        .map_err(|e| EtlError::Expression(format!("{expr}: {e}")))
}

impl Transform {
    /// Apply the transform to a whole frame. `db` resolves lookup tables.
    /// Rows that fail a `Cast` are moved to `rejects`.
    pub fn apply(
        &self,
        frame: Frame,
        db: &Database,
        rejects: &mut Vec<Vec<Value>>,
    ) -> Result<Frame, EtlError> {
        match self {
            Transform::Filter(expr) => {
                let pred = compile_expression(expr, &frame)?;
                let mut out = Frame::new(frame.columns.clone());
                for row in frame.rows {
                    let keep = pred
                        .eval(&row)
                        .map_err(|e| EtlError::Expression(e.to_string()))?;
                    if odbis_sql::expr::truth(&keep) == Some(true) {
                        out.rows.push(row);
                    }
                }
                Ok(out)
            }
            Transform::Derive { column, expression } => {
                let e = compile_expression(expression, &frame)?;
                let existing = frame.column_index(column);
                let mut out = frame.clone();
                if existing.is_none() {
                    out.columns.push(column.clone());
                }
                for (i, row) in frame.rows.iter().enumerate() {
                    let v = e
                        .eval(row)
                        .map_err(|e| EtlError::Expression(e.to_string()))?;
                    match existing {
                        Some(idx) => out.rows[i][idx] = v,
                        None => out.rows[i].push(v),
                    }
                }
                Ok(out)
            }
            Transform::Select(cols) => {
                let idxs: Result<Vec<usize>, EtlError> = cols
                    .iter()
                    .map(|c| {
                        frame
                            .column_index(c)
                            .ok_or_else(|| EtlError::UnknownColumn(c.clone()))
                    })
                    .collect();
                let idxs = idxs?;
                let rows = frame
                    .rows
                    .into_iter()
                    .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                    .collect();
                Ok(Frame {
                    columns: cols.clone(),
                    rows,
                })
            }
            Transform::Rename { from, to } => {
                let i = frame
                    .column_index(from)
                    .ok_or_else(|| EtlError::UnknownColumn(from.clone()))?;
                let mut out = frame;
                out.columns[i] = to.clone();
                Ok(out)
            }
            Transform::Cast { column, to } => {
                let i = frame
                    .column_index(column)
                    .ok_or_else(|| EtlError::UnknownColumn(column.clone()))?;
                let mut out = Frame::new(frame.columns.clone());
                for mut row in frame.rows {
                    match odbis_sql::cast_value(&row[i], *to) {
                        Ok(v) => {
                            row[i] = v;
                            out.rows.push(row);
                        }
                        Err(_) => rejects.push(row),
                    }
                }
                Ok(out)
            }
            Transform::Lookup {
                key_column,
                table,
                lookup_key,
                lookup_value,
                output,
            } => {
                let ki = frame
                    .column_index(key_column)
                    .ok_or_else(|| EtlError::UnknownColumn(key_column.clone()))?;
                // build the lookup map once
                let map: HashMap<Value, Value> = db
                    .read_table(table, |t| {
                        let lk = t.schema().index_of(lookup_key);
                        let lv = t.schema().index_of(lookup_value);
                        match (lk, lv) {
                            (Some(lk), Some(lv)) => Ok(t
                                .scan()
                                .map(|(_, r)| (r[lk].clone(), r[lv].clone()))
                                .collect()),
                            _ => Err(EtlError::UnknownColumn(format!(
                                "{lookup_key}/{lookup_value} in {table}"
                            ))),
                        }
                    })
                    .map_err(|e| EtlError::Storage(e.to_string()))??;
                let mut out = frame.clone();
                out.columns.push(output.clone());
                for (i, row) in frame.rows.iter().enumerate() {
                    let v = map.get(&row[ki]).cloned().unwrap_or(Value::Null);
                    out.rows[i].push(v);
                }
                Ok(out)
            }
            Transform::Deduplicate(cols) => {
                let idxs: Vec<usize> = if cols.is_empty() {
                    (0..frame.columns.len()).collect()
                } else {
                    cols.iter()
                        .map(|c| {
                            frame
                                .column_index(c)
                                .ok_or_else(|| EtlError::UnknownColumn(c.clone()))
                        })
                        .collect::<Result<_, _>>()?
                };
                let mut seen = HashSet::new();
                let mut out = Frame::new(frame.columns.clone());
                for row in frame.rows {
                    let key: Vec<Value> = idxs.iter().map(|&i| row[i].clone()).collect();
                    if seen.insert(key) {
                        out.rows.push(row);
                    }
                }
                Ok(out)
            }
            Transform::Aggregate { group_by, aggs } => {
                let gidx: Vec<usize> = group_by
                    .iter()
                    .map(|c| {
                        frame
                            .column_index(c)
                            .ok_or_else(|| EtlError::UnknownColumn(c.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let aidx: Vec<(AggOp, usize, String)> = aggs
                    .iter()
                    .map(|(op, c, name)| {
                        frame
                            .column_index(c)
                            .map(|i| (*op, i, name.clone()))
                            .ok_or_else(|| EtlError::UnknownColumn(c.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                // per-aggregation accumulator: (count, sum, min, max)
                type Acc = (i64, f64, Option<Value>, Option<Value>);
                let mut order: Vec<Vec<Value>> = Vec::new();
                let mut state: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
                for row in &frame.rows {
                    let key: Vec<Value> = gidx.iter().map(|&i| row[i].clone()).collect();
                    let entry = state.entry(key.clone()).or_insert_with(|| {
                        order.push(key.clone());
                        vec![(0, 0.0, None, None); aidx.len()]
                    });
                    for (slot, (_, ci, _)) in entry.iter_mut().zip(&aidx) {
                        let v = &row[*ci];
                        if v.is_null() {
                            continue;
                        }
                        slot.0 += 1;
                        slot.1 += v.as_f64().unwrap_or(0.0);
                        if slot.2.as_ref().is_none_or(|m| v < m) {
                            slot.2 = Some(v.clone());
                        }
                        if slot.3.as_ref().is_none_or(|m| v > m) {
                            slot.3 = Some(v.clone());
                        }
                    }
                }
                let mut columns = group_by.clone();
                columns.extend(aidx.iter().map(|(_, _, n)| n.clone()));
                let mut rows = Vec::with_capacity(order.len());
                for key in order {
                    let slots = &state[&key];
                    let mut row = key.clone();
                    for ((op, _, _), slot) in aidx.iter().zip(slots) {
                        row.push(match op {
                            AggOp::Count => Value::Int(slot.0),
                            AggOp::Sum => {
                                if slot.0 == 0 {
                                    Value::Null
                                } else {
                                    Value::Float(slot.1)
                                }
                            }
                            AggOp::Avg => {
                                if slot.0 == 0 {
                                    Value::Null
                                } else {
                                    Value::Float(slot.1 / slot.0 as f64)
                                }
                            }
                            AggOp::Min => slot.2.clone().unwrap_or(Value::Null),
                            AggOp::Max => slot.3.clone().unwrap_or(Value::Null),
                        });
                    }
                    rows.push(row);
                }
                Ok(Frame { columns, rows })
            }
        }
    }

    /// Whether the transform is row-local (fusable into a per-row pipeline).
    /// Aggregate and Deduplicate need the whole frame.
    pub fn is_row_local(&self) -> bool {
        !matches!(
            self,
            Transform::Aggregate { .. } | Transform::Deduplicate(_)
        )
    }
}

// ---------------------------------------------------------------------------
// Fused (compiled) row-local execution
// ---------------------------------------------------------------------------

/// Result of pushing one row through a compiled operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Row continues down the pipeline.
    Keep,
    /// Row was filtered out.
    Drop,
    /// Row must be quarantined.
    Reject,
}

/// A row-local transform compiled against a concrete header: expressions
/// bound, column ordinals resolved, lookup maps materialized. Built once
/// per job run; applied per row with no allocation beyond the row itself.
pub enum CompiledOp {
    /// Compiled filter predicate.
    Filter(BExpr),
    /// Compiled derivation (`None` target = append).
    Derive {
        /// Existing column position, or append when `None`.
        target: Option<usize>,
        /// Bound expression.
        expr: BExpr,
    },
    /// Column selection by ordinal.
    Select(Vec<usize>),
    /// Cast one column.
    Cast {
        /// Column position.
        index: usize,
        /// Target type.
        to: DataType,
    },
    /// Append a looked-up value.
    Lookup {
        /// Key column position.
        key: usize,
        /// Materialized key→value map.
        map: HashMap<Value, Value>,
    },
}

impl CompiledOp {
    /// Apply to one row in place.
    pub fn apply_row(&self, row: &mut Vec<Value>) -> Result<RowOutcome, EtlError> {
        match self {
            CompiledOp::Filter(pred) => {
                let v = pred
                    .eval(row)
                    .map_err(|e| EtlError::Expression(e.to_string()))?;
                if odbis_sql::expr::truth(&v) == Some(true) {
                    Ok(RowOutcome::Keep)
                } else {
                    Ok(RowOutcome::Drop)
                }
            }
            CompiledOp::Derive { target, expr } => {
                let v = expr
                    .eval(row)
                    .map_err(|e| EtlError::Expression(e.to_string()))?;
                match target {
                    Some(i) => row[*i] = v,
                    None => row.push(v),
                }
                Ok(RowOutcome::Keep)
            }
            CompiledOp::Select(idxs) => {
                let new_row: Vec<Value> = idxs.iter().map(|&i| row[i].clone()).collect();
                *row = new_row;
                Ok(RowOutcome::Keep)
            }
            CompiledOp::Cast { index, to } => match odbis_sql::cast_value(&row[*index], *to) {
                Ok(v) => {
                    row[*index] = v;
                    Ok(RowOutcome::Keep)
                }
                Err(_) => Ok(RowOutcome::Reject),
            },
            CompiledOp::Lookup { key, map } => {
                row.push(map.get(&row[*key]).cloned().unwrap_or(Value::Null));
                Ok(RowOutcome::Keep)
            }
        }
    }
}

/// Compile a run of row-local transforms against an input header. Returns
/// the compiled chain and the output header.
pub fn compile_segment(
    segment: &[Transform],
    mut columns: Vec<String>,
    db: &Database,
) -> Result<(Vec<CompiledOp>, Vec<String>), EtlError> {
    let mut ops = Vec::with_capacity(segment.len());
    for t in segment {
        let header = Frame::new(columns.clone());
        match t {
            Transform::Filter(expr) => {
                ops.push(CompiledOp::Filter(compile_expression(expr, &header)?));
            }
            Transform::Derive { column, expression } => {
                let expr = compile_expression(expression, &header)?;
                let target = header.column_index(column);
                if target.is_none() {
                    columns.push(column.clone());
                }
                ops.push(CompiledOp::Derive { target, expr });
            }
            Transform::Select(cols) => {
                let idxs: Vec<usize> = cols
                    .iter()
                    .map(|c| {
                        header
                            .column_index(c)
                            .ok_or_else(|| EtlError::UnknownColumn(c.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                columns = cols.clone();
                ops.push(CompiledOp::Select(idxs));
            }
            Transform::Rename { from, to } => {
                // pure header change: no row work at all
                let i = header
                    .column_index(from)
                    .ok_or_else(|| EtlError::UnknownColumn(from.clone()))?;
                columns[i] = to.clone();
            }
            Transform::Cast { column, to } => {
                let index = header
                    .column_index(column)
                    .ok_or_else(|| EtlError::UnknownColumn(column.clone()))?;
                ops.push(CompiledOp::Cast { index, to: *to });
            }
            Transform::Lookup {
                key_column,
                table,
                lookup_key,
                lookup_value,
                output,
            } => {
                let key = header
                    .column_index(key_column)
                    .ok_or_else(|| EtlError::UnknownColumn(key_column.clone()))?;
                let map: HashMap<Value, Value> = db
                    .read_table(table, |t| {
                        let lk = t.schema().index_of(lookup_key);
                        let lv = t.schema().index_of(lookup_value);
                        match (lk, lv) {
                            (Some(lk), Some(lv)) => Ok(t
                                .scan()
                                .map(|(_, r)| (r[lk].clone(), r[lv].clone()))
                                .collect()),
                            _ => Err(EtlError::UnknownColumn(format!(
                                "{lookup_key}/{lookup_value} in {table}"
                            ))),
                        }
                    })
                    .map_err(|e| EtlError::Storage(e.to_string()))??;
                columns.push(output.clone());
                ops.push(CompiledOp::Lookup { key, map });
            }
            Transform::Deduplicate(_) | Transform::Aggregate { .. } => {
                return Err(EtlError::Expression(
                    "blocking operator in a fused segment".into(),
                ));
            }
        }
    }
    Ok((ops, columns))
}

#[cfg(test)]
mod fused_tests {
    use super::*;
    use crate::frame::parse_csv;

    #[test]
    fn compiled_segment_matches_operator_at_a_time() {
        let db = Database::new();
        odbis_sql::Engine::new()
            .execute_script(
                &db,
                "CREATE TABLE regions (code TEXT PRIMARY KEY, label TEXT);
                 INSERT INTO regions VALUES ('EU', 'Europe'), ('US', 'United States');",
            )
            .unwrap();
        let segment = vec![
            Transform::Filter("amount > 0".into()),
            Transform::Derive {
                column: "double_amount".into(),
                expression: "amount * 2".into(),
            },
            Transform::Rename {
                from: "region".into(),
                to: "zone".into(),
            },
            Transform::Lookup {
                key_column: "zone".into(),
                table: "regions".into(),
                lookup_key: "code".into(),
                lookup_value: "label".into(),
                output: "zone_label".into(),
            },
            Transform::Select(vec![
                "id".into(),
                "zone_label".into(),
                "double_amount".into(),
            ]),
        ];
        let frame = parse_csv("id,region,amount\n1,EU,10\n2,US,-5\n3,XX,7\n").unwrap();
        // reference: operator at a time
        let mut r1 = Vec::new();
        let mut reference = frame.clone();
        for t in &segment {
            reference = t.apply(reference, &db, &mut r1).unwrap();
        }
        // compiled
        let (ops, columns) = compile_segment(&segment, frame.columns.clone(), &db).unwrap();
        let mut fused = Frame::new(columns);
        'rows: for mut row in frame.rows {
            for op in &ops {
                match op.apply_row(&mut row).unwrap() {
                    RowOutcome::Keep => {}
                    RowOutcome::Drop | RowOutcome::Reject => continue 'rows,
                }
            }
            fused.rows.push(row);
        }
        assert_eq!(fused, reference);
    }

    #[test]
    fn compiled_cast_rejects() {
        let db = Database::new();
        let segment = vec![Transform::Cast {
            column: "v".into(),
            to: DataType::Int,
        }];
        let frame = parse_csv("v\n12\noops\n").unwrap();
        let (ops, _) = compile_segment(&segment, frame.columns.clone(), &db).unwrap();
        let mut kept = 0;
        let mut rejected = 0;
        for mut row in frame.rows {
            match ops[0].apply_row(&mut row).unwrap() {
                RowOutcome::Keep => kept += 1,
                RowOutcome::Reject => rejected += 1,
                RowOutcome::Drop => unreachable!(),
            }
        }
        assert_eq!((kept, rejected), (1, 1));
    }

    #[test]
    fn blocking_ops_refused_in_segment() {
        let db = Database::new();
        assert!(compile_segment(&[Transform::Deduplicate(vec![])], vec!["a".into()], &db).is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::parse_csv;

    fn orders() -> Frame {
        parse_csv(
            "id,region,amount\n\
             1,EU,100\n\
             2,US,250\n\
             3,EU,50\n\
             4,EU,100\n",
        )
        .unwrap()
    }

    fn apply(t: Transform, f: Frame) -> Frame {
        let db = Database::new();
        let mut rejects = Vec::new();
        t.apply(f, &db, &mut rejects).unwrap()
    }

    #[test]
    fn filter_and_derive() {
        let f = apply(Transform::Filter("amount >= 100".into()), orders());
        assert_eq!(f.len(), 3);
        let f = apply(
            Transform::Derive {
                column: "vat".into(),
                expression: "amount * 0.2".into(),
            },
            f,
        );
        assert_eq!(f.columns.last().unwrap(), "vat");
        assert_eq!(f.rows[0][3], Value::Float(20.0));
        // derive can replace in place
        let f = apply(
            Transform::Derive {
                column: "vat".into(),
                expression: "vat * 2".into(),
            },
            f,
        );
        assert_eq!(f.rows[0][3], Value::Float(40.0));
    }

    #[test]
    fn select_rename() {
        let f = apply(
            Transform::Select(vec!["region".into(), "amount".into()]),
            orders(),
        );
        assert_eq!(f.columns, vec!["region", "amount"]);
        let f = apply(
            Transform::Rename {
                from: "region".into(),
                to: "zone".into(),
            },
            f,
        );
        assert_eq!(f.columns[0], "zone");
    }

    #[test]
    fn cast_quarantines_bad_rows() {
        let f = parse_csv("id,qty\n1,5\n2,oops\n3,7\n").unwrap();
        let db = Database::new();
        let mut rejects = Vec::new();
        let out = Transform::Cast {
            column: "qty".into(),
            to: DataType::Int,
        }
        .apply(f, &db, &mut rejects)
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(rejects.len(), 1);
        assert_eq!(rejects[0][0], Value::Int(2));
    }

    #[test]
    fn lookup_enriches_with_nulls_for_misses() {
        let db = Database::new();
        odbis_sql::Engine::new()
            .execute_script(
                &db,
                "CREATE TABLE regions (code TEXT PRIMARY KEY, label TEXT);
                 INSERT INTO regions VALUES ('EU', 'Europe'), ('US', 'United States');",
            )
            .unwrap();
        let f = parse_csv("id,region\n1,EU\n2,XX\n").unwrap();
        let mut rejects = Vec::new();
        let out = Transform::Lookup {
            key_column: "region".into(),
            table: "regions".into(),
            lookup_key: "code".into(),
            lookup_value: "label".into(),
            output: "region_label".into(),
        }
        .apply(f, &db, &mut rejects)
        .unwrap();
        assert_eq!(out.rows[0][2], Value::from("Europe"));
        assert_eq!(out.rows[1][2], Value::Null);
    }

    #[test]
    fn deduplicate_full_and_by_key() {
        let f = apply(Transform::Deduplicate(vec![]), orders());
        assert_eq!(f.len(), 4); // all rows distinct (ids differ)
        let f = apply(Transform::Deduplicate(vec!["region".into()]), orders());
        assert_eq!(f.len(), 2); // EU, US
    }

    #[test]
    fn aggregate_group_by() {
        let f = apply(
            Transform::Aggregate {
                group_by: vec!["region".into()],
                aggs: vec![
                    (AggOp::Count, "id".into(), "n".into()),
                    (AggOp::Sum, "amount".into(), "total".into()),
                    (AggOp::Max, "amount".into(), "biggest".into()),
                ],
            },
            orders(),
        );
        assert_eq!(f.columns, vec!["region", "n", "total", "biggest"]);
        assert_eq!(
            f.rows[0],
            vec![
                "EU".into(),
                Value::Int(3),
                Value::Float(250.0),
                Value::Int(100)
            ]
        );
        assert_eq!(f.rows[1][1], Value::Int(1));
    }

    #[test]
    fn expression_errors_are_reported() {
        let db = Database::new();
        let mut r = Vec::new();
        assert!(matches!(
            Transform::Filter("nonexistent > 1".into()).apply(orders(), &db, &mut r),
            Err(EtlError::Expression(_))
        ));
        assert!(matches!(
            Transform::Select(vec!["ghost".into()]).apply(orders(), &db, &mut r),
            Err(EtlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn row_local_classification() {
        assert!(Transform::Filter("1".into()).is_row_local());
        assert!(!Transform::Deduplicate(vec![]).is_row_local());
        assert!(!Transform::Aggregate {
            group_by: vec![],
            aggs: vec![]
        }
        .is_row_local());
    }
}
