//! Job scheduling ("jobs scheduling, etc." — ODBIS §3.1).
//!
//! The scheduler runs on a **logical clock** (ticks) so schedules are
//! deterministic in tests and benchmarks; the platform layer maps ticks to
//! wall-clock time.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::job::{EtlJob, JobReport, JobRunner};
use crate::EtlError;

/// When a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Every `n` ticks (first run at tick `n`).
    Every(u64),
    /// Exactly once, at the given tick.
    Once(u64),
}

/// Execution record kept per run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Tick the run happened at.
    pub tick: u64,
    /// The run's outcome (`Err` text for failures).
    pub outcome: Result<JobReport, String>,
}

struct Entry {
    job: EtlJob,
    schedule: Schedule,
    enabled: bool,
    history: Vec<RunRecord>,
}

/// The Integration Service's job scheduler.
pub struct JobScheduler {
    runner: Arc<JobRunner>,
    inner: Mutex<SchedInner>,
}

struct SchedInner {
    entries: BTreeMap<String, Entry>,
    tick: u64,
}

impl JobScheduler {
    /// Scheduler dispatching to `runner`.
    pub fn new(runner: Arc<JobRunner>) -> Self {
        JobScheduler {
            runner,
            inner: Mutex::new(SchedInner {
                entries: BTreeMap::new(),
                tick: 0,
            }),
        }
    }

    /// Register a job with a schedule. Replaces any same-named entry.
    pub fn schedule(&self, job: EtlJob, schedule: Schedule) {
        let mut inner = self.inner.lock();
        inner.entries.insert(
            job.name.clone(),
            Entry {
                job,
                schedule,
                enabled: true,
                history: Vec::new(),
            },
        );
    }

    /// Enable/disable a job without losing its history.
    pub fn set_enabled(&self, name: &str, enabled: bool) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(name) {
            Some(e) => {
                e.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Advance the logical clock one tick, running every due job. Returns
    /// the names of jobs that ran.
    pub fn tick(&self) -> Vec<String> {
        // decide what is due under the lock, run outside it
        let (tick, due): (u64, Vec<EtlJob>) = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let due = inner
                .entries
                .values()
                .filter(|e| {
                    e.enabled
                        && match e.schedule {
                            Schedule::Every(n) => n > 0 && tick.is_multiple_of(n),
                            Schedule::Once(at) => tick == at,
                        }
                })
                .map(|e| e.job.clone())
                .collect();
            (tick, due)
        };
        let mut ran = Vec::new();
        for job in due {
            let outcome = self.runner.run(&job).map_err(|e: EtlError| e.to_string());
            let mut inner = self.inner.lock();
            if let Some(e) = inner.entries.get_mut(&job.name) {
                e.history.push(RunRecord { tick, outcome });
            }
            ran.push(job.name);
        }
        ran
    }

    /// Run a job immediately, regardless of its schedule.
    pub fn run_now(&self, name: &str) -> Result<JobReport, EtlError> {
        let job = {
            let inner = self.inner.lock();
            inner
                .entries
                .get(name)
                .map(|e| e.job.clone())
                .ok_or_else(|| EtlError::Storage(format!("job {name} not scheduled")))?
        };
        let report = self.runner.run(&job);
        let tick = self.inner.lock().tick;
        let record = RunRecord {
            tick,
            outcome: report.clone().map_err(|e| e.to_string()),
        };
        if let Some(e) = self.inner.lock().entries.get_mut(name) {
            e.history.push(record);
        }
        report
    }

    /// Run history of a job.
    pub fn history(&self, name: &str) -> Vec<RunRecord> {
        self.inner
            .lock()
            .entries
            .get(name)
            .map(|e| e.history.clone())
            .unwrap_or_default()
    }

    /// Current logical tick.
    pub fn current_tick(&self) -> u64 {
        self.inner.lock().tick
    }

    /// Names of scheduled jobs.
    pub fn job_names(&self) -> Vec<String> {
        self.inner.lock().entries.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Extractor, LoadMode, Loader};
    use odbis_storage::Database;

    fn job(name: &str, target: &str) -> EtlJob {
        EtlJob {
            name: name.into(),
            extractor: Extractor::Csv("x\n1\n".into()),
            transforms: vec![],
            loader: Loader {
                table: target.into(),
                mode: LoadMode::Append,
            },
        }
    }

    fn scheduler() -> (Arc<Database>, JobScheduler) {
        let db = Arc::new(Database::new());
        let runner = Arc::new(JobRunner::new(Arc::clone(&db)));
        (db, JobScheduler::new(runner))
    }

    #[test]
    fn every_n_ticks() {
        let (db, sched) = scheduler();
        sched.schedule(job("hourly", "t_hourly"), Schedule::Every(3));
        for _ in 0..9 {
            sched.tick();
        }
        // runs at ticks 3, 6, 9
        assert_eq!(db.row_count("t_hourly").unwrap(), 3);
        assert_eq!(sched.history("hourly").len(), 3);
        assert_eq!(sched.current_tick(), 9);
    }

    #[test]
    fn once_runs_exactly_once() {
        let (db, sched) = scheduler();
        sched.schedule(job("oneshot", "t_once"), Schedule::Once(2));
        for _ in 0..5 {
            sched.tick();
        }
        assert_eq!(db.row_count("t_once").unwrap(), 1);
    }

    #[test]
    fn disabled_jobs_do_not_run() {
        let (db, sched) = scheduler();
        sched.schedule(job("j", "t"), Schedule::Every(1));
        sched.tick();
        assert!(sched.set_enabled("j", false));
        sched.tick();
        sched.tick();
        assert_eq!(db.row_count("t").unwrap(), 1);
        assert!(sched.set_enabled("j", true));
        sched.tick();
        assert_eq!(db.row_count("t").unwrap(), 2);
        assert!(!sched.set_enabled("ghost", true));
    }

    #[test]
    fn run_now_bypasses_schedule() {
        let (db, sched) = scheduler();
        sched.schedule(job("manual", "t_m"), Schedule::Once(999));
        let report = sched.run_now("manual").unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(db.row_count("t_m").unwrap(), 1);
        assert!(sched.run_now("ghost").is_err());
    }

    #[test]
    fn failures_recorded_in_history() {
        let (_db, sched) = scheduler();
        let bad = EtlJob {
            name: "bad".into(),
            extractor: Extractor::Table("missing_table".into()),
            transforms: vec![],
            loader: Loader {
                table: "out".into(),
                mode: LoadMode::Append,
            },
        };
        sched.schedule(bad, Schedule::Every(1));
        sched.tick();
        let h = sched.history("bad");
        assert_eq!(h.len(), 1);
        assert!(h[0].outcome.is_err());
    }
}
