//! ETL jobs: extract → transform → load, with two execution modes.

use std::sync::Arc;
use std::time::Instant;

use odbis_sql::Engine;
use odbis_storage::{Column, Database, Schema, Value};

use crate::frame::{parse_csv, Frame};
use crate::transform::Transform;
use crate::EtlError;

/// Where a job reads from.
#[derive(Debug, Clone, PartialEq)]
pub enum Extractor {
    /// Full scan of a table.
    Table(String),
    /// A SQL query.
    Query(String),
    /// Inline CSV text (files, uploads).
    Csv(String),
    /// Inline rows (programmatic sources).
    Inline(Frame),
}

/// How loaded rows land in the target table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Append to existing rows.
    Append,
    /// Truncate the target first.
    Replace,
}

/// Where a job writes to.
#[derive(Debug, Clone, PartialEq)]
pub struct Loader {
    /// Target table (created from the frame header if missing).
    pub table: String,
    /// Append or replace.
    pub mode: LoadMode,
}

/// How the transform chain executes (ablation A4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Materialize the full frame after every operator.
    OperatorAtATime,
    /// Fuse consecutive row-local operators into one pass per row;
    /// blocking operators (aggregate, deduplicate) cut the pipeline.
    #[default]
    FusedPipeline,
}

/// A named integration job — the Integration Service's unit of work
/// ("an ad-hoc way to define data integration jobs", ODBIS §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct EtlJob {
    /// Job name.
    pub name: String,
    /// Source.
    pub extractor: Extractor,
    /// Transform chain, applied in order.
    pub transforms: Vec<Transform>,
    /// Target.
    pub loader: Loader,
}

/// Outcome of one job run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job name.
    pub job: String,
    /// Rows extracted from the source.
    pub extracted: usize,
    /// Rows loaded into the target.
    pub loaded: usize,
    /// Rows quarantined (failed casts or constraint violations).
    pub rejected: usize,
    /// Wall-clock duration of the run.
    pub duration: std::time::Duration,
}

/// Runs ETL jobs against a database.
pub struct JobRunner {
    db: Arc<Database>,
    engine: Engine,
    /// Execution mode (fused by default).
    pub mode: ExecutionMode,
}

impl JobRunner {
    /// Runner over a database.
    pub fn new(db: Arc<Database>) -> Self {
        JobRunner {
            db,
            engine: Engine::new(),
            mode: ExecutionMode::default(),
        }
    }

    /// Runner with an explicit execution mode.
    pub fn with_mode(db: Arc<Database>, mode: ExecutionMode) -> Self {
        JobRunner {
            db,
            engine: Engine::new(),
            mode,
        }
    }

    /// Execute a job end to end.
    pub fn run(&self, job: &EtlJob) -> Result<JobReport, EtlError> {
        let mut span = odbis_telemetry::child_span("etl", "job.run");
        span.set_detail(&job.name);
        let report = self.run_inner(job);
        match &report {
            Ok(r) => span.set_rows((r.extracted + r.loaded) as u64),
            Err(_) => span.fail(),
        }
        report
    }

    fn run_inner(&self, job: &EtlJob) -> Result<JobReport, EtlError> {
        let start = Instant::now();
        let frame = self.extract(&job.extractor)?;
        let extracted = frame.len();
        let mut rejects: Vec<Vec<Value>> = Vec::new();
        let frame = match self.mode {
            ExecutionMode::OperatorAtATime => {
                let mut f = frame;
                for t in &job.transforms {
                    f = t.apply(f, &self.db, &mut rejects)?;
                }
                f
            }
            ExecutionMode::FusedPipeline => self.run_fused(frame, &job.transforms, &mut rejects)?,
        };
        let loaded = self.load(&job.loader, &frame, &mut rejects)?;
        Ok(JobReport {
            job: job.name.clone(),
            extracted,
            loaded,
            rejected: rejects.len(),
            duration: start.elapsed(),
        })
    }

    fn extract(&self, extractor: &Extractor) -> Result<Frame, EtlError> {
        match extractor {
            Extractor::Table(name) => {
                let schema = self
                    .db
                    .table_schema(name)
                    .map_err(|e| EtlError::Storage(e.to_string()))?;
                let batch = self
                    .db
                    .scan_batch(name)
                    .map_err(|e| EtlError::Storage(e.to_string()))?;
                Frame::from_batch(
                    schema.columns().iter().map(|c| c.name.clone()).collect(),
                    &batch,
                )
            }
            Extractor::Query(sql) => {
                let r = self
                    .engine
                    .execute(&self.db, sql)
                    .map_err(|e| EtlError::Expression(e.to_string()))?;
                Ok(Frame {
                    columns: r.columns,
                    rows: r.rows,
                })
            }
            Extractor::Csv(text) => parse_csv(text),
            Extractor::Inline(frame) => Ok(frame.clone()),
        }
    }

    /// Fused execution: split the chain at blocking operators; within each
    /// segment of row-local operators, each row flows through the whole
    /// segment before the next row is touched (no intermediate frames).
    fn run_fused(
        &self,
        frame: Frame,
        transforms: &[Transform],
        rejects: &mut Vec<Vec<Value>>,
    ) -> Result<Frame, EtlError> {
        let mut current = frame;
        let mut i = 0;
        while i < transforms.len() {
            if transforms[i].is_row_local() {
                // collect the maximal run of row-local operators
                let mut j = i;
                while j < transforms.len() && transforms[j].is_row_local() {
                    j += 1;
                }
                current = self.fuse_segment(current, &transforms[i..j], rejects)?;
                i = j;
            } else {
                current = transforms[i].apply(current, &self.db, rejects)?;
                i += 1;
            }
        }
        Ok(current)
    }

    /// Execute a run of row-local transforms one row at a time.
    ///
    /// Each operator is compiled *once* against the evolving header
    /// (expressions bound, column positions and lookup maps resolved);
    /// every row then streams through the compiled chain without any
    /// intermediate frame materialization — the whole point of fusion.
    fn fuse_segment(
        &self,
        frame: Frame,
        segment: &[Transform],
        rejects: &mut Vec<Vec<Value>>,
    ) -> Result<Frame, EtlError> {
        let (ops, out_columns) =
            crate::transform::compile_segment(segment, frame.columns.clone(), &self.db)?;
        let mut out = Frame::new(out_columns);
        'rows: for mut row in frame.rows {
            for op in &ops {
                match op.apply_row(&mut row)? {
                    crate::transform::RowOutcome::Keep => {}
                    crate::transform::RowOutcome::Drop => continue 'rows,
                    crate::transform::RowOutcome::Reject => {
                        rejects.push(row);
                        continue 'rows;
                    }
                }
            }
            out.rows.push(row);
        }
        Ok(out)
    }

    fn load(
        &self,
        loader: &Loader,
        frame: &Frame,
        rejects: &mut Vec<Vec<Value>>,
    ) -> Result<usize, EtlError> {
        if !self.db.has_table(&loader.table) {
            // derive the target schema from the frame: type from the first
            // non-null value per column, defaulting to TEXT
            let cols: Vec<Column> = frame
                .columns
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let ty = frame
                        .rows
                        .iter()
                        .find_map(|r| r[i].data_type())
                        .unwrap_or(odbis_storage::DataType::Text);
                    Column::new(name.clone(), ty)
                })
                .collect();
            let schema = Schema::new(cols).map_err(|e| EtlError::Storage(e.to_string()))?;
            self.db
                .create_table(&loader.table, schema)
                .map_err(|e| EtlError::Storage(e.to_string()))?;
        }
        if loader.mode == LoadMode::Replace {
            self.db
                .write_table(&loader.table, |t| t.truncate())
                .map_err(|e| EtlError::Storage(e.to_string()))?;
        }
        let mut loaded = 0usize;
        self.db
            .write_table(&loader.table, |t| {
                for row in &frame.rows {
                    match t.insert_row(row) {
                        Ok(_) => loaded += 1,
                        Err(_) => rejects.push(row.clone()),
                    }
                }
            })
            .map_err(|e| EtlError::Storage(e.to_string()))?;
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::AggOp;

    fn sample_job() -> EtlJob {
        EtlJob {
            name: "load-orders".into(),
            extractor: Extractor::Csv(
                "id,region,amount\n\
                 1,EU,100\n\
                 2,US,250\n\
                 3,EU,-5\n\
                 4,EU,70\n"
                    .into(),
            ),
            transforms: vec![
                Transform::Filter("amount > 0".into()),
                Transform::Derive {
                    column: "amount_eur".into(),
                    expression: "amount * 0.9".into(),
                },
            ],
            loader: Loader {
                table: "clean_orders".into(),
                mode: LoadMode::Replace,
            },
        }
    }

    #[test]
    fn job_runs_end_to_end() {
        let db = Arc::new(Database::new());
        let runner = JobRunner::new(Arc::clone(&db));
        let report = runner.run(&sample_job()).unwrap();
        assert_eq!(report.extracted, 4);
        assert_eq!(report.loaded, 3);
        assert_eq!(report.rejected, 0);
        assert_eq!(db.row_count("clean_orders").unwrap(), 3);
        let schema = db.table_schema("clean_orders").unwrap();
        assert!(schema.column("amount_eur").is_some());
    }

    #[test]
    fn both_execution_modes_agree() {
        let db1 = Arc::new(Database::new());
        let db2 = Arc::new(Database::new());
        let mut job = sample_job();
        job.transforms.push(Transform::Aggregate {
            group_by: vec!["region".into()],
            aggs: vec![(AggOp::Sum, "amount_eur".into(), "total".into())],
        });
        let r1 = JobRunner::with_mode(Arc::clone(&db1), ExecutionMode::OperatorAtATime)
            .run(&job)
            .unwrap();
        let r2 = JobRunner::with_mode(Arc::clone(&db2), ExecutionMode::FusedPipeline)
            .run(&job)
            .unwrap();
        assert_eq!(r1.loaded, r2.loaded);
        assert_eq!(
            db1.scan("clean_orders").unwrap(),
            db2.scan("clean_orders").unwrap()
        );
    }

    #[test]
    fn replace_vs_append() {
        let db = Arc::new(Database::new());
        let runner = JobRunner::new(Arc::clone(&db));
        runner.run(&sample_job()).unwrap();
        let mut job = sample_job();
        job.loader.mode = LoadMode::Append;
        runner.run(&job).unwrap();
        assert_eq!(db.row_count("clean_orders").unwrap(), 6);
        runner.run(&sample_job()).unwrap(); // replace
        assert_eq!(db.row_count("clean_orders").unwrap(), 3);
    }

    #[test]
    fn table_and_query_extractors() {
        let db = Arc::new(Database::new());
        Engine::new()
            .execute_script(
                &db,
                "CREATE TABLE src (a INT, b INT);
                 INSERT INTO src VALUES (1, 10), (2, 20);",
            )
            .unwrap();
        let runner = JobRunner::new(Arc::clone(&db));
        let job = EtlJob {
            name: "t".into(),
            extractor: Extractor::Table("src".into()),
            transforms: vec![],
            loader: Loader {
                table: "dst1".into(),
                mode: LoadMode::Append,
            },
        };
        assert_eq!(runner.run(&job).unwrap().loaded, 2);
        let job = EtlJob {
            name: "q".into(),
            extractor: Extractor::Query("SELECT a, b * 2 AS b2 FROM src WHERE a > 1".into()),
            transforms: vec![],
            loader: Loader {
                table: "dst2".into(),
                mode: LoadMode::Append,
            },
        };
        assert_eq!(runner.run(&job).unwrap().loaded, 1);
        assert_eq!(
            db.scan("dst2").unwrap()[0],
            vec![Value::Int(2), Value::Int(40)]
        );
    }

    #[test]
    fn constraint_violations_are_quarantined_on_load() {
        let db = Arc::new(Database::new());
        Engine::new()
            .execute(&db, "CREATE TABLE uniq (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        let runner = JobRunner::new(Arc::clone(&db));
        let job = EtlJob {
            name: "dups".into(),
            extractor: Extractor::Csv("id,v\n1,a\n1,b\n2,c\n".into()),
            transforms: vec![],
            loader: Loader {
                table: "uniq".into(),
                mode: LoadMode::Append,
            },
        };
        let report = runner.run(&job).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn missing_source_table_is_an_error() {
        let runner = JobRunner::new(Arc::new(Database::new()));
        let job = EtlJob {
            name: "x".into(),
            extractor: Extractor::Table("ghost".into()),
            transforms: vec![],
            loader: Loader {
                table: "y".into(),
                mode: LoadMode::Append,
            },
        };
        assert!(matches!(runner.run(&job), Err(EtlError::Storage(_))));
    }
}
