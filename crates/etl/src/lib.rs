//! # odbis-etl
//!
//! The Integration Service (IS) — the ODBIS core BI service that "offers
//! an ad-hoc way to define data integration jobs, jobs scheduling, etc."
//! (§3.1), and the executable counterpart of the CWM Transformation
//! package's EXTRACT/FILTER/MAP/AGGREGATE/LOOKUP/DEDUPLICATE/LOAD steps.
//!
//! * [`Frame`] — the record batch flowing between operators, with CSV
//!   ingestion and type inference;
//! * [`Transform`] — declarative operators compiled against the frame
//!   header (filters and derivations are real SQL expressions);
//! * [`EtlJob`] / [`JobRunner`] — extract → transform → load with bad-row
//!   quarantine and two execution modes (operator-at-a-time vs fused row
//!   pipeline — ablation A4);
//! * [`JobScheduler`] — deterministic logical-clock scheduling.

#![warn(missing_docs)]

mod frame;
mod job;
mod schedule;
mod transform;

pub use frame::{infer_value, parse_csv, to_csv, Frame};
pub use job::{EtlJob, ExecutionMode, Extractor, JobReport, JobRunner, LoadMode, Loader};
pub use schedule::{JobScheduler, RunRecord, Schedule};
pub use transform::{compile_expression, AggOp, Transform};

/// Errors raised by the integration service.
#[derive(Debug, Clone, PartialEq)]
pub enum EtlError {
    /// Frame shape problem (arity mismatch, empty CSV...).
    Shape(String),
    /// Unknown column referenced by a transform.
    UnknownColumn(String),
    /// A SQL expression failed to compile or evaluate.
    Expression(String),
    /// Storage-level failure.
    Storage(String),
}

impl std::fmt::Display for EtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EtlError::Shape(m) => write!(f, "shape error: {m}"),
            EtlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            EtlError::Expression(m) => write!(f, "expression error: {m}"),
            EtlError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for EtlError {}
