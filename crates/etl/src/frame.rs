//! The record frame flowing through ETL pipelines: a header plus rows.

use odbis_storage::{Batch, Value};

use crate::EtlError;

/// A batch of records with named columns — the unit of data moving between
/// ETL operators.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Column names.
    pub columns: Vec<String>,
    /// Row data; every row has `columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Frame {
    /// Empty frame with the given columns.
    pub fn new(columns: Vec<String>) -> Self {
        Frame {
            columns,
            rows: Vec::new(),
        }
    }

    /// Frame from parts, checking row arity.
    pub fn from_rows(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Result<Self, EtlError> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != columns.len() {
                return Err(EtlError::Shape(format!(
                    "row {i} has {} values, expected {}",
                    r.len(),
                    columns.len()
                )));
            }
        }
        Ok(Frame { columns, rows })
    }

    /// Frame from column names and a columnar [`Batch`] — the pivot point
    /// where vectorized scans enter the row-shaped transform pipeline.
    pub fn from_batch(columns: Vec<String>, batch: &Batch) -> Result<Self, EtlError> {
        if batch.num_columns() != columns.len() {
            return Err(EtlError::Shape(format!(
                "batch has {} columns, header has {}",
                batch.num_columns(),
                columns.len()
            )));
        }
        Ok(Frame {
            columns,
            rows: batch.to_rows(),
        })
    }

    /// Convert this frame to a columnar [`Batch`] (typed columns inferred
    /// per the shared [`odbis_storage::ColumnVec`] rules).
    pub fn to_batch(&self) -> Result<Batch, EtlError> {
        Batch::from_rows(self.columns.len(), self.rows.clone())
            .map_err(|e| EtlError::Shape(e.to_string()))
    }

    /// Column position by name, via the platform-wide
    /// [`odbis_storage::resolve_column`] rule (ASCII case-insensitive,
    /// first match wins).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        odbis_storage::resolve_column(self.columns.iter().map(String::as_str), name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One column's values (cloned).
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>, EtlError> {
        let i = self
            .column_index(name)
            .ok_or_else(|| EtlError::UnknownColumn(name.to_string()))?;
        Ok(self.rows.iter().map(|r| r[i].clone()).collect())
    }
}

/// Parse CSV text into a [`Frame`]. The first line is the header. Supports
/// quoted fields with `""` escapes; values are type-inferred per cell
/// (Int, then Float, then Bool, then Date, falling back to Text; empty
/// fields become NULL).
pub fn parse_csv(text: &str) -> Result<Frame, EtlError> {
    let mut lines = split_csv_records(text);
    if lines.is_empty() {
        return Err(EtlError::Shape("empty CSV input".into()));
    }
    let header = lines.remove(0);
    let columns: Vec<String> = header;
    let mut rows = Vec::with_capacity(lines.len());
    for (li, fields) in lines.into_iter().enumerate() {
        if fields.len() != columns.len() {
            return Err(EtlError::Shape(format!(
                "CSV record {} has {} fields, header has {}",
                li + 2,
                fields.len(),
                columns.len()
            )));
        }
        rows.push(fields.into_iter().map(|f| infer_value(&f)).collect());
    }
    Ok(Frame { columns, rows })
}

fn split_csv_records(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                record.push(std::mem::take(&mut field));
            }
            '\r' if !in_quotes => {}
            '\n' if !in_quotes => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            c => field.push(c),
        }
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    records
}

/// Infer the most specific [`Value`] for a CSV cell.
pub fn infer_value(s: &str) -> Value {
    let t = s.trim();
    if t.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Float(f);
    }
    match t.to_ascii_lowercase().as_str() {
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if let Some(d) = odbis_storage::parse_date(t) {
        // only treat as date when it looks like one (YYYY-MM-DD)
        if t.len() >= 8 && t.chars().filter(|&c| c == '-').count() == 2 {
            return Value::Date(d);
        }
    }
    Value::Text(t.to_string())
}

/// Render a frame back to CSV (for the delivery service's export channel).
pub fn to_csv(frame: &Frame) -> String {
    let mut out = String::new();
    out.push_str(&frame.columns.join(","));
    out.push('\n');
    for row in &frame.rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                let s = if v.is_null() {
                    String::new()
                } else {
                    v.render()
                };
                if s.contains(',') || s.contains('"') || s.contains('\n') {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_parsing_with_inference() {
        let f = parse_csv(
            "id,name,score,active,joined\n1,ana,9.5,true,2020-01-15\n2,\"b,ob\",7,false,\n",
        )
        .unwrap();
        assert_eq!(f.columns, vec!["id", "name", "score", "active", "joined"]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.rows[0][0], Value::Int(1));
        assert_eq!(f.rows[0][2], Value::Float(9.5));
        assert_eq!(f.rows[0][3], Value::Bool(true));
        assert!(matches!(f.rows[0][4], Value::Date(_)));
        assert_eq!(f.rows[1][1], Value::from("b,ob"));
        assert_eq!(f.rows[1][4], Value::Null);
    }

    #[test]
    fn csv_quote_escapes_and_crlf() {
        let f = parse_csv("a,b\r\n\"say \"\"hi\"\"\",2\r\n").unwrap();
        assert_eq!(f.rows[0][0], Value::from("say \"hi\""));
        assert_eq!(f.rows[0][1], Value::Int(2));
    }

    #[test]
    fn csv_shape_errors() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("a,b\n1\n").is_err());
    }

    #[test]
    fn csv_round_trip() {
        let f = parse_csv("x,y\n1,hello\n2,\"with,comma\"\n").unwrap();
        let csv = to_csv(&f);
        let f2 = parse_csv(&csv).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn frame_helpers() {
        let f = Frame::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![1.into(), 2.into()], vec![3.into(), 4.into()]],
        )
        .unwrap();
        assert_eq!(f.column_index("B"), Some(1));
        assert_eq!(
            f.column_values("a").unwrap(),
            vec![Value::Int(1), Value::Int(3)]
        );
        assert!(f.column_values("zz").is_err());
        assert!(Frame::from_rows(vec!["a".into()], vec![vec![1.into(), 2.into()]]).is_err());
    }

    #[test]
    fn batch_round_trip_preserves_frame() {
        let f = Frame::from_rows(
            vec!["a".into(), "b".into()],
            vec![
                vec![1.into(), "x".into()],
                vec![Value::Null, "y".into()],
                vec![3.into(), Value::Null],
            ],
        )
        .unwrap();
        let batch = f.to_batch().unwrap();
        assert_eq!(batch.num_rows(), 3);
        let back = Frame::from_batch(f.columns.clone(), &batch).unwrap();
        assert_eq!(f, back);
        // header / batch arity mismatch is a shape error
        assert!(Frame::from_batch(vec!["only".into()], &batch).is_err());
    }

    #[test]
    fn inference_edge_cases() {
        assert_eq!(infer_value("  42 "), Value::Int(42));
        assert_eq!(infer_value("4.5e2"), Value::Float(450.0));
        assert_eq!(infer_value("TRUE"), Value::Bool(true));
        assert_eq!(infer_value("hello"), Value::from("hello"));
        assert_eq!(infer_value(""), Value::Null);
        // ambiguous strings stay text
        assert_eq!(infer_value("1-2-3"), Value::from("1-2-3"));
    }
}
