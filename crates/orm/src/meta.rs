//! Entity metadata: the ORM's substitute for JPA annotations.

use odbis_storage::{Column, DataType, Schema, Value};

use crate::error::{OrmError, OrmResult};

/// Metadata for one persistent field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMeta {
    /// Field name in the domain object.
    pub name: String,
    /// Mapped column name (often equal to `name`).
    pub column: String,
    /// Column type.
    pub data_type: DataType,
    /// Identifier field (exactly one per entity).
    pub id: bool,
    /// NOT NULL constraint.
    pub not_null: bool,
}

/// Metadata for one entity type — what `@Entity`/`@Table`/`@Id` declare in
/// JPA.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityMeta {
    /// Logical entity name.
    pub entity: String,
    /// Mapped table name.
    pub table: String,
    /// Persistent fields, in column order.
    pub fields: Vec<FieldMeta>,
}

impl EntityMeta {
    /// Builder-style constructor.
    pub fn new(entity: impl Into<String>, table: impl Into<String>) -> Self {
        EntityMeta {
            entity: entity.into(),
            table: table.into(),
            fields: Vec::new(),
        }
    }

    /// Add the identifier field (INT, NOT NULL).
    pub fn id_field(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        self.fields.push(FieldMeta {
            column: name.clone(),
            name,
            data_type: DataType::Int,
            id: true,
            not_null: true,
        });
        self
    }

    /// Add a plain field.
    pub fn field(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        let name = name.into();
        self.fields.push(FieldMeta {
            column: name.clone(),
            name,
            data_type,
            id: false,
            not_null: false,
        });
        self
    }

    /// Add a NOT NULL field.
    pub fn required_field(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        let name = name.into();
        self.fields.push(FieldMeta {
            column: name.clone(),
            name,
            data_type,
            id: false,
            not_null: true,
        });
        self
    }

    /// Remap the most recently added field to a different column name.
    pub fn mapped_to(mut self, column: impl Into<String>) -> Self {
        if let Some(f) = self.fields.last_mut() {
            f.column = column.into();
        }
        self
    }

    /// Validate the metadata: exactly one id field, no duplicate columns.
    pub fn validate(&self) -> OrmResult<()> {
        let ids = self.fields.iter().filter(|f| f.id).count();
        if ids != 1 {
            return Err(OrmError::Mapping(format!(
                "entity {} must have exactly one id field, found {ids}",
                self.entity
            )));
        }
        for (i, f) in self.fields.iter().enumerate() {
            if self.fields[..i]
                .iter()
                .any(|p| p.column.eq_ignore_ascii_case(&f.column))
            {
                return Err(OrmError::Mapping(format!(
                    "entity {}: duplicate column {}",
                    self.entity, f.column
                )));
            }
        }
        Ok(())
    }

    /// Position of the id field.
    pub fn id_index(&self) -> usize {
        self.fields
            .iter()
            .position(|f| f.id)
            .expect("validated entity has an id field")
    }

    /// Derive the storage [`Schema`] for this entity (what Hibernate's
    /// `hbm2ddl` does).
    pub fn derive_schema(&self) -> OrmResult<Schema> {
        self.validate()?;
        let cols: Vec<Column> = self
            .fields
            .iter()
            .map(|f| {
                let mut c = Column::new(f.column.clone(), f.data_type);
                if f.not_null {
                    c = c.not_null();
                }
                c
            })
            .collect();
        let schema = Schema::new(cols)?;
        let id_col = self.fields[self.id_index()].column.clone();
        Ok(schema.with_primary_key(&[&id_col])?)
    }
}

/// A persistent domain object.
///
/// This is the reproduction's substitute for a JPA `@Entity`: the type knows
/// its metadata and how to map itself to and from a storage row.
pub trait Entity: Sized + Clone {
    /// The entity's mapping metadata.
    fn meta() -> EntityMeta;

    /// Serialize into a row matching `meta().fields` order.
    fn to_row(&self) -> Vec<Value>;

    /// Deserialize from a row in `meta().fields` order.
    fn from_row(row: &[Value]) -> OrmResult<Self>;

    /// The identifier value.
    fn id_value(&self) -> Value {
        self.to_row()[Self::meta().id_index()].clone()
    }
}

/// Helper for `from_row` implementations: fetch and type-check one value.
pub fn get_value<'a>(row: &'a [Value], i: usize, what: &str) -> OrmResult<&'a Value> {
    row.get(i)
        .ok_or_else(|| OrmError::Mapping(format!("row too short for field {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> EntityMeta {
        EntityMeta::new("User", "users")
            .id_field("id")
            .required_field("name", DataType::Text)
            .field("email", DataType::Text)
            .mapped_to("email_address")
    }

    #[test]
    fn builder_and_validation() {
        let m = meta();
        m.validate().unwrap();
        assert_eq!(m.id_index(), 0);
        assert_eq!(m.fields[2].column, "email_address");
        let bad = EntityMeta::new("X", "x").field("a", DataType::Int);
        assert!(bad.validate().is_err()); // no id
        let dup = EntityMeta::new("X", "x")
            .id_field("a")
            .field("A", DataType::Int);
        assert!(dup.validate().is_err());
    }

    #[test]
    fn schema_derivation() {
        let s = meta().derive_schema().unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.primary_key(), &[0]);
        assert!(s.column("email_address").is_some());
        assert!(s.columns()[1].not_null);
    }
}
