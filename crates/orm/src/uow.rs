//! Unit of Work: batch entity changes and flush them atomically.

use std::sync::Arc;

use odbis_storage::{Database, Value};

use crate::error::{OrmError, OrmResult};
use crate::meta::Entity;

/// Pending change kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChangeKind {
    Insert,
    Update,
    Delete,
}

#[derive(Debug)]
struct Change {
    table: String,
    kind: ChangeKind,
    id: Value,
    id_index: usize,
    row: Option<Vec<Value>>,
}

/// A unit of work (JPA `EntityManager` flush semantics): register new,
/// dirty and removed entities, then [`UnitOfWork::commit`] applies all of
/// them inside one storage transaction — either everything lands or nothing
/// does.
#[derive(Debug)]
pub struct UnitOfWork {
    db: Arc<Database>,
    changes: Vec<Change>,
}

impl UnitOfWork {
    /// Start an empty unit of work.
    pub fn new(db: Arc<Database>) -> Self {
        UnitOfWork {
            db,
            changes: Vec::new(),
        }
    }

    /// Number of pending changes.
    pub fn pending(&self) -> usize {
        self.changes.len()
    }

    /// Register a new entity for insertion.
    pub fn register_new<E: Entity>(&mut self, entity: &E) {
        let meta = E::meta();
        self.changes.push(Change {
            table: meta.table.clone(),
            kind: ChangeKind::Insert,
            id: entity.id_value(),
            id_index: meta.id_index(),
            row: Some(entity.to_row()),
        });
    }

    /// Register an existing entity whose state changed.
    pub fn register_dirty<E: Entity>(&mut self, entity: &E) {
        let meta = E::meta();
        self.changes.push(Change {
            table: meta.table.clone(),
            kind: ChangeKind::Update,
            id: entity.id_value(),
            id_index: meta.id_index(),
            row: Some(entity.to_row()),
        });
    }

    /// Register an entity for removal.
    pub fn register_removed<E: Entity>(&mut self, entity: &E) {
        let meta = E::meta();
        self.changes.push(Change {
            table: meta.table.clone(),
            kind: ChangeKind::Delete,
            id: entity.id_value(),
            id_index: meta.id_index(),
            row: None,
        });
    }

    /// Apply all pending changes in registration order inside one
    /// transaction. On any failure everything is rolled back and the error
    /// returned; the unit of work is left empty either way.
    pub fn commit(mut self) -> OrmResult<usize> {
        let changes = std::mem::take(&mut self.changes);
        let n = changes.len();
        let mut txn = self.db.begin();
        for ch in changes {
            // resolve current row id by primary key
            let rid = self.db.read_table(&ch.table, |t| {
                t.index(&format!("pk_{}", ch.table))
                    .map(|pk| pk.lookup(std::slice::from_ref(&ch.id)).first().copied())
                    .unwrap_or_else(|| {
                        t.scan()
                            .find(|(_, row)| row[ch.id_index] == ch.id)
                            .map(|(rid, _)| rid)
                    })
            })?;
            let outcome = match (ch.kind, rid) {
                (ChangeKind::Insert, Some(_)) => Err(OrmError::Conflict(format!(
                    "insert of existing id {} into {}",
                    ch.id.render(),
                    ch.table
                ))),
                (ChangeKind::Insert, None) => txn
                    .insert(&ch.table, ch.row.expect("insert carries a row"))
                    .map(drop)
                    .map_err(OrmError::from),
                (ChangeKind::Update, Some(rid)) => txn
                    .update(&ch.table, rid, ch.row.expect("update carries a row"))
                    .map_err(OrmError::from),
                (ChangeKind::Update, None) => Err(OrmError::NotFound {
                    entity: ch.table.clone(),
                    id: ch.id.render(),
                }),
                (ChangeKind::Delete, Some(rid)) => {
                    txn.delete(&ch.table, rid).map_err(OrmError::from)
                }
                (ChangeKind::Delete, None) => Err(OrmError::NotFound {
                    entity: ch.table.clone(),
                    id: ch.id.render(),
                }),
            };
            if let Err(e) = outcome {
                txn.rollback()?;
                return Err(e);
            }
        }
        txn.commit()?;
        Ok(n)
    }

    /// Discard all pending changes.
    pub fn clear(&mut self) {
        self.changes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::EntityMeta;
    use crate::repository::Repository;
    use odbis_storage::DataType;

    #[derive(Debug, Clone, PartialEq)]
    struct Item {
        id: i64,
        label: String,
    }

    impl Entity for Item {
        fn meta() -> EntityMeta {
            EntityMeta::new("Item", "uow_items")
                .id_field("id")
                .required_field("label", DataType::Text)
        }
        fn to_row(&self) -> Vec<Value> {
            vec![Value::Int(self.id), Value::Text(self.label.clone())]
        }
        fn from_row(row: &[Value]) -> OrmResult<Self> {
            Ok(Item {
                id: row[0].as_i64().unwrap_or_default(),
                label: row[1].as_str().unwrap_or_default().to_string(),
            })
        }
    }

    fn setup() -> (Arc<Database>, Repository<Item>) {
        let db = Arc::new(Database::new());
        let repo = Repository::new(Arc::clone(&db)).unwrap();
        (db, repo)
    }

    #[test]
    fn commit_applies_everything_in_order() {
        let (db, repo) = setup();
        repo.insert(&Item {
            id: 1,
            label: "old".into(),
        })
        .unwrap();
        let mut uow = UnitOfWork::new(Arc::clone(&db));
        uow.register_new(&Item {
            id: 2,
            label: "new".into(),
        });
        uow.register_dirty(&Item {
            id: 1,
            label: "updated".into(),
        });
        assert_eq!(uow.pending(), 2);
        assert_eq!(uow.commit().unwrap(), 2);
        assert_eq!(repo.get(1i64).unwrap().label, "updated");
        assert_eq!(repo.count().unwrap(), 2);
    }

    #[test]
    fn failed_commit_rolls_back_all_changes() {
        let (db, repo) = setup();
        repo.insert(&Item {
            id: 1,
            label: "keep".into(),
        })
        .unwrap();
        let mut uow = UnitOfWork::new(db);
        uow.register_new(&Item {
            id: 2,
            label: "will be rolled back".into(),
        });
        // update of a missing entity fails the whole unit
        uow.register_dirty(&Item {
            id: 99,
            label: "nope".into(),
        });
        let err = uow.commit().unwrap_err();
        assert!(matches!(err, OrmError::NotFound { .. }));
        assert_eq!(repo.count().unwrap(), 1);
        assert_eq!(repo.get(1i64).unwrap().label, "keep");
    }

    #[test]
    fn duplicate_insert_conflicts_and_rolls_back() {
        let (db, repo) = setup();
        repo.insert(&Item {
            id: 1,
            label: "x".into(),
        })
        .unwrap();
        let mut uow = UnitOfWork::new(db);
        uow.register_removed(&Item {
            id: 1,
            label: "x".into(),
        });
        uow.register_new(&Item {
            id: 1,
            label: "x2".into(),
        });
        // delete then re-insert same id works (order preserved)
        uow.commit().unwrap();
        assert_eq!(repo.get(1i64).unwrap().label, "x2");
    }

    #[test]
    fn clear_discards() {
        let (db, repo) = setup();
        let mut uow = UnitOfWork::new(db);
        uow.register_new(&Item {
            id: 5,
            label: "z".into(),
        });
        uow.clear();
        assert_eq!(uow.pending(), 0);
        assert_eq!(uow.commit().unwrap(), 0);
        assert_eq!(repo.count().unwrap(), 0);
    }
}
