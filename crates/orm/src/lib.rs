//! # odbis-orm
//!
//! The persistence layer of the ODBIS platform — the reproduction's
//! substitute for JPA/Hibernate in the paper's technical architecture
//! (Figure 5): entity metadata ("annotations"), schema derivation
//! (`hbm2ddl`), typed repositories (data-access layer of Figure 4) and an
//! atomic unit of work (`EntityManager` flush).
//!
//! ```
//! use std::sync::Arc;
//! use odbis_orm::{Entity, EntityMeta, OrmResult, Repository};
//! use odbis_storage::{Database, DataType, Value};
//!
//! #[derive(Clone)]
//! struct Tag { id: i64, label: String }
//!
//! impl Entity for Tag {
//!     fn meta() -> EntityMeta {
//!         EntityMeta::new("Tag", "tags").id_field("id").field("label", DataType::Text)
//!     }
//!     fn to_row(&self) -> Vec<Value> {
//!         vec![Value::Int(self.id), Value::Text(self.label.clone())]
//!     }
//!     fn from_row(row: &[Value]) -> OrmResult<Self> {
//!         Ok(Tag { id: row[0].as_i64().unwrap(), label: row[1].as_str().unwrap().into() })
//!     }
//! }
//!
//! let repo: Repository<Tag> = Repository::new(Arc::new(Database::new())).unwrap();
//! repo.insert(&Tag { id: 1, label: "bi".into() }).unwrap();
//! assert_eq!(repo.count().unwrap(), 1);
//! ```

#![warn(missing_docs)]

mod error;
mod meta;
mod repository;
mod uow;

pub use error::{OrmError, OrmResult};
pub use meta::{get_value, Entity, EntityMeta, FieldMeta};
pub use repository::Repository;
pub use uow::UnitOfWork;
