//! ORM error type.

use std::fmt;

use odbis_sql::SqlError;
use odbis_storage::DbError;

/// Errors raised by the persistence layer.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum OrmError {
    /// Invalid entity mapping metadata.
    Mapping(String),
    /// Entity with the given id was not found.
    NotFound { entity: String, id: String },
    /// Propagated storage error.
    Storage(DbError),
    /// Propagated query error.
    Sql(String),
    /// Optimistic-style conflict: saving a transient entity whose id exists.
    Conflict(String),
}

impl fmt::Display for OrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrmError::Mapping(m) => write!(f, "mapping error: {m}"),
            OrmError::NotFound { entity, id } => write!(f, "{entity} with id {id} not found"),
            OrmError::Storage(e) => write!(f, "storage error: {e}"),
            OrmError::Sql(e) => write!(f, "query error: {e}"),
            OrmError::Conflict(m) => write!(f, "conflict: {m}"),
        }
    }
}

impl std::error::Error for OrmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrmError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for OrmError {
    fn from(e: DbError) -> Self {
        OrmError::Storage(e)
    }
}

impl From<SqlError> for OrmError {
    fn from(e: SqlError) -> Self {
        OrmError::Sql(e.to_string())
    }
}

/// Result alias for ORM operations.
pub type OrmResult<T> = Result<T, OrmError>;
