//! The repository: typed CRUD over one entity type.

use std::marker::PhantomData;
use std::sync::Arc;

use odbis_sql::Engine;
use odbis_storage::{Database, RowId, Value};

use crate::error::{OrmError, OrmResult};
use crate::meta::{Entity, EntityMeta};

/// Data-access object for one entity type — the `JpaRepository` analogue in
/// the paper's data-access layer (Figure 4).
#[derive(Debug, Clone)]
pub struct Repository<E: Entity> {
    db: Arc<Database>,
    engine: Engine,
    meta: EntityMeta,
    _marker: PhantomData<E>,
}

impl<E: Entity> Repository<E> {
    /// Create a repository, creating the backing table if needed
    /// (schema-from-metadata, like `hbm2ddl auto`).
    pub fn new(db: Arc<Database>) -> OrmResult<Self> {
        let meta = E::meta();
        let schema = meta.derive_schema()?;
        if !db.has_table(&meta.table) {
            db.create_table(&meta.table, schema)?;
        }
        Ok(Repository {
            db,
            engine: Engine::new(),
            meta,
            _marker: PhantomData,
        })
    }

    /// The entity metadata this repository maps.
    pub fn meta(&self) -> &EntityMeta {
        &self.meta
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn find_row_id(&self, id: &Value) -> OrmResult<Option<RowId>> {
        let idx = self.meta.id_index();
        let hit = self.db.read_table(&self.meta.table, |t| {
            let pk = t.index(&format!("pk_{}", self.meta.table));
            match pk {
                Some(pk) => pk.lookup(std::slice::from_ref(id)).first().copied(),
                None => t
                    .scan()
                    .find(|(_, row)| row[idx] == *id)
                    .map(|(rid, _)| rid),
            }
        })?;
        Ok(hit)
    }

    /// Persist a new entity. Fails with [`OrmError::Conflict`] if the id is
    /// taken.
    pub fn insert(&self, entity: &E) -> OrmResult<()> {
        let row = entity.to_row();
        self.db.insert(&self.meta.table, row).map_err(|e| match e {
            odbis_storage::DbError::UniqueViolation { .. } => OrmError::Conflict(format!(
                "{} id {} already exists",
                self.meta.entity,
                entity.id_value().render()
            )),
            other => OrmError::Storage(other),
        })?;
        Ok(())
    }

    /// Insert or update by id (JPA `merge`/`save` semantics).
    pub fn save(&self, entity: &E) -> OrmResult<()> {
        let id = entity.id_value();
        match self.find_row_id(&id)? {
            Some(rid) => {
                self.db
                    .write_table(&self.meta.table, |t| t.update(rid, entity.to_row()))??;
                Ok(())
            }
            None => self.insert(entity),
        }
    }

    /// Load an entity by id.
    pub fn find(&self, id: impl Into<Value>) -> OrmResult<Option<E>> {
        let id = id.into();
        match self.find_row_id(&id)? {
            None => Ok(None),
            Some(rid) => {
                let row = self
                    .db
                    .read_table(&self.meta.table, |t| t.get(rid).map(<[Value]>::to_vec))??;
                Ok(Some(E::from_row(&row)?))
            }
        }
    }

    /// Load an entity by id, failing if absent.
    pub fn get(&self, id: impl Into<Value>) -> OrmResult<E> {
        let id = id.into();
        self.find(id.clone())?.ok_or_else(|| OrmError::NotFound {
            entity: self.meta.entity.clone(),
            id: id.render(),
        })
    }

    /// All entities, in heap order.
    pub fn find_all(&self) -> OrmResult<Vec<E>> {
        let rows = self.db.scan(&self.meta.table)?;
        rows.iter().map(|r| E::from_row(r)).collect()
    }

    /// Entities matching a SQL `WHERE` fragment (e.g. `"name LIKE 'a%'"`).
    pub fn find_where(&self, condition: &str) -> OrmResult<Vec<E>> {
        let sql = format!("SELECT * FROM {} WHERE {}", self.meta.table, condition);
        let result = self.engine.execute(&self.db, &sql)?;
        result.rows.iter().map(|r| E::from_row(r)).collect()
    }

    /// Number of persisted entities.
    pub fn count(&self) -> OrmResult<usize> {
        Ok(self.db.row_count(&self.meta.table)?)
    }

    /// Delete by id; returns whether an entity was removed.
    pub fn delete(&self, id: impl Into<Value>) -> OrmResult<bool> {
        let id = id.into();
        match self.find_row_id(&id)? {
            None => Ok(false),
            Some(rid) => {
                self.db.write_table(&self.meta.table, |t| t.delete(rid))??;
                Ok(true)
            }
        }
    }

    /// Delete everything (truncate).
    pub fn delete_all(&self) -> OrmResult<()> {
        self.db.write_table(&self.meta.table, |t| t.truncate())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::get_value;
    use odbis_storage::DataType;

    #[derive(Debug, Clone, PartialEq)]
    struct User {
        id: i64,
        name: String,
        score: Option<f64>,
    }

    impl Entity for User {
        fn meta() -> EntityMeta {
            EntityMeta::new("User", "orm_users")
                .id_field("id")
                .required_field("name", DataType::Text)
                .field("score", DataType::Float)
        }

        fn to_row(&self) -> Vec<Value> {
            vec![
                Value::Int(self.id),
                Value::Text(self.name.clone()),
                self.score.map_or(Value::Null, Value::Float),
            ]
        }

        fn from_row(row: &[Value]) -> OrmResult<Self> {
            Ok(User {
                id: get_value(row, 0, "id")?
                    .as_i64()
                    .ok_or_else(|| OrmError::Mapping("id must be an integer".into()))?,
                name: get_value(row, 1, "name")?
                    .as_str()
                    .unwrap_or_default()
                    .to_string(),
                score: get_value(row, 2, "score")?.as_f64(),
            })
        }
    }

    fn repo() -> Repository<User> {
        Repository::new(Arc::new(Database::new())).unwrap()
    }

    #[test]
    fn crud_round_trip() {
        let r = repo();
        let u = User {
            id: 1,
            name: "ana".into(),
            score: Some(9.5),
        };
        r.insert(&u).unwrap();
        assert_eq!(r.get(1i64).unwrap(), u);
        assert_eq!(r.count().unwrap(), 1);
        let mut u2 = u.clone();
        u2.score = None;
        r.save(&u2).unwrap();
        assert_eq!(r.get(1i64).unwrap().score, None);
        assert!(r.delete(1i64).unwrap());
        assert!(!r.delete(1i64).unwrap());
        assert_eq!(r.find(1i64).unwrap(), None);
    }

    #[test]
    fn insert_conflict_detected() {
        let r = repo();
        let u = User {
            id: 1,
            name: "a".into(),
            score: None,
        };
        r.insert(&u).unwrap();
        assert!(matches!(r.insert(&u), Err(OrmError::Conflict(_))));
        // save is an upsert
        r.save(&u).unwrap();
    }

    #[test]
    fn find_where_uses_sql() {
        let r = repo();
        for i in 0..10 {
            r.insert(&User {
                id: i,
                name: format!("user{i}"),
                score: Some(i as f64),
            })
            .unwrap();
        }
        let hits = r.find_where("score >= 7 ORDER BY id").unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 7);
        assert!(r.find_where("garbage !!").is_err());
    }

    #[test]
    fn get_missing_is_not_found() {
        let r = repo();
        let err = r.get(42i64).unwrap_err();
        assert!(matches!(err, OrmError::NotFound { .. }));
        assert!(err.to_string().contains("42"));
    }

    #[test]
    fn two_repositories_share_table() {
        let db = Arc::new(Database::new());
        let r1: Repository<User> = Repository::new(Arc::clone(&db)).unwrap();
        let r2: Repository<User> = Repository::new(db).unwrap();
        r1.insert(&User {
            id: 1,
            name: "x".into(),
            score: None,
        })
        .unwrap();
        assert_eq!(r2.count().unwrap(), 1);
    }
}
