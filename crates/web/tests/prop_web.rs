//! Property tests: HTTP parsing is total (never panics) and the
//! request/response wire formats round-trip.

use odbis_web::{percent_decode, HttpRequest, HttpResponse, Method};
use proptest::prelude::*;

proptest! {
    /// The request parser never panics on arbitrary bytes.
    #[test]
    fn request_parser_total(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = HttpRequest::read_from(&mut bytes.as_slice());
    }

    /// Percent decoding never panics and is identity on unreserved text.
    #[test]
    fn percent_decode_total(s in ".{0,80}") {
        let _ = percent_decode(&s);
    }

    #[test]
    fn percent_decode_identity_on_plain(s in "[a-zA-Z0-9_.~/-]{0,40}") {
        prop_assert_eq!(percent_decode(&s), s);
    }

    /// A well-formed request serialized by hand always parses back to the
    /// same method/path/body.
    #[test]
    fn request_round_trip(
        path in "/[a-z0-9/]{0,20}",
        body in "[ -~]{0,60}",
        header_val in "[a-zA-Z0-9 ]{0,20}",
    ) {
        let wire = format!(
            "POST {path} HTTP/1.1\r\nX-Custom: {header_val}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = HttpRequest::read_from(&mut wire.as_bytes()).unwrap().unwrap();
        prop_assert_eq!(req.method, Method::Post);
        prop_assert_eq!(req.path.clone(), path.clone());
        prop_assert_eq!(req.body_text(), body.clone());
        prop_assert_eq!(req.header("x-custom").unwrap_or("").to_string(), header_val.trim().to_string());
    }

    /// Responses always serialize with a correct Content-Length.
    #[test]
    fn response_content_length(body in prop::collection::vec(any::<u8>(), 0..200), status in 200u16..600) {
        let resp = HttpResponse::status(status).with_body(body.clone());
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let text = String::from_utf8_lossy(&wire);
        let cl = format!("Content-Length: {}", body.len());
        prop_assert!(text.contains(&cl));
        let sl = format!("HTTP/1.1 {status} ");
        prop_assert!(text.starts_with(&sl));
        prop_assert!(wire.ends_with(&body));
    }
}
