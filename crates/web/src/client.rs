//! A minimal HTTP/1.1 client for tests, examples and the delivery
//! service's web-service channel.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Perform an HTTP request against `addr` (e.g. `"127.0.0.1:8080"`).
/// Returns `(status, headers, body)`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<(u16, BTreeMap<String, String>, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    // this client reads to EOF, so ask the server to close after one
    // response rather than holding the keep-alive connection open
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    stream.write_all(body).map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&raw)
}

/// GET helper returning `(status, body)`.
pub fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let (status, _, body) = http_request(addr, "GET", path, &[], b"")?;
    Ok((status, body))
}

/// GET with an `Accept` header — the content-negotiation helper (e.g.
/// `Accept: text/csv` on `/api/v1/datasets/:name`). Returns
/// `(status, content_type, body)`.
pub fn http_get_accept(
    addr: &str,
    path: &str,
    accept: &str,
) -> Result<(u16, String, String), String> {
    let (status, headers, body) = http_request(addr, "GET", path, &[("Accept", accept)], b"")?;
    let content_type = headers.get("content-type").cloned().unwrap_or_default();
    Ok((status, content_type, body))
}

/// POST helper returning `(status, body)`.
pub fn http_post(addr: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let (status, _, resp) = http_request(
        addr,
        "POST",
        path,
        &[("Content-Type", "application/json")],
        body.as_bytes(),
    )?;
    Ok((status, resp))
}

fn parse_response(raw: &[u8]) -> Result<(u16, BTreeMap<String, String>, String), String> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("malformed response: no header terminator")?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    Ok((status, headers, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_response_extracts_parts() {
        let raw = b"HTTP/1.1 201 Created\r\nContent-Type: text/plain\r\n\r\nhello";
        let (status, headers, body) = parse_response(raw).unwrap();
        assert_eq!(status, 201);
        assert_eq!(headers["content-type"], "text/plain");
        assert_eq!(body, "hello");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 xyz\r\n\r\n").is_err());
    }

    #[test]
    fn connect_error_is_reported() {
        // port 1 on loopback is almost certainly closed
        let err = http_get("127.0.0.1:1", "/").unwrap_err();
        assert!(err.contains("connect"));
    }
}
