//! HTTP/1.1 request/response types and wire parsing.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};

/// HTTP methods the platform serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // self-documenting
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
}

impl Method {
    /// Parse a request-line method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    /// Wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Method.
    pub method: Method,
    /// Path without the query string, percent-decoded.
    pub path: String,
    /// Query parameters.
    pub query: BTreeMap<String, String>,
    /// Headers (keys lower-cased).
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Attributes set by filters (e.g. the authenticated principal).
    pub attributes: BTreeMap<String, String>,
}

impl HttpRequest {
    /// Build a request programmatically (used by tests and the in-process
    /// dispatch path).
    pub fn new(method: Method, path_and_query: &str) -> Self {
        let (path, query) = split_path_query(path_and_query);
        HttpRequest {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
            attributes: BTreeMap::new(),
        }
    }

    /// Builder-style header.
    pub fn with_header(mut self, key: &str, value: &str) -> Self {
        self.headers
            .insert(key.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Builder-style body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// Header accessor (case-insensitive).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Query-parameter accessor.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// Body as UTF-8 text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Parse one request from a stream. Returns `None` on a cleanly closed
    /// connection, `Err` on malformed input.
    pub fn read_from(stream: &mut impl Read) -> Result<Option<HttpRequest>, String> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read error: {e}"))?;
        if n == 0 {
            return Ok(None);
        }
        let mut parts = line.trim_end().split(' ');
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or_else(|| format!("bad method in request line {line:?}"))?;
        let target = parts.next().ok_or("missing request target")?;
        let version = parts.next().unwrap_or("HTTP/1.1");
        if !version.starts_with("HTTP/1.") {
            return Err(format!("unsupported version {version}"));
        }
        let (path, query) = split_path_query(target);
        let mut headers = BTreeMap::new();
        loop {
            let mut hline = String::new();
            reader
                .read_line(&mut hline)
                .map_err(|e| format!("header read error: {e}"))?;
            let hline = hline.trim_end();
            if hline.is_empty() {
                break;
            }
            if let Some((k, v)) = hline.split_once(':') {
                headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
            }
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if len > 16 * 1024 * 1024 {
            return Err("request body too large".to_string());
        }
        let mut body = vec![0u8; len];
        if len > 0 {
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("body read error: {e}"))?;
        }
        Ok(Some(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
            attributes: BTreeMap::new(),
        }))
    }
}

fn split_path_query(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        None => (percent_decode(target), BTreeMap::new()),
        Some((p, q)) => {
            let mut query = BTreeMap::new();
            for pair in q.split('&') {
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                query.insert(percent_decode(k), percent_decode(v));
            }
            (percent_decode(p), query)
        }
    }
}

/// Decode `%XX` escapes and `+` (in query strings).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Response with a status and empty body.
    pub fn status(status: u16) -> Self {
        HttpResponse {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// 200 with a `text/plain` body.
    pub fn text(body: impl Into<String>) -> Self {
        HttpResponse::status(200)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into())
    }

    /// 200 with a `text/html` body.
    pub fn html(body: impl Into<String>) -> Self {
        HttpResponse::status(200)
            .with_header("Content-Type", "text/html; charset=utf-8")
            .with_body(body.into())
    }

    /// 200 with an `application/json` body.
    pub fn json(body: impl Into<String>) -> Self {
        HttpResponse::status(200)
            .with_header("Content-Type", "application/json")
            .with_body(body.into())
    }

    /// 404.
    pub fn not_found() -> Self {
        HttpResponse::status(404).with_body("not found")
    }

    /// 401 (authentication required).
    pub fn unauthorized(msg: &str) -> Self {
        HttpResponse::status(401).with_body(msg.to_string())
    }

    /// 403 (authenticated but not allowed).
    pub fn forbidden(msg: &str) -> Self {
        HttpResponse::status(403).with_body(msg.to_string())
    }

    /// 400 with a reason.
    pub fn bad_request(msg: &str) -> Self {
        HttpResponse::status(400).with_body(msg.to_string())
    }

    /// 500 with a reason.
    pub fn server_error(msg: &str) -> Self {
        HttpResponse::status(500).with_body(msg.to_string())
    }

    /// Builder-style header.
    pub fn with_header(mut self, key: &str, value: &str) -> Self {
        self.headers.insert(key.to_string(), value.to_string());
        self
    }

    /// Builder-style body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// Body as UTF-8 text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serialize to the wire.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Status",
        };
        write!(stream, "HTTP/1.1 {} {}\r\n", self.status, reason)?;
        for (k, v) in &self.headers {
            write!(stream, "{k}: {v}\r\n")?;
        }
        write!(stream, "Content-Length: {}\r\n", self.body.len())?;
        write!(stream, "Connection: close\r\n\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_from_wire() {
        let raw = b"POST /api/reports?limit=5&name=q1 HTTP/1.1\r\n\
                    Host: localhost\r\n\
                    Content-Type: application/json\r\n\
                    Content-Length: 7\r\n\
                    \r\n{\"a\":1}";
        let req = HttpRequest::read_from(&mut &raw[..]).unwrap().unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/api/reports");
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.body_text(), "{\"a\":1}");
    }

    #[test]
    fn closed_connection_and_garbage() {
        let empty: &[u8] = b"";
        assert!(HttpRequest::read_from(&mut &empty[..]).unwrap().is_none());
        let bad = b"BREW /coffee HTTP/1.1\r\n\r\n";
        assert!(HttpRequest::read_from(&mut &bad[..]).is_err());
        let badver = b"GET / SPDY/99\r\n\r\n";
        assert!(HttpRequest::read_from(&mut &badver[..]).is_err());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        let req = HttpRequest::new(Method::Get, "/r?q=sales%3D1");
        assert_eq!(req.query_param("q"), Some("sales=1"));
    }

    #[test]
    fn response_round_trip() {
        let resp = HttpResponse::json("{\"ok\":true}").with_header("X-Trace", "1");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.contains("X-Trace: 1"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn helper_constructors() {
        assert_eq!(HttpResponse::not_found().status, 404);
        assert_eq!(HttpResponse::unauthorized("x").status, 401);
        assert_eq!(HttpResponse::forbidden("x").status, 403);
        assert_eq!(HttpResponse::bad_request("x").status, 400);
        assert_eq!(HttpResponse::server_error("x").status, 500);
    }
}
