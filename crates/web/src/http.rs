//! HTTP/1.1 request/response types and wire parsing — both the blocking
//! reader used by the threaded server and the incremental
//! [`RequestParser`] the event-loop reactor feeds byte chunks into.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// HTTP methods the platform serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // self-documenting
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
}

impl Method {
    /// Parse a request-line method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    /// Wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Method.
    pub method: Method,
    /// Path without the query string, percent-decoded.
    pub path: String,
    /// Query parameters.
    pub query: BTreeMap<String, String>,
    /// Headers (keys lower-cased).
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Attributes set by filters (e.g. the authenticated principal).
    pub attributes: BTreeMap<String, String>,
}

impl HttpRequest {
    /// Build a request programmatically (used by tests and the in-process
    /// dispatch path).
    pub fn new(method: Method, path_and_query: &str) -> Self {
        let (path, query) = split_path_query(path_and_query);
        HttpRequest {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
            attributes: BTreeMap::new(),
        }
    }

    /// Builder-style header.
    pub fn with_header(mut self, key: &str, value: &str) -> Self {
        self.headers
            .insert(key.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Builder-style body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// Header accessor (case-insensitive).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Query-parameter accessor.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// Body as UTF-8 text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Parse one request from a stream. Returns `None` on a cleanly closed
    /// connection, `Err` on malformed input.
    ///
    /// Wraps the stream in a throwaway [`BufReader`]; with keep-alive
    /// connections use [`HttpRequest::read_from_buffered`] with one reader
    /// per connection so pipelined bytes are not lost between requests.
    pub fn read_from(stream: &mut impl Read) -> Result<Option<HttpRequest>, String> {
        Self::read_from_buffered(&mut BufReader::new(stream))
    }

    /// Parse one request from an existing buffered reader (the
    /// per-connection loop of the server's keep-alive handling).
    pub fn read_from_buffered(reader: &mut impl BufRead) -> Result<Option<HttpRequest>, String> {
        let mut line = String::new();
        let n = match reader.read_line(&mut line) {
            Ok(n) => n,
            // an idle keep-alive connection hitting the read timeout is a
            // quiet end of conversation, not a malformed request
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(format!("read error: {e}")),
        };
        if n == 0 {
            return Ok(None);
        }
        let (method, path, query) = parse_request_line(&line)?;
        let mut headers = BTreeMap::new();
        loop {
            let mut hline = String::new();
            reader
                .read_line(&mut hline)
                .map_err(|e| format!("header read error: {e}"))?;
            let hline = hline.trim_end();
            if hline.is_empty() {
                break;
            }
            if let Some((k, v)) = hline.split_once(':') {
                headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
            }
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if len > 16 * 1024 * 1024 {
            return Err("request body too large".to_string());
        }
        let mut body = vec![0u8; len];
        if len > 0 {
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("body read error: {e}"))?;
        }
        Ok(Some(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
            attributes: BTreeMap::new(),
        }))
    }

    /// Whether the client asked for the connection to be closed after this
    /// request (`Connection: close`). HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|c| c.eq_ignore_ascii_case("close"))
    }

    /// The request's identity, if one has been established (either the
    /// client's `X-Request-Id` header adopted by [`Self::ensure_request_id`]
    /// or a server-generated one).
    pub fn request_id(&self) -> Option<&str> {
        self.attributes.get("request_id").map(String::as_str)
    }

    /// Establish the request's identity: adopt a well-formed client
    /// `X-Request-Id` header (1–128 chars of `[A-Za-z0-9._-]`), otherwise
    /// mint a fresh `req-<hex>` id. The id is stored as the `request_id`
    /// attribute and echoed on every response so a 429 or 503 is traceable
    /// from client log to slow log to root span.
    pub fn ensure_request_id(&mut self) -> String {
        if let Some(id) = self.attributes.get("request_id") {
            return id.clone();
        }
        let id = self
            .header("x-request-id")
            .map(str::trim)
            .filter(|id| {
                (1..=128).contains(&id.len())
                    && id
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
            })
            .map(str::to_string)
            .unwrap_or_else(generate_request_id);
        self.attributes.insert("request_id".into(), id.clone());
        id
    }
}

/// Mint a process-unique request id (`req-<16 hex digits>`): a wall-clock
/// seed mixed with an in-process counter through xorshift, so ids are
/// unique within a process and overwhelmingly unlikely to collide across
/// restarts — without pulling in a randomness dependency.
pub fn generate_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut x = t ^ n.rotate_left(32) ^ ((std::process::id() as u64) << 17);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    format!("req-{x:016x}")
}

/// Incremental HTTP/1.1 request parser: the per-connection state machine
/// of the event-loop server. Bytes read off a nonblocking socket are
/// [`fed`](RequestParser::feed) in as they arrive;
/// [`try_next`](RequestParser::try_next) yields a request as soon as one
/// is complete, leaving any pipelined surplus buffered for the next call.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

/// Cap on the request head (request line + headers) — a connection that
/// streams more than this without a blank line is attacking, not talking.
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Cap on a request body, matching the blocking reader.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

impl RequestParser {
    /// Empty parser for a fresh connection.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Append bytes read from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (parsed requests are drained out).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Parse the next complete request out of the buffer. `Ok(None)` means
    /// more bytes are needed; `Err` means the connection is talking
    /// garbage and must be closed after a 400.
    pub fn try_next(&mut self) -> Result<Option<HttpRequest>, String> {
        // tolerate stray CRLFs between pipelined requests (RFC 9112 §2.2)
        let skip = self
            .buf
            .iter()
            .take_while(|&&b| b == b'\r' || b == b'\n')
            .count();
        if skip > 0 {
            self.buf.drain(..skip);
        }
        let Some(head_len) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err("request head too large".to_string());
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES {
            return Err("request head too large".to_string());
        }
        let head = std::str::from_utf8(&self.buf[..head_len])
            .map_err(|_| "request head is not UTF-8".to_string())?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let (method, path, query) = parse_request_line(request_line)?;
        let mut headers = BTreeMap::new();
        for hline in lines {
            if let Some((k, v)) = hline.split_once(':') {
                headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
            }
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if len > MAX_BODY_BYTES {
            return Err("request body too large".to_string());
        }
        let total = head_len + 4 + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_len + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
            attributes: BTreeMap::new(),
        }))
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse `GET /path?query HTTP/1.1` into its parts (shared by the
/// blocking reader and the incremental parser).
fn parse_request_line(line: &str) -> Result<(Method, String, BTreeMap<String, String>), String> {
    let mut parts = line.trim_end().split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| format!("bad method in request line {line:?}"))?;
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version}"));
    }
    let (path, query) = split_path_query(target);
    Ok((method, path, query))
}

fn split_path_query(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        None => (percent_decode(target), BTreeMap::new()),
        Some((p, q)) => {
            let mut query = BTreeMap::new();
            for pair in q.split('&') {
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                query.insert(percent_decode_query(k), percent_decode_query(v));
            }
            (percent_decode(p), query)
        }
    }
}

/// Decode `%XX` escapes. A literal `+` stays `+` — the plus-means-space
/// convention applies only to `application/x-www-form-urlencoded` query
/// components, never to paths (`/files/a+b` names `a+b`). Use
/// [`percent_decode_query`] for query keys and values.
pub fn percent_decode(s: &str) -> String {
    decode_escapes(s, false)
}

/// Decode a query key or value: `%XX` escapes plus the form-encoding
/// `+` → space rule.
pub fn percent_decode_query(s: &str) -> String {
    decode_escapes(s, true)
}

fn decode_escapes(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // a trailing or malformed escape passes through literally
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// What a [`ResponseSlot`] currently holds.
enum SlotState {
    /// Neither the response nor a claimant has arrived.
    Pending,
    /// The response arrived before anyone claimed the slot.
    Ready(Box<HttpResponse>),
    /// A backend claimed the slot; completion calls this waker.
    Waker(Box<dyn FnOnce(HttpResponse) + Send>),
    /// The response was delivered; later completions are dropped.
    Done,
}

/// The completion slot behind a deferred response (see
/// [`HttpResponse::deferred`]). A handler returns the placeholder
/// immediately and keeps the slot; whoever later calls
/// [`ResponseSlot::fulfill`] supplies the real response. The serving
/// backend either blocks on [`ResponseSlot::wait`] (threaded pool) or
/// installs a waker with [`ResponseSlot::complete_with`] (reactor), so a
/// parked long-poll costs a file descriptor rather than a worker thread.
pub struct ResponseSlot {
    state: std::sync::Mutex<SlotState>,
    cv: std::sync::Condvar,
}

impl std::fmt::Debug for ResponseSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ResponseSlot")
    }
}

impl Default for ResponseSlot {
    fn default() -> Self {
        ResponseSlot {
            state: std::sync::Mutex::new(SlotState::Pending),
            cv: std::sync::Condvar::new(),
        }
    }
}

impl ResponseSlot {
    /// Deliver the real response. The first call wins: it wakes a blocked
    /// [`ResponseSlot::wait`], fires an installed waker, or parks the
    /// response for whichever arrives first. Every later call is a no-op,
    /// which is what makes racing completers (a data change vs. the
    /// timeout sweeper) safe.
    pub fn fulfill(&self, response: HttpResponse) {
        let waker = {
            let mut state = self.state.lock().unwrap();
            match std::mem::replace(&mut *state, SlotState::Done) {
                SlotState::Pending => {
                    *state = SlotState::Ready(Box::new(response));
                    self.cv.notify_all();
                    return;
                }
                SlotState::Waker(w) => w,
                already @ (SlotState::Ready(_) | SlotState::Done) => {
                    *state = already;
                    return;
                }
            }
        };
        waker(response);
    }

    /// Claim the slot with a waker that is called (exactly once, outside
    /// the slot lock) when the response is fulfilled. If the response is
    /// already there, the waker runs immediately on this thread.
    pub fn complete_with(&self, waker: impl FnOnce(HttpResponse) + Send + 'static) {
        let ready = {
            let mut state = self.state.lock().unwrap();
            match std::mem::replace(&mut *state, SlotState::Done) {
                SlotState::Ready(r) => *r,
                SlotState::Pending => {
                    *state = SlotState::Waker(Box::new(waker));
                    return;
                }
                done => {
                    *state = done;
                    return;
                }
            }
        };
        waker(ready);
    }

    /// Block until the response is fulfilled, up to `cap`. `None` means
    /// the cap elapsed with nothing delivered (the completer is expected
    /// to enforce its own timeout well under the cap; this is the
    /// backend's last-resort bound on a lost completion).
    pub fn wait(&self, cap: std::time::Duration) -> Option<HttpResponse> {
        let deadline = std::time::Instant::now() + cap;
        let mut state = self.state.lock().unwrap();
        loop {
            if let SlotState::Ready(_) = &*state {
                match std::mem::replace(&mut *state, SlotState::Done) {
                    SlotState::Ready(r) => return Some(*r),
                    _ => unreachable!("state was Ready under the lock"),
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(state, deadline - now).unwrap();
            state = guard;
        }
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// When set, this response is a placeholder: the real one arrives
    /// through the slot. Backends take it with
    /// [`HttpResponse::take_deferred`]; the placeholder's own
    /// status/body are never written to the wire.
    pub(crate) deferred: Option<std::sync::Arc<ResponseSlot>>,
}

impl HttpResponse {
    /// Response with a status and empty body.
    pub fn status(status: u16) -> Self {
        HttpResponse {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
            deferred: None,
        }
    }

    /// A deferred (long-poll) response: the handler returns the
    /// placeholder now and fulfills the [`ResponseSlot`] later — from a
    /// data-change notification, a timeout sweeper, whatever completes
    /// first. Headers stamped on the placeholder (request id, deprecation
    /// notices) are merged into the fulfilled response by the backend,
    /// unless the fulfilled response set the same header itself.
    pub fn deferred() -> (Self, std::sync::Arc<ResponseSlot>) {
        let slot = std::sync::Arc::new(ResponseSlot::default());
        let mut resp = HttpResponse::status(204);
        resp.deferred = Some(std::sync::Arc::clone(&slot));
        (resp, slot)
    }

    /// Take the deferred slot out of a placeholder response (backends
    /// call this once, right after dispatch). `None` for ordinary
    /// responses.
    pub fn take_deferred(&mut self) -> Option<std::sync::Arc<ResponseSlot>> {
        self.deferred.take()
    }

    /// 200 with a `text/plain` body.
    pub fn text(body: impl Into<String>) -> Self {
        HttpResponse::status(200)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into())
    }

    /// 200 with a `text/html` body.
    pub fn html(body: impl Into<String>) -> Self {
        HttpResponse::status(200)
            .with_header("Content-Type", "text/html; charset=utf-8")
            .with_body(body.into())
    }

    /// 200 with an `application/json` body.
    pub fn json(body: impl Into<String>) -> Self {
        HttpResponse::status(200)
            .with_header("Content-Type", "application/json")
            .with_body(body.into())
    }

    /// 404.
    pub fn not_found() -> Self {
        HttpResponse::status(404).with_body("not found")
    }

    /// 401 (authentication required).
    pub fn unauthorized(msg: &str) -> Self {
        HttpResponse::status(401).with_body(msg.to_string())
    }

    /// 403 (authenticated but not allowed).
    pub fn forbidden(msg: &str) -> Self {
        HttpResponse::status(403).with_body(msg.to_string())
    }

    /// 400 with a reason.
    pub fn bad_request(msg: &str) -> Self {
        HttpResponse::status(400).with_body(msg.to_string())
    }

    /// 500 with a reason.
    pub fn server_error(msg: &str) -> Self {
        HttpResponse::status(500).with_body(msg.to_string())
    }

    /// Builder-style header.
    pub fn with_header(mut self, key: &str, value: &str) -> Self {
        self.headers.insert(key.to_string(), value.to_string());
        self
    }

    /// Builder-style body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// Body as UTF-8 text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serialize to the wire, closing the connection afterwards
    /// (`Connection: close`). The per-connection server loop uses
    /// [`HttpResponse::write_to_conn`] to keep the connection open.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        self.write_to_conn(stream, false)
    }

    /// Serialize to the wire with an explicit connection disposition: the
    /// emitted `Connection` header matches what the server actually does
    /// with the socket.
    pub fn write_to_conn(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            402 => "Payment Required",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            406 => "Not Acceptable",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Status",
        };
        write!(stream, "HTTP/1.1 {} {}\r\n", self.status, reason)?;
        for (k, v) in &self.headers {
            write!(stream, "{k}: {v}\r\n")?;
        }
        write!(stream, "Content-Length: {}\r\n", self.body.len())?;
        let conn = if keep_alive { "keep-alive" } else { "close" };
        write!(stream, "Connection: {conn}\r\n\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }

    /// Serialize to a byte buffer with the given connection disposition —
    /// the form the reactor's write-side state machine queues per
    /// connection.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128 + self.body.len());
        self.write_to_conn(&mut buf, keep_alive)
            .expect("writing to a Vec cannot fail");
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_from_wire() {
        let raw = b"POST /api/reports?limit=5&name=q1 HTTP/1.1\r\n\
                    Host: localhost\r\n\
                    Content-Type: application/json\r\n\
                    Content-Length: 7\r\n\
                    \r\n{\"a\":1}";
        let req = HttpRequest::read_from(&mut &raw[..]).unwrap().unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/api/reports");
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.body_text(), "{\"a\":1}");
    }

    #[test]
    fn closed_connection_and_garbage() {
        let empty: &[u8] = b"";
        assert!(HttpRequest::read_from(&mut &empty[..]).unwrap().is_none());
        let bad = b"BREW /coffee HTTP/1.1\r\n\r\n";
        assert!(HttpRequest::read_from(&mut &bad[..]).is_err());
        let badver = b"GET / SPDY/99\r\n\r\n";
        assert!(HttpRequest::read_from(&mut &badver[..]).is_err());
    }

    #[test]
    fn percent_decoding() {
        // paths: %XX decodes, literal + is preserved
        assert_eq!(percent_decode("a%20b+c"), "a b+c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%2"), "%2");
        // query components: + means space (form encoding)
        assert_eq!(percent_decode_query("a%20b+c"), "a b c");
        let req = HttpRequest::new(Method::Get, "/r?q=sales%3D1");
        assert_eq!(req.query_param("q"), Some("sales=1"));
    }

    #[test]
    fn plus_in_path_names_a_plus_but_means_space_in_queries() {
        let req = HttpRequest::new(Method::Get, "/files/report+q3.pdf?title=Q3+sales");
        assert_eq!(req.path, "/files/report+q3.pdf");
        assert_eq!(req.query_param("title"), Some("Q3 sales"));
    }

    #[test]
    fn connection_close_detection() {
        let req = HttpRequest::new(Method::Get, "/");
        assert!(!req.wants_close());
        assert!(req.with_header("Connection", "Close").wants_close());
        let req = HttpRequest::new(Method::Get, "/").with_header("Connection", "keep-alive");
        assert!(!req.wants_close());
    }

    #[test]
    fn buffered_reader_parses_pipelined_requests() {
        let raw: &[u8] = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(raw);
        let first = HttpRequest::read_from_buffered(&mut reader)
            .unwrap()
            .unwrap();
        assert_eq!(first.path, "/a");
        assert!(!first.wants_close());
        let second = HttpRequest::read_from_buffered(&mut reader)
            .unwrap()
            .unwrap();
        assert_eq!(second.path, "/b");
        assert!(second.wants_close());
        assert!(HttpRequest::read_from_buffered(&mut reader)
            .unwrap()
            .is_none());
    }

    #[test]
    fn response_round_trip() {
        let resp = HttpResponse::json("{\"ok\":true}").with_header("X-Trace", "1");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.contains("X-Trace: 1"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn connection_header_matches_disposition() {
        let resp = HttpResponse::text("hi");
        let mut buf = Vec::new();
        resp.write_to_conn(&mut buf, true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Connection: keep-alive"));
        assert!(!text.contains("Connection: close"));
    }

    #[test]
    fn incremental_parser_handles_split_and_pipelined_bytes() {
        let mut p = RequestParser::new();
        // drip the request in three fragments: nothing yields early
        p.feed(b"POST /api/v1/sql?x=1 HT");
        assert!(p.try_next().unwrap().is_none());
        p.feed(b"TP/1.1\r\nContent-Length: 8\r\n\r\nSELE");
        assert!(p.try_next().unwrap().is_none());
        // final body fragment plus a whole pipelined second request
        p.feed(b"CT 1\r\n\r\nGET /next HTTP/1.1\r\nConnection: close\r\n\r\n");
        let first = p.try_next().unwrap().unwrap();
        assert_eq!(first.method, Method::Post);
        assert_eq!(first.path, "/api/v1/sql");
        assert_eq!(first.query_param("x"), Some("1"));
        assert_eq!(first.body_text(), "SELECT 1");
        let second = p.try_next().unwrap().unwrap();
        assert_eq!(second.path, "/next");
        assert!(second.wants_close());
        assert!(p.try_next().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn incremental_parser_rejects_garbage_and_floods() {
        let mut p = RequestParser::new();
        p.feed(b"BREW /coffee HTTP/1.1\r\n\r\n");
        assert!(p.try_next().is_err());
        let mut p = RequestParser::new();
        p.feed(&vec![b'A'; 70 * 1024]);
        assert!(p.try_next().is_err(), "an unbounded head must be rejected");
        let mut p = RequestParser::new();
        p.feed(b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n");
        assert!(p.try_next().is_err(), "oversized body must be rejected");
    }

    #[test]
    fn request_ids_are_adopted_or_minted() {
        // a well-formed client id is adopted verbatim
        let mut req = HttpRequest::new(Method::Get, "/x").with_header("X-Request-Id", "client-42");
        assert_eq!(req.ensure_request_id(), "client-42");
        assert_eq!(req.request_id(), Some("client-42"));
        // idempotent: the second call returns the same id
        assert_eq!(req.ensure_request_id(), "client-42");
        // a malformed id (spaces / control bytes) is replaced
        let mut req =
            HttpRequest::new(Method::Get, "/x").with_header("X-Request-Id", "evil id\r\n");
        let id = req.ensure_request_id();
        assert!(id.starts_with("req-"), "{id}");
        // minted ids are unique
        let mut other = HttpRequest::new(Method::Get, "/y");
        assert_ne!(other.ensure_request_id(), id);
    }

    #[test]
    fn helper_constructors() {
        assert_eq!(HttpResponse::not_found().status, 404);
        assert_eq!(HttpResponse::unauthorized("x").status, 401);
        assert_eq!(HttpResponse::forbidden("x").status, 403);
        assert_eq!(HttpResponse::bad_request("x").status, 400);
        assert_eq!(HttpResponse::server_error("x").status, 500);
    }
}
