//! Per-tenant admission control: token-bucket rate limits plus
//! queue-depth backpressure.
//!
//! This converts the platform's pay-as-you-go *cost* model into a *QoS*
//! model: a tenant bursting past its contracted rate pays in its own
//! latency (its requests queue, then 429), never in its neighbors'. The
//! server consults [`AdmissionControl::admit`] the moment a request is
//! parsed — before any handler work is spent on it — and reports
//! completion so queue depth tracks real in-flight load.
//!
//! Limits resolve per tenant through a caller-supplied resolver (the
//! platform wires this to `limits.rate` / `limits.burst` /
//! `limits.queue_depth` configuration, with `ODBIS_LIMITS_*` environment
//! defaults). A rate of 0 means the tenant is unlimited.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

use crate::http::{HttpRequest, HttpResponse};

/// Upper bound on the `Retry-After` advice a 429 carries. A misconfigured
/// near-zero refill rate must not tell clients to come back in a million
/// years — an hour is the longest honest "try later" this layer gives.
pub const MAX_RETRY_AFTER_SECS: u64 = 3_600;

/// The admission limits for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLimits {
    /// Steady-state request rate (requests/second). `0` disables limiting.
    pub rate: f64,
    /// Bucket capacity: how far a tenant may burst above its rate. `0`
    /// falls back to `rate` (one second of headroom).
    pub burst: f64,
    /// How many requests past the rate may be queued/in flight before the
    /// tenant is answered 429 instead.
    pub queue_depth: u64,
}

impl TenantLimits {
    /// An unlimited tenant (no admission control applied).
    pub fn unlimited() -> Self {
        TenantLimits {
            rate: 0.0,
            burst: 0.0,
            queue_depth: 0,
        }
    }

    fn effective_burst(&self) -> f64 {
        if self.burst > 0.0 {
            self.burst
        } else {
            self.rate.max(1.0)
        }
    }
}

/// The verdict on one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Within the tenant's rate: serve it.
    Admit,
    /// Past the rate but within queue depth: serve it (the tenant pays in
    /// its own queueing latency).
    Queued,
    /// Past rate and queue depth: answer 429, advising a retry after the
    /// given number of seconds (when the bucket will hold a token again).
    Reject {
        /// Whole seconds until the tenant's bucket accrues a token (≥ 1).
        retry_after_secs: u64,
    },
}

#[derive(Debug)]
struct TenantState {
    tokens: f64,
    last_refill: Instant,
    /// Requests admitted (either way) and not yet completed.
    pending: u64,
    admitted: u64,
    queued: u64,
    rejected: u64,
}

type LimitsResolver = dyn Fn(&str) -> TenantLimits + Send + Sync;

/// Token-bucket admission control keyed by tenant.
pub struct AdmissionControl {
    resolver: Box<LimitsResolver>,
    state: Mutex<HashMap<String, TenantState>>,
}

impl AdmissionControl {
    /// Build with a limits resolver — called on every admission decision,
    /// so configuration changes apply to the next request.
    pub fn new(resolver: impl Fn(&str) -> TenantLimits + Send + Sync + 'static) -> Self {
        AdmissionControl {
            resolver: Box::new(resolver),
            state: Mutex::new(HashMap::new()),
        }
    }

    /// Fixed limits for every tenant (tests, benches).
    pub fn with_uniform_limits(limits: TenantLimits) -> Self {
        AdmissionControl::new(move |_| limits)
    }

    /// Decide whether to serve a request for `tenant` right now. Callers
    /// must pair every `Admit`/`Queued` verdict with a later
    /// [`complete`](Self::complete).
    pub fn admit(&self, tenant: &str) -> Admission {
        let limits = (self.resolver)(tenant);
        let mut map = self.state.lock();
        let state = map
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                tokens: limits.effective_burst(),
                last_refill: Instant::now(),
                pending: 0,
                admitted: 0,
                queued: 0,
                rejected: 0,
            });
        if limits.rate <= 0.0 {
            state.admitted += 1;
            state.pending += 1;
            return Admission::Admit;
        }
        // refill, capped at burst
        let now = Instant::now();
        let elapsed = now.duration_since(state.last_refill).as_secs_f64();
        state.last_refill = now;
        state.tokens = (state.tokens + elapsed * limits.rate).min(limits.effective_burst());
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            state.admitted += 1;
            state.pending += 1;
            Admission::Admit
        } else if state.pending < limits.queue_depth {
            state.queued += 1;
            state.pending += 1;
            Admission::Queued
        } else {
            state.rejected += 1;
            // Clamp the advice into [1, MAX_RETRY_AFTER_SECS]: a tiny
            // configured rate (say 1e-12 req/s) would otherwise compute an
            // astronomical wait, and the max()/min() chain is NaN-safe —
            // f64::max/min return the other operand on NaN, so a degenerate
            // division still yields a sane whole-second answer rather than
            // `Retry-After: 0` or a saturated u64.
            let secs = ((1.0 - state.tokens) / limits.rate)
                .ceil()
                .max(1.0)
                .min(MAX_RETRY_AFTER_SECS as f64);
            Admission::Reject {
                retry_after_secs: secs as u64,
            }
        }
    }

    /// Gate one parsed request — the single entry point both server
    /// backends call. Requests without an `X-Tenant` header are not gated
    /// (`Ok(None)`); gated requests return the tenant to
    /// [`complete`](Self::complete) later (`Ok(Some(tenant))`), or a
    /// ready-to-send 429 in the structured envelope with `Retry-After`
    /// and the request id stamped (`Err(response)`).
    pub fn gate(&self, request: &mut HttpRequest) -> Result<Option<String>, HttpResponse> {
        let Some(tenant) = request.header("x-tenant").map(str::to_string) else {
            return Ok(None);
        };
        match self.admit(&tenant) {
            Admission::Admit | Admission::Queued => Ok(Some(tenant)),
            Admission::Reject { retry_after_secs } => {
                let id = request.ensure_request_id();
                let body = format!(
                    r#"{{"error":{{"kind":"rate_limited","message":"request rate limit exceeded, retry after {retry_after_secs}s","request_id":"{id}"}}}}"#
                );
                Err(HttpResponse::status(429)
                    .with_header("Content-Type", "application/json")
                    .with_header("Retry-After", &retry_after_secs.to_string())
                    .with_header("X-Request-Id", &id)
                    .with_body(body))
            }
        }
    }

    /// Report a previously admitted request as finished (response written
    /// or connection torn down), releasing its queue slot.
    pub fn complete(&self, tenant: &str) {
        if let Some(state) = self.state.lock().get_mut(tenant) {
            state.pending = state.pending.saturating_sub(1);
        }
    }

    /// Requests currently admitted and not yet completed for `tenant`.
    pub fn pending(&self, tenant: &str) -> u64 {
        self.state.lock().get(tenant).map_or(0, |s| s.pending)
    }

    /// Per-tenant `(tenant, admitted, queued, rejected)` counter snapshot,
    /// sorted by tenant — the source of the
    /// `odbis_admission_{admitted,queued,rejected}_total` metrics.
    pub fn snapshot(&self) -> Vec<(String, u64, u64, u64)> {
        let map = self.state.lock();
        let mut rows: Vec<_> = map
            .iter()
            .map(|(t, s)| (t.clone(), s.admitted, s.queued, s.rejected))
            .collect();
        rows.sort();
        rows
    }

    /// Render the admission counters in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (metric, pick) in [
            ("admitted", 1usize),
            ("queued", 2usize),
            ("rejected", 3usize),
        ] {
            out.push_str(&format!("# TYPE odbis_admission_{metric}_total counter\n"));
            for row in &snap {
                let value = [row.1, row.2, row.3][pick - 1];
                out.push_str(&format!(
                    "odbis_admission_{metric}_total{{tenant=\"{}\"}} {value}\n",
                    row.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits(rate: f64, burst: f64, queue_depth: u64) -> TenantLimits {
        TenantLimits {
            rate,
            burst,
            queue_depth,
        }
    }

    #[test]
    fn burst_admits_then_queues_then_rejects() {
        // rate so low the bucket effectively never refills mid-test
        let ac = AdmissionControl::with_uniform_limits(limits(0.001, 1.0, 2));
        // bucket starts full at burst: one straight admit
        assert_eq!(ac.admit("t"), Admission::Admit);
        // bucket empty: the next queues (pending 1 < depth 2)
        assert_eq!(ac.admit("t"), Admission::Queued);
        // queue depth reached (pending 2): 429 with a sane Retry-After
        match ac.admit("t") {
            Admission::Reject { retry_after_secs } => assert!(retry_after_secs >= 1),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(ac.pending("t"), 2);
        // completions release queue slots
        ac.complete("t");
        assert_eq!(ac.pending("t"), 1);
        assert_eq!(ac.admit("t"), Admission::Queued);
        let snap = ac.snapshot();
        assert_eq!(snap, vec![("t".to_string(), 1, 2, 1)]);
    }

    #[test]
    fn tenants_do_not_share_buckets() {
        let ac = AdmissionControl::with_uniform_limits(limits(1.0, 1.0, 0));
        assert_eq!(ac.admit("a"), Admission::Admit);
        assert!(matches!(ac.admit("a"), Admission::Reject { .. }));
        // tenant b's bucket is untouched by a's burst
        assert_eq!(ac.admit("b"), Admission::Admit);
    }

    #[test]
    fn zero_rate_means_unlimited() {
        let ac = AdmissionControl::with_uniform_limits(TenantLimits::unlimited());
        for _ in 0..1000 {
            assert_eq!(ac.admit("t"), Admission::Admit);
        }
    }

    /// `limits.rate = 0` with a zero burst must never divide by zero or
    /// build a permanent-reject bucket: the zero-rate early return wins
    /// regardless of the other knobs.
    #[test]
    fn zero_rate_with_zero_burst_and_depth_never_rejects() {
        let ac = AdmissionControl::with_uniform_limits(limits(0.0, 0.0, 0));
        for _ in 0..100 {
            assert_eq!(ac.admit("t"), Admission::Admit);
        }
        // negative rates (bad config arithmetic upstream) are unlimited too
        let ac = AdmissionControl::with_uniform_limits(limits(-5.0, 0.0, 0));
        assert_eq!(ac.admit("t"), Admission::Admit);
    }

    /// A near-zero refill rate computes an astronomical wait; the advice
    /// must clamp into [1, MAX_RETRY_AFTER_SECS] instead of truncating a
    /// huge (or infinite) f64 through `as u64`.
    #[test]
    fn tiny_rate_clamps_retry_after() {
        let ac = AdmissionControl::with_uniform_limits(limits(1e-12, 1.0, 0));
        assert_eq!(ac.admit("t"), Admission::Admit);
        match ac.admit("t") {
            Admission::Reject { retry_after_secs } => {
                assert!(
                    (1..=MAX_RETRY_AFTER_SECS).contains(&retry_after_secs),
                    "unclamped Retry-After: {retry_after_secs}"
                );
                assert_eq!(retry_after_secs, MAX_RETRY_AFTER_SECS);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    /// Huge rates stay sane: the bucket holds burst tokens, rejections
    /// (when queue depth is exhausted) advise at least one whole second,
    /// and nothing overflows.
    #[test]
    fn huge_rate_still_behaves() {
        let ac = AdmissionControl::with_uniform_limits(limits(1e18, 2.0, 0));
        assert_eq!(ac.admit("t"), Admission::Admit);
        assert_eq!(ac.admit("t"), Admission::Admit);
        // even if a reject happens before any refill, the advice is >= 1
        let ac = AdmissionControl::with_uniform_limits(limits(f64::MAX, 1.0, 0));
        assert_eq!(ac.admit("t"), Admission::Admit);
        match ac.admit("t") {
            Admission::Admit | Admission::Queued => {}
            Admission::Reject { retry_after_secs } => {
                assert!((1..=MAX_RETRY_AFTER_SECS).contains(&retry_after_secs));
            }
        }
    }

    #[test]
    fn bucket_refills_over_time() {
        let ac = AdmissionControl::with_uniform_limits(limits(1000.0, 1.0, 0));
        assert_eq!(ac.admit("t"), Admission::Admit);
        assert!(matches!(ac.admit("t"), Admission::Reject { .. }));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(ac.admit("t"), Admission::Admit, "token should have accrued");
    }

    #[test]
    fn gate_skips_anonymous_and_rejects_with_envelope() {
        use crate::http::{HttpRequest, Method};
        let ac = AdmissionControl::with_uniform_limits(limits(0.001, 1.0, 0));
        // no tenant header: not gated
        let mut anon = HttpRequest::new(Method::Get, "/x");
        assert_eq!(ac.gate(&mut anon).unwrap(), None);
        // first tenant request admitted, second rejected with the envelope
        let mut req = HttpRequest::new(Method::Get, "/x").with_header("X-Tenant", "acme");
        assert_eq!(ac.gate(&mut req).unwrap(), Some("acme".to_string()));
        let mut req = HttpRequest::new(Method::Get, "/x")
            .with_header("X-Tenant", "acme")
            .with_header("X-Request-Id", "trace-me");
        let resp = ac.gate(&mut req).unwrap_err();
        assert_eq!(resp.status, 429);
        assert!(resp.headers.contains_key("Retry-After"));
        assert_eq!(resp.headers.get("X-Request-Id").unwrap(), "trace-me");
        let body = resp.body_text();
        assert!(body.contains(r#""kind":"rate_limited""#), "{body}");
        assert!(body.contains(r#""request_id":"trace-me""#), "{body}");
    }

    #[test]
    fn prometheus_rendering_lists_all_three_counters() {
        let ac = AdmissionControl::with_uniform_limits(limits(1.0, 1.0, 0));
        let _ = ac.admit("t");
        let _ = ac.admit("t");
        let text = ac.render_prometheus();
        assert!(text.contains("# TYPE odbis_admission_admitted_total counter"));
        assert!(text.contains("odbis_admission_admitted_total{tenant=\"t\"} 1"));
        assert!(text.contains("odbis_admission_rejected_total{tenant=\"t\"} 1"));
        assert!(text.contains("odbis_admission_queued_total{tenant=\"t\"} 0"));
    }
}
