//! Routing and filter (middleware) chain.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::http::{HttpRequest, HttpResponse, Method};

/// Path parameters extracted from `:name` route segments.
pub type PathParams = BTreeMap<String, String>;

/// A request handler.
pub type Handler = Arc<dyn Fn(&HttpRequest, &PathParams) -> HttpResponse + Send + Sync>;

/// A filter: runs before routing; may enrich the request (attributes) or
/// short-circuit with a response (the Servlet-filter / Spring Security
/// chain analogue).
pub type Filter = Arc<dyn Fn(&mut HttpRequest) -> Option<HttpResponse> + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

#[derive(Debug, Clone, PartialEq)]
enum Segment {
    Literal(String),
    Param(String),
}

fn parse_segments(pattern: &str) -> Vec<Segment> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| {
            if let Some(name) = s.strip_prefix(':') {
                Segment::Param(name.to_string())
            } else {
                Segment::Literal(s.to_string())
            }
        })
        .collect()
}

/// A cleanup hook: runs after every dispatch, whatever the outcome
/// (success, filter short-circuit, route miss, handler panic). Used for
/// per-request thread-local teardown, e.g. clearing the ambient telemetry
/// request id the identity filter installed.
pub type Finalizer = Arc<dyn Fn() + Send + Sync>;

/// Router: ordered route table with `:param` segments plus a filter chain.
#[derive(Clone, Default)]
pub struct Router {
    routes: Vec<Arc<Route>>,
    filters: Vec<Filter>,
    finalizers: Vec<Finalizer>,
}

impl Router {
    /// Empty router.
    pub fn new() -> Self {
        Router {
            routes: Vec::new(),
            filters: Vec::new(),
            finalizers: Vec::new(),
        }
    }

    /// Register a route, e.g. `route(Method::Get, "/reports/:id", handler)`.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&HttpRequest, &PathParams) -> HttpResponse + Send + Sync + 'static,
    ) -> &mut Self {
        self.routes.push(Arc::new(Route {
            method,
            segments: parse_segments(pattern),
            handler: Arc::new(handler),
        }));
        self
    }

    /// Append a filter; filters run in registration order before routing.
    pub fn filter(
        &mut self,
        f: impl Fn(&mut HttpRequest) -> Option<HttpResponse> + Send + Sync + 'static,
    ) -> &mut Self {
        self.filters.push(Arc::new(f));
        self
    }

    /// Append a cleanup hook that runs after every dispatch — even when a
    /// filter short-circuited or the handler panicked.
    pub fn finally(&mut self, f: impl Fn() + Send + Sync + 'static) -> &mut Self {
        self.finalizers.push(Arc::new(f));
        self
    }

    /// Number of registered routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    fn match_route(&self, method: Method, path: &str) -> Option<(Arc<Route>, PathParams)> {
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        'routes: for route in &self.routes {
            if route.method != method || route.segments.len() != parts.len() {
                continue;
            }
            let mut params = PathParams::new();
            for (seg, part) in route.segments.iter().zip(&parts) {
                match seg {
                    Segment::Literal(l) if l == part => {}
                    Segment::Literal(_) => continue 'routes,
                    Segment::Param(name) => {
                        params.insert(name.clone(), (*part).to_string());
                    }
                }
            }
            return Some((Arc::clone(route), params));
        }
        None
    }

    /// Run the filter chain and dispatch to the matching route.
    ///
    /// Establishes the request's identity first (adopting a client
    /// `X-Request-Id` or minting one) and echoes it on every response, so
    /// any status — 200, 404, 429, 500 — is traceable end to end.
    ///
    /// The whole chain — filters *and* handler — runs inside one panic
    /// boundary: a panicking filter or handler becomes a structured 500
    /// envelope instead of taking the worker thread down (which would
    /// silently shrink the pool for the life of the process).
    pub fn dispatch(&self, mut request: HttpRequest) -> HttpResponse {
        let request_id = request.ensure_request_id();
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.dispatch_inner(request)
        }))
        .unwrap_or_else(|_| Self::panic_envelope_for(&request_id));
        // cleanup hooks run outside the panic boundary so per-request
        // thread-local state is torn down even on the panic path
        for f in &self.finalizers {
            f();
        }
        // a handler that already stamped an id (rare) wins
        if response.headers.contains_key("X-Request-Id") {
            response
        } else {
            response.with_header("X-Request-Id", &request_id)
        }
    }

    /// The structured `{"error":{...}}` body a panic turns into — the same
    /// envelope shape the platform API uses for every client-visible error.
    pub(crate) fn panic_envelope() -> HttpResponse {
        HttpResponse::status(500)
            .with_header("Content-Type", "application/json")
            .with_body(r#"{"error":{"kind":"internal","message":"handler panicked"}}"#)
    }

    /// [`Self::panic_envelope`] carrying the request id (the id charset is
    /// validated on entry, so embedding it in JSON needs no escaping).
    fn panic_envelope_for(request_id: &str) -> HttpResponse {
        HttpResponse::status(500)
            .with_header("Content-Type", "application/json")
            .with_body(format!(
                r#"{{"error":{{"kind":"internal","message":"handler panicked","request_id":"{request_id}"}}}}"#
            ))
    }

    fn dispatch_inner(&self, mut request: HttpRequest) -> HttpResponse {
        for f in &self.filters {
            if let Some(short_circuit) = f(&mut request) {
                return short_circuit;
            }
        }
        match self.match_route(request.method, &request.path) {
            None => {
                // distinguish 405 from 404
                let other_method = [Method::Get, Method::Post, Method::Put, Method::Delete]
                    .into_iter()
                    .filter(|&m| m != request.method)
                    .any(|m| self.match_route(m, &request.path).is_some());
                // route misses answer in the same JSON envelope shape as
                // every platform error, so clients parse one format; the
                // request id rides inside (dispatch() validated/minted it)
                let id = request.request_id().unwrap_or_default();
                if other_method {
                    HttpResponse::status(405)
                        .with_header("Content-Type", "application/json")
                        .with_body(format!(
                            r#"{{"error":{{"kind":"method_not_allowed","message":"method not allowed for this path","request_id":"{id}"}}}}"#
                        ))
                } else {
                    HttpResponse::status(404)
                        .with_header("Content-Type", "application/json")
                        .with_body(format!(
                            r#"{{"error":{{"kind":"not_found","message":"no such route","request_id":"{id}"}}}}"#
                        ))
                }
            }
            Some((route, params)) => (route.handler)(&request, &params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.route(Method::Get, "/ping", |_, _| HttpResponse::text("pong"));
        r.route(Method::Get, "/reports/:id", |_, params| {
            HttpResponse::text(format!("report {}", params["id"]))
        });
        r.route(Method::Post, "/reports/:id/run", |req, params| {
            HttpResponse::text(format!("ran {} with {}", params["id"], req.body_text()))
        });
        r
    }

    fn get(path: &str) -> HttpRequest {
        HttpRequest::new(Method::Get, path)
    }

    #[test]
    fn finalizers_run_after_every_dispatch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut r = router();
        r.route(Method::Get, "/boom", |_, _| panic!("boom"));
        let runs = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&runs);
        r.finally(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(r.dispatch(get("/ping")).status, 200);
        assert_eq!(r.dispatch(get("/missing")).status, 404);
        assert_eq!(r.dispatch(get("/boom")).status, 500);
        assert_eq!(runs.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn literal_and_param_matching() {
        let r = router();
        assert_eq!(r.dispatch(get("/ping")).body_text(), "pong");
        assert_eq!(r.dispatch(get("/reports/42")).body_text(), "report 42");
        let resp = r.dispatch(HttpRequest::new(Method::Post, "/reports/7/run").with_body("params"));
        assert_eq!(resp.body_text(), "ran 7 with params");
    }

    #[test]
    fn not_found_and_method_not_allowed() {
        let r = router();
        assert_eq!(r.dispatch(get("/nope")).status, 404);
        assert_eq!(r.dispatch(get("/reports/1/run")).status, 405);
        assert_eq!(
            r.dispatch(HttpRequest::new(Method::Delete, "/ping")).status,
            405
        );
        // trailing segments don't match
        assert_eq!(r.dispatch(get("/reports/1/extra/deep")).status, 404);
    }

    #[test]
    fn filters_run_in_order_and_short_circuit() {
        let mut r = router();
        r.filter(|req| {
            req.attributes.insert("trace".into(), "on".into());
            None
        });
        r.filter(|req| {
            if req.header("authorization").is_none() {
                Some(HttpResponse::unauthorized("token required"))
            } else {
                None
            }
        });
        r.route(Method::Get, "/whoami", |req, _| {
            HttpResponse::text(req.attributes.get("trace").cloned().unwrap_or_default())
        });
        assert_eq!(r.dispatch(get("/ping")).status, 401);
        let ok = r.dispatch(get("/whoami").with_header("authorization", "Bearer x"));
        assert_eq!(ok.body_text(), "on");
    }

    #[test]
    fn panicking_handler_becomes_500() {
        let mut r = Router::new();
        r.route(Method::Get, "/boom", |_, _| panic!("bug"));
        let resp = r.dispatch(get("/boom"));
        assert_eq!(resp.status, 500);
        // the body is the structured error envelope, not loose text
        assert!(
            resp.body_text().contains(r#""error""#),
            "{}",
            resp.body_text()
        );
        assert_eq!(
            resp.headers.get("Content-Type").map(String::as_str),
            Some("application/json")
        );
    }

    #[test]
    fn every_response_echoes_a_request_id() {
        let r = router();
        // minted when the client sends none, on hits and misses alike
        let ok = r.dispatch(get("/ping"));
        assert!(ok.headers["X-Request-Id"].starts_with("req-"));
        let missing = r.dispatch(get("/nope"));
        let id = missing.headers["X-Request-Id"].clone();
        assert!(
            missing
                .body_text()
                .contains(&format!(r#""request_id":"{id}""#)),
            "{}",
            missing.body_text()
        );
        // a client-supplied id is adopted and echoed verbatim
        let resp = r.dispatch(get("/ping").with_header("X-Request-Id", "trace-7"));
        assert_eq!(resp.headers["X-Request-Id"], "trace-7");
    }

    #[test]
    fn panic_envelope_carries_the_request_id() {
        let mut r = Router::new();
        r.route(Method::Get, "/boom", |_, _| panic!("bug"));
        let resp = r.dispatch(get("/boom").with_header("X-Request-Id", "blast-1"));
        assert_eq!(resp.status, 500);
        assert!(resp.body_text().contains(r#""request_id":"blast-1""#));
        assert_eq!(resp.headers["X-Request-Id"], "blast-1");
    }

    #[test]
    fn panicking_filter_becomes_500_too() {
        // filters run before the old per-handler catch_unwind; a panic
        // there used to escape dispatch entirely and kill the worker
        let mut r = router();
        r.filter(|req| {
            if req.path == "/ping" {
                panic!("filter bug");
            }
            None
        });
        let resp = r.dispatch(get("/ping"));
        assert_eq!(resp.status, 500);
        assert!(resp.body_text().contains(r#""error""#));
        // other paths are unaffected
        assert_eq!(r.dispatch(get("/reports/42")).status, 200);
    }
}
