//! # odbis-web
//!
//! The web tier of the ODBIS platform — the reproduction's substitute for
//! the Apache Tomcat container and JSF presentation layer of the paper's
//! technical architecture (§3.3), serving the "web browser" access tool of
//! the end-users layer (§3.1).
//!
//! A real HTTP/1.1 server over `std::net`: loopback listener, crossbeam
//! worker pool, `:param` routing, a filter (middleware) chain for security,
//! and JSON/HTML/text responders. A matching minimal client supports tests
//! and the delivery service's web-service channel.
//!
//! ```
//! use odbis_web::{http_get, HttpResponse, HttpServer, Method, Router};
//!
//! let mut router = Router::new();
//! router.route(Method::Get, "/ping", |_, _| HttpResponse::text("pong"));
//! let server = HttpServer::start(router, 2).unwrap();
//! let (status, body) = http_get(&server.addr().to_string(), "/ping").unwrap();
//! assert_eq!((status, body.as_str()), (200, "pong"));
//! ```

#![warn(missing_docs)]

mod client;
mod http;
mod router;
mod server;

pub use client::{http_get, http_post, http_request};
pub use http::{percent_decode, percent_decode_query, HttpRequest, HttpResponse, Method};
pub use router::{Filter, Handler, PathParams, Router};
pub use server::HttpServer;
