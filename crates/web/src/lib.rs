//! # odbis-web
//!
//! The web tier of the ODBIS platform — the reproduction's substitute for
//! the Apache Tomcat container and JSF presentation layer of the paper's
//! technical architecture (§3.3), serving the "web browser" access tool of
//! the end-users layer (§3.1).
//!
//! A real HTTP/1.1 server over `std::net` with two interchangeable
//! backends behind one [`HttpServer`] facade: a hand-rolled epoll
//! **reactor** (edge-triggered event loop; idle keep-alive connections
//! cost a file descriptor, not a thread) and the portable
//! **threaded** worker pool. Per-tenant [`AdmissionControl`] (token-bucket
//! rate + queue-depth backpressure) gates requests at parse time, and
//! every request carries an `X-Request-Id` end to end. Routing supports
//! `:param` segments plus a filter (middleware) chain; a matching minimal
//! client supports tests and the delivery service's web-service channel.
//!
//! ```
//! use odbis_web::{http_get, HttpResponse, HttpServer, Method, Router};
//!
//! let mut router = Router::new();
//! router.route(Method::Get, "/ping", |_, _| HttpResponse::text("pong"));
//! let server = HttpServer::start(router, 2).unwrap();
//! let (status, body) = http_get(&server.addr().to_string(), "/ping").unwrap();
//! assert_eq!((status, body.as_str()), (200, "pong"));
//! ```

#![warn(missing_docs)]

mod admission;
mod client;
mod http;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod reactor;
mod router;
mod server;
mod threaded;

pub use admission::{Admission, AdmissionControl, TenantLimits, MAX_RETRY_AFTER_SECS};
pub use client::{http_get, http_get_accept, http_post, http_request};
pub use http::{
    generate_request_id, percent_decode, percent_decode_query, HttpRequest, HttpResponse, Method,
    RequestParser, ResponseSlot,
};
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub use reactor::ReactorServer;
pub use router::{Filter, Finalizer, Handler, PathParams, Router};
pub use server::{Backend, HttpServer, ServerBuilder};
pub use threaded::ThreadedServer;
