//! Event-loop HTTP server: a hand-rolled epoll reactor.
//!
//! The threaded backend ([`crate::threaded`]) spends one OS thread per
//! concurrent connection, so its concurrency ceiling is the pool size and
//! 10k mostly-idle keep-alive clients would need 10k stacks. This module
//! replaces that with the classic reactor shape:
//!
//! - one **reactor thread** owns every socket, registered edge-triggered
//!   with epoll; idle connections cost a file descriptor and a small
//!   parser buffer, nothing more;
//! - each connection is a **state machine**: bytes are drained into an
//!   incremental [`RequestParser`] as they arrive, responses are staged
//!   into a write buffer and flushed as the socket accepts them;
//! - parsed requests are handed to a **bounded worker pool** which runs
//!   the router (handlers may block on locks or disks — the reactor never
//!   does) and posts the serialized response back through a completion
//!   queue plus a wake pipe;
//! - at most **one request per connection is in flight** at a time, so
//!   pipelined requests are answered strictly in order;
//! - per-tenant [`AdmissionControl`] runs the moment a request is parsed:
//!   over-limit tenants get their 429 straight from the reactor thread,
//!   before any worker capacity is spent on them.
//!
//! epoll is reached through raw syscalls (`sys` below) because the
//! workspace is offline and carries no `libc`; everything else — the
//! nonblocking listener, the streams, the worker wake pipe
//! (`UnixStream::pair`) — is plain `std`. Non-Linux builds fall back to
//! the threaded backend via the [`crate::server`] facade.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::admission::AdmissionControl;
use crate::http::{HttpRequest, HttpResponse, RequestParser};
use crate::router::Router;

/// Raw epoll syscalls. The workspace has no `libc` crate (offline, stub
/// registry), so the three syscalls the reactor needs are issued directly
/// with `asm!` — numbers and struct layout per the Linux ABI.
mod sys {
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: usize = 0o2000000;

    /// `struct epoll_event`. Packed on x86_64 (the kernel ABI packs it
    /// there so 32-bit and 64-bit layouts agree); naturally aligned
    /// everywhere else.
    #[derive(Clone, Copy, Default)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_WAIT: usize = 232;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") a5,
                in("x5") a6,
                options(nostack),
            );
        }
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    pub fn epoll_create1() -> io::Result<OwnedFd> {
        #[cfg(target_arch = "x86_64")]
        let ret = unsafe { syscall4(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) };
        #[cfg(target_arch = "aarch64")]
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        let fd = check(ret)? as RawFd;
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    pub fn epoll_ctl(
        epfd: RawFd,
        op: i32,
        fd: RawFd,
        event: Option<&mut EpollEvent>,
    ) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        #[cfg(target_arch = "x86_64")]
        let ret = unsafe {
            syscall4(
                nr::EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                ptr as usize,
            )
        };
        #[cfg(target_arch = "aarch64")]
        let ret = unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        };
        check(ret).map(|_| ())
    }

    pub fn epoll_wait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        loop {
            #[cfg(target_arch = "x86_64")]
            let ret = unsafe {
                syscall4(
                    nr::EPOLL_WAIT,
                    epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                )
            };
            #[cfg(target_arch = "aarch64")]
            let ret = unsafe {
                // no epoll_wait syscall on aarch64; epoll_pwait with a null
                // sigmask is the kernel's own compatibility spelling
                syscall6(
                    nr::EPOLL_PWAIT,
                    epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0,
                    0,
                )
            };
            match check(ret) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }
}

use sys::EpollEvent;

/// Thin ownership wrapper over the epoll fd.
struct Epoll {
    fd: std::os::fd::OwnedFd,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            fd: sys::epoll_create1()?,
        })
    }

    fn add(&self, fd: std::os::fd::RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        sys::epoll_ctl(self.fd.as_raw_fd(), sys::EPOLL_CTL_ADD, fd, Some(&mut ev))
    }

    fn modify(&self, fd: std::os::fd::RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        sys::epoll_ctl(self.fd.as_raw_fd(), sys::EPOLL_CTL_MOD, fd, Some(&mut ev))
    }

    fn delete(&self, fd: std::os::fd::RawFd) -> io::Result<()> {
        sys::epoll_ctl(self.fd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, None)
    }

    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        sys::epoll_wait(self.fd.as_raw_fd(), events, timeout_ms)
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Interest every live connection always has.
const BASE_INTEREST: u32 = sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLET;

/// A request handed to the worker pool: connection token, the parsed
/// request, and whether the client asked for close-after.
type Job = (u64, HttpRequest, bool);

/// A finished response coming back: token, serialized bytes, close-after.
type Completion = (u64, Vec<u8>, bool);

/// Context the per-connection state machine needs besides its own state.
struct Ctx {
    job_tx: Sender<Job>,
    admission: Option<Arc<AdmissionControl>>,
    served: Arc<AtomicU64>,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    write_buf: Vec<u8>,
    written: usize,
    /// A request has been dispatched and its response not yet queued.
    in_flight: bool,
    /// Close once the write buffer drains.
    close_after: bool,
    /// The peer has stopped sending (EOF / RDHUP).
    peer_closed: bool,
    /// Events currently registered with epoll.
    registered: u32,
    last_activity: Instant,
    /// Tenant whose admission slot this connection's in-flight request
    /// holds; released on completion or teardown, whichever comes first.
    tenant: Option<String>,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(),
            write_buf: Vec::new(),
            written: 0,
            in_flight: false,
            close_after: false,
            peer_closed: false,
            registered: BASE_INTEREST,
            last_activity: now,
            tenant: None,
        }
    }

    fn write_pending(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// The epoll interest this connection's state calls for.
    fn desired_interest(&self) -> u32 {
        if self.write_pending() {
            BASE_INTEREST | sys::EPOLLOUT
        } else {
            BASE_INTEREST
        }
    }

    /// Drain the socket (edge-triggered: until `WouldBlock`), then parse
    /// and dispatch. Returns `false` to tear the connection down.
    fn on_readable(&mut self, token: u64, ctx: &Ctx) -> bool {
        // chaos: the connection dies before the request is read — the
        // client saw zero response bytes (mirrors the threaded backend)
        if odbis_chaos::triggered("http.read") {
            return false;
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    self.parser.feed(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        self.pump(token, ctx)
    }

    /// Parse buffered bytes into requests and dispatch them, one in
    /// flight at a time so pipelined responses keep request order.
    fn pump(&mut self, token: u64, ctx: &Ctx) -> bool {
        while !self.in_flight && !self.write_pending() && !self.close_after {
            match self.parser.try_next() {
                Ok(None) => break,
                Ok(Some(mut request)) => {
                    self.last_activity = Instant::now();
                    let close_after = request.wants_close();
                    if let Some(gate) = &ctx.admission {
                        match gate.gate(&mut request) {
                            Ok(tenant) => self.tenant = tenant,
                            Err(reject) => {
                                // over-limit: the 429 costs no worker time
                                ctx.served.fetch_add(1, Ordering::Relaxed);
                                if !self.queue_response(reject.to_bytes(!close_after), close_after)
                                {
                                    return false;
                                }
                                continue;
                            }
                        }
                    }
                    self.in_flight = true;
                    self.close_after = close_after;
                    if ctx.job_tx.try_send((token, request, close_after)).is_err() {
                        // worker queue saturated: shed with a retryable 503
                        // instead of buffering unboundedly in the reactor
                        self.in_flight = false;
                        if let (Some(gate), Some(t)) = (&ctx.admission, self.tenant.take()) {
                            gate.complete(&t);
                        }
                        ctx.served.fetch_add(1, Ordering::Relaxed);
                        let resp = overloaded_response();
                        if !self.queue_response(resp.to_bytes(false), true) {
                            return false;
                        }
                    }
                }
                Err(e) => {
                    ctx.served.fetch_add(1, Ordering::Relaxed);
                    let resp = HttpResponse::bad_request(&e);
                    if !self.queue_response(resp.to_bytes(false), true) {
                        return false;
                    }
                    break;
                }
            }
        }
        if self.peer_closed && !self.in_flight && !self.write_pending() {
            return false; // conversation over
        }
        true
    }

    /// Stage a serialized response and start flushing it. Returns `false`
    /// to tear the connection down.
    fn queue_response(&mut self, bytes: Vec<u8>, close_after: bool) -> bool {
        // chaos: the socket dies before any response byte — never
        // mid-response, so clients see a clean drop (retryable), not a
        // torn payload
        if odbis_chaos::triggered("http.write") {
            return false;
        }
        debug_assert!(
            !self.write_pending(),
            "one response in the buffer at a time"
        );
        self.write_buf = bytes;
        self.written = 0;
        self.close_after = self.close_after || close_after;
        self.flush()
    }

    /// Write as much of the staged response as the socket accepts.
    /// Returns `false` to tear the connection down.
    fn flush(&mut self) -> bool {
        while self.write_pending() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.written += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if !self.write_pending() {
            self.write_buf = Vec::new();
            self.written = 0;
            if self.close_after {
                return false; // response delivered; honor Connection: close
            }
        }
        true
    }

    /// The socket turned writable: continue the flush, then see whether a
    /// pipelined request was waiting behind the response.
    fn on_writable(&mut self, token: u64, ctx: &Ctx) -> bool {
        if !self.flush() {
            return false;
        }
        self.pump(token, ctx)
    }
}

/// 503 for a saturated worker queue — same retryable shape as the
/// platform's transient-fault path.
fn overloaded_response() -> HttpResponse {
    HttpResponse::status(503)
        .with_header("Content-Type", "application/json")
        .with_header("Retry-After", "1")
        .with_body(
            r#"{"error":{"kind":"unavailable","message":"server overloaded, retry shortly"}}"#,
        )
}

/// The reactor-backed HTTP server. Usually constructed through the
/// [`crate::ServerBuilder`] facade rather than directly.
pub struct ReactorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    open: Arc<AtomicU64>,
    wake: UnixStream,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorServer {
    /// Start serving `router` on an ephemeral loopback port: one reactor
    /// thread plus `worker_count` handler workers. `admission` gates
    /// requests per tenant; `idle_timeout` reaps keep-alive connections
    /// that go quiet.
    pub fn start(
        router: Router,
        worker_count: usize,
        admission: Option<Arc<AdmissionControl>>,
        idle_timeout: Duration,
    ) -> io::Result<ReactorServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let open = Arc::new(AtomicU64::new(0));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let (job_tx, job_rx) = bounded::<Job>(1024);

        let router = Arc::new(router);
        let mut workers = Vec::with_capacity(worker_count.max(1));
        for _ in 0..worker_count.max(1) {
            workers.push(spawn_worker(
                Arc::clone(&router),
                job_rx.clone(),
                Arc::clone(&completions),
                wake_tx.try_clone()?,
                Arc::clone(&shutdown),
                Arc::clone(&served),
            ));
        }

        let ctx = Ctx {
            job_tx,
            admission,
            served: Arc::clone(&served),
        };
        let mut reactor = Reactor {
            epoll: Epoll::new()?,
            listener,
            wake_rx,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            ctx,
            completions,
            shutdown: Arc::clone(&shutdown),
            open: Arc::clone(&open),
            idle_timeout,
        };
        reactor
            .epoll
            .add(reactor.listener.as_raw_fd(), TOKEN_LISTENER, BASE_INTEREST)
            .and_then(|_| {
                reactor
                    .epoll
                    .add(reactor.wake_rx.as_raw_fd(), TOKEN_WAKE, BASE_INTEREST)
            })?;
        let reactor_thread = std::thread::spawn(move || reactor.run());

        Ok(ReactorServer {
            addr,
            shutdown,
            served,
            open,
            wake: wake_tx,
            reactor: Some(reactor_thread),
            workers,
        })
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far (responses produced, including 4xx/5xx).
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections currently held open by the reactor — the number the
    /// connection-scaling bench watches climb past 10k.
    pub fn connections_open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Stop accepting, drop every connection, join all threads. Bounded
    /// by the in-flight request, not the backlog: queued jobs are shed.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.wake.write(&[1]);
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        // the reactor owned the job sender; with it gone the workers see
        // the channel disconnect once the (shed) backlog drains
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_worker(
    router: Arc<Router>,
    jobs: Receiver<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    mut wake: UnixStream,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok((token, request, close_after)) = jobs.recv() {
            if shutdown.load(Ordering::Relaxed) {
                // shutting down: shed the queued backlog instead of
                // serving it, so stop() is bounded by the in-flight
                // request, not by queue depth
                continue;
            }
            // dispatch() already catches panics; this boundary keeps even
            // a future regression there from shrinking the pool
            let mut response =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router.dispatch(request)))
                    .unwrap_or_else(|_| Router::panic_envelope());
            served.fetch_add(1, Ordering::Relaxed);
            if let Some(slot) = response.take_deferred() {
                // long-poll: park the connection on its completion slot
                // instead of occupying this worker. The waker re-enters
                // the event loop exactly like a finished dispatch, so a
                // parked watcher costs an fd, not a pool thread.
                if let Ok(mut wake_tx) = wake.try_clone() {
                    let placeholder = response;
                    let completions = Arc::clone(&completions);
                    slot.complete_with(move |mut resp| {
                        for (k, v) in placeholder.headers {
                            resp.headers.entry(k).or_insert(v);
                        }
                        let bytes = resp.to_bytes(!close_after);
                        completions.lock().push((token, bytes, close_after));
                        let _ = wake_tx.write(&[1]);
                    });
                    continue;
                }
                // no wake pipe to hand the waker (clone failed): degrade
                // to the threaded pool's blocking behavior
                let placeholder = response;
                let mut real = slot
                    .wait(Duration::from_secs(75))
                    .unwrap_or_else(|| HttpResponse::status(504));
                for (k, v) in placeholder.headers {
                    real.headers.entry(k).or_insert(v);
                }
                response = real;
            }
            let bytes = response.to_bytes(!close_after);
            completions.lock().push((token, bytes, close_after));
            // a full pipe means a wake is already pending — that's enough
            let _ = wake.write(&[1]);
        }
    })
}

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    ctx: Ctx,
    completions: Arc<Mutex<Vec<Completion>>>,
    shutdown: Arc<AtomicBool>,
    open: Arc<AtomicU64>,
    idle_timeout: Duration,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = vec![EpollEvent::default(); 1024];
        let mut last_sweep = Instant::now();
        while let Ok(n) = self.epoll.wait(&mut events, 200) {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            for ev in &events[..n] {
                // copy out of the (possibly packed) struct before use
                let token = ev.data;
                let flags = ev.events;
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    token => self.conn_event(token, flags),
                }
            }
            self.drain_completions();
            if last_sweep.elapsed() >= Duration::from_millis(200) {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        // teardown: release admission slots held by in-flight requests so
        // per-tenant pending counts stay truthful across a restart
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.teardown(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // chaos: the accepted socket drops before any byte is
                    // exchanged (client sees a clean reset, retryable)
                    if odbis_chaos::triggered("http.accept") {
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), token, BASE_INTEREST)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream, Instant::now()));
                    self.open.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // transient accept failures (e.g. fd exhaustion): leave the
                // edge armed; the next connection re-triggers it
                Err(_) => break,
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    fn conn_event(&mut self, token: u64, flags: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // already torn down; stale edge
        };
        if flags & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.teardown(token);
            return;
        }
        let mut alive = true;
        if flags & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            alive = conn.on_readable(token, &self.ctx);
        }
        if alive && flags & sys::EPOLLOUT != 0 {
            let conn = self.conns.get_mut(&token).expect("still present");
            alive = conn.on_writable(token, &self.ctx);
        }
        self.finish_event(token, alive);
    }

    /// Process responses posted by the worker pool.
    fn drain_completions(&mut self) {
        let batch = std::mem::take(&mut *self.completions.lock());
        for (token, bytes, close_after) in batch {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection died while the handler ran
            };
            conn.in_flight = false;
            if let (Some(gate), Some(t)) = (&self.ctx.admission, conn.tenant.take()) {
                gate.complete(&t);
            }
            let mut alive = conn.queue_response(bytes, close_after);
            if alive {
                // a pipelined request may have been waiting on this slot
                alive = conn.pump(token, &self.ctx);
            }
            self.finish_event(token, alive);
        }
    }

    /// Apply a state machine verdict: tear down or re-sync epoll interest.
    fn finish_event(&mut self, token: u64, alive: bool) {
        if !alive {
            self.teardown(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = conn.desired_interest();
        if desired != conn.registered
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_ok()
        {
            conn.registered = desired;
        }
    }

    fn teardown(&mut self, token: u64) {
        if let Some(mut conn) = self.conns.remove(&token) {
            if let (Some(gate), Some(t)) = (&self.ctx.admission, conn.tenant.take()) {
                gate.complete(&t);
            }
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.open.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Reap keep-alive connections with no activity inside the idle
    /// timeout — the guard that lets the reactor hold 10k sockets without
    /// letting abandoned ones accumulate forever.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !c.in_flight
                    && !c.write_pending()
                    && now.duration_since(c.last_activity) > self.idle_timeout
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            self.teardown(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::TenantLimits;
    use crate::http::Method;

    fn test_router() -> Router {
        let mut r = Router::new();
        r.route(Method::Get, "/hello", |_, _| HttpResponse::text("world"));
        r.route(Method::Get, "/echo/:word", |_, p| {
            HttpResponse::text(p["word"].clone())
        });
        r
    }

    fn start(router: Router, workers: usize) -> ReactorServer {
        ReactorServer::start(router, workers, None, Duration::from_secs(60)).unwrap()
    }

    fn read_to_end(stream: &mut TcpStream) -> String {
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        buf
    }

    #[test]
    fn epoll_event_roundtrip_on_a_socketpair() {
        // low-level sanity for the raw syscalls before anything sits on them
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 7, sys::EPOLLIN | sys::EPOLLET)
            .unwrap();
        let mut events = vec![EpollEvent::default(); 8];
        // nothing readable yet
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, flags) = (events[0].data, events[0].events);
        assert_eq!(data, 7);
        assert_ne!(flags & sys::EPOLLIN, 0);
    }

    #[test]
    fn serves_basic_requests() {
        let server = start(test_router(), 2);
        let (status, body) = crate::client::http_get(&server.addr().to_string(), "/hello").unwrap();
        assert_eq!((status, body.as_str()), (200, "world"));
        let (status, _) = crate::client::http_get(&server.addr().to_string(), "/missing").unwrap();
        assert_eq!(status, 404);
        assert_eq!(server.requests_served(), 2);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = start(test_router(), 4);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // three requests in one write; the last asks for close
        stream
            .write_all(
                b"GET /echo/one HTTP/1.1\r\n\r\n\
                  GET /echo/two HTTP/1.1\r\n\r\n\
                  GET /echo/three HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let all = read_to_end(&mut stream);
        let one = all.find("one").expect("first response");
        let two = all.find("two").expect("second response");
        let three = all.find("three").expect("third response");
        assert!(one < two && two < three, "responses out of order: {all}");
        assert_eq!(server.requests_served(), 3);
    }

    #[test]
    fn idle_connections_cost_nothing_but_fds() {
        let server = start(test_router(), 1);
        let mut idle = Vec::new();
        for _ in 0..200 {
            idle.push(TcpStream::connect(server.addr()).unwrap());
        }
        // wait for the reactor to register them all
        let t0 = Instant::now();
        while server.connections_open() < 200 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            server.connections_open() >= 200,
            "only {} connections registered",
            server.connections_open()
        );
        // a single worker still answers promptly underneath 200 idlers
        let (status, body) = crate::client::http_get(&server.addr().to_string(), "/hello").unwrap();
        assert_eq!((status, body.as_str()), (200, "world"));
        server.shutdown();
    }

    #[test]
    fn slow_loris_does_not_block_other_clients() {
        let server = start(test_router(), 1);
        // a half-written request parks in its parser buffer...
        let mut loris = TcpStream::connect(server.addr()).unwrap();
        loris.write_all(b"GET /hello HT").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // ...while a complete request sails past it
        let (status, body) = crate::client::http_get(&server.addr().to_string(), "/hello").unwrap();
        assert_eq!((status, body.as_str()), (200, "world"));
        server.shutdown();
    }

    #[test]
    fn idle_timeout_reaps_quiet_connections() {
        let server =
            ReactorServer::start(test_router(), 1, None, Duration::from_millis(150)).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let t0 = Instant::now();
        while server.connections_open() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(10));
        }
        // the reactor hangs up on the idler: read returns EOF
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        let n = conn.read(&mut buf).unwrap();
        assert_eq!(n, 0, "expected EOF from the idle sweep");
        server.shutdown();
    }

    #[test]
    fn admission_rejects_over_limit_with_retry_after() {
        let gate = Arc::new(AdmissionControl::with_uniform_limits(TenantLimits {
            rate: 0.001,
            burst: 1.0,
            queue_depth: 0,
        }));
        let server =
            ReactorServer::start(test_router(), 2, Some(gate), Duration::from_secs(60)).unwrap();
        let send = |label: &str| {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.write_all(
                format!(
                    "GET /hello HTTP/1.1\r\nX-Tenant: acme\r\nX-Request-Id: {label}\r\nConnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
            read_to_end(&mut s)
        };
        let first = send("first");
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        let second = send("second");
        assert!(second.starts_with("HTTP/1.1 429"), "{second}");
        assert!(second.contains("Retry-After:"), "{second}");
        assert!(second.contains(r#""kind":"rate_limited""#), "{second}");
        assert!(second.contains(r#""request_id":"second""#), "{second}");
        // the un-gated anonymous path is unaffected
        let (status, _) = crate::client::http_get(&server.addr().to_string(), "/hello").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }
}
