//! The HTTP server facade: one `HttpServer` type over two backends.
//!
//! - **reactor** ([`crate::reactor`]): the epoll event loop — the default
//!   on Linux. Idle keep-alive connections cost a file descriptor, not a
//!   thread, so concurrency scales to the fd limit instead of pool size.
//! - **threaded** ([`crate::threaded`]): the original thread-per-connection
//!   pool — the portable fallback and the bench ablation baseline.
//!
//! [`ServerBuilder`] picks the backend (`Backend::Auto` honors the
//! `ODBIS_HTTP_SERVER` environment variable, values `reactor` or
//! `threaded`) and carries the cross-cutting options: worker count,
//! per-tenant [`AdmissionControl`], and the keep-alive idle timeout.
//! `HttpServer::start(router, workers)` keeps the historical one-call
//! construction for the common case.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crate::admission::AdmissionControl;
use crate::router::Router;
use crate::threaded::ThreadedServer;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
use crate::reactor::ReactorServer;

/// Which server implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// `ODBIS_HTTP_SERVER` if set, else the reactor where supported,
    /// else the threaded pool.
    #[default]
    Auto,
    /// The thread-per-connection pool.
    Threaded,
    /// The epoll event loop (falls back to threaded on platforms without
    /// it).
    Reactor,
}

/// Builder for an [`HttpServer`].
pub struct ServerBuilder {
    router: Router,
    workers: usize,
    admission: Option<Arc<AdmissionControl>>,
    backend: Backend,
    idle_timeout: Duration,
}

impl ServerBuilder {
    /// Start from a router with defaults: 4 workers, auto backend, no
    /// admission control, 60 s keep-alive idle timeout.
    pub fn new(router: Router) -> ServerBuilder {
        ServerBuilder {
            router,
            workers: 4,
            admission: None,
            backend: Backend::Auto,
            idle_timeout: Duration::from_secs(60),
        }
    }

    /// Handler worker count (minimum 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Gate requests through per-tenant admission control.
    pub fn admission(mut self, admission: Arc<AdmissionControl>) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Force a specific backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// How long a keep-alive connection may sit idle before the reactor
    /// hangs up (the threaded backend keeps its fixed read timeout).
    pub fn idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Bind an ephemeral loopback port and start serving.
    pub fn start(self) -> std::io::Result<HttpServer> {
        let backend = match self.backend {
            Backend::Auto => match std::env::var("ODBIS_HTTP_SERVER").as_deref() {
                Ok("threaded") => Backend::Threaded,
                Ok("reactor") => Backend::Reactor,
                _ => Backend::Reactor,
            },
            explicit => explicit,
        };
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if backend == Backend::Reactor {
            let inner =
                ReactorServer::start(self.router, self.workers, self.admission, self.idle_timeout)?;
            return Ok(HttpServer {
                inner: Inner::Reactor(inner),
            });
        }
        let _ = backend; // non-Linux: every choice lands on the pool
        let inner = ThreadedServer::start(self.router, self.workers, self.admission)?;
        Ok(HttpServer {
            inner: Inner::Threaded(inner),
        })
    }
}

enum Inner {
    Threaded(ThreadedServer),
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Reactor(ReactorServer),
}

/// A running HTTP server — the reproduction's stand-in for the Tomcat
/// container that "all services run under" in the ODBIS technical
/// architecture (§3.3). Binds a real loopback socket; see [`ServerBuilder`]
/// for backend selection and admission control.
pub struct HttpServer {
    inner: Inner,
}

impl HttpServer {
    /// Start serving `router` on an ephemeral loopback port with
    /// `worker_count` workers and the default (auto) backend.
    pub fn start(router: Router, worker_count: usize) -> std::io::Result<HttpServer> {
        ServerBuilder::new(router).workers(worker_count).start()
    }

    /// Builder entry point for non-default options.
    pub fn builder(router: Router) -> ServerBuilder {
        ServerBuilder::new(router)
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        match &self.inner {
            Inner::Threaded(s) => s.addr(),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Inner::Reactor(s) => s.addr(),
        }
    }

    /// Base URL, e.g. `http://127.0.0.1:38311`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr())
    }

    /// Requests served so far (responses produced, including 4xx/5xx).
    pub fn requests_served(&self) -> u64 {
        match &self.inner {
            Inner::Threaded(s) => s.requests_served(),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Inner::Reactor(s) => s.requests_served(),
        }
    }

    /// Connections currently held open, when the backend tracks them
    /// (`None` on the threaded pool, which has no central registry).
    pub fn connections_open(&self) -> Option<u64> {
        match &self.inner {
            Inner::Threaded(_) => None,
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Inner::Reactor(s) => Some(s.connections_open()),
        }
    }

    /// Which backend is serving: `"reactor"` or `"threaded"`.
    pub fn backend_name(&self) -> &'static str {
        match &self.inner {
            Inner::Threaded(_) => "threaded",
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Inner::Reactor(_) => "reactor",
        }
    }

    /// Stop accepting and join all threads.
    pub fn shutdown(self) {
        match self.inner {
            Inner::Threaded(s) => s.shutdown(),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Inner::Reactor(s) => s.shutdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_get;
    use crate::http::{HttpResponse, Method};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn test_router() -> Router {
        let mut r = Router::new();
        r.route(Method::Get, "/hello", |_, _| HttpResponse::text("world"));
        r.route(Method::Get, "/echo/:word", |_, p| {
            HttpResponse::text(p["word"].clone())
        });
        r
    }

    #[test]
    fn serves_real_tcp_requests() {
        let server = HttpServer::start(test_router(), 2).unwrap();
        let (status, body) = http_get(&server.addr().to_string(), "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "world");
        let (status, body) = http_get(&server.addr().to_string(), "/echo/odbis").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "odbis");
        let (status, _) = http_get(&server.addr().to_string(), "/missing").unwrap();
        assert_eq!(status, 404);
        assert_eq!(server.requests_served(), 3);
        server.shutdown();
    }

    #[test]
    fn default_backend_is_the_reactor_on_linux() {
        let server = HttpServer::start(test_router(), 1).unwrap();
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert_eq!(server.backend_name(), "reactor");
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        assert_eq!(server.backend_name(), "threaded");
        server.shutdown();
    }

    #[test]
    fn threaded_backend_can_be_forced() {
        let server = HttpServer::builder(test_router())
            .workers(1)
            .backend(Backend::Threaded)
            .start()
            .unwrap();
        assert_eq!(server.backend_name(), "threaded");
        assert_eq!(server.connections_open(), None);
        let (status, body) = http_get(&server.addr().to_string(), "/hello").unwrap();
        assert_eq!((status, body.as_str()), (200, "world"));
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = HttpServer::start(test_router(), 4).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for i in 0..16 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let (status, body) = http_get(&addr, &format!("/echo/c{i}")).unwrap();
                assert_eq!(status, 200);
                assert_eq!(body, format!("c{i}"));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.requests_served(), 16);
    }

    #[test]
    fn keep_alive_serves_two_requests_on_one_connection() {
        use std::io::{BufRead, BufReader};
        let server = HttpServer::start(test_router(), 1).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let read_response = |reader: &mut BufReader<TcpStream>| {
            let mut head = String::new();
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line == "\r\n" || line.is_empty() {
                    break;
                }
                head.push_str(&line);
            }
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            (head, String::from_utf8(body).unwrap())
        };

        writer
            .write_all(b"GET /echo/first HTTP/1.1\r\n\r\n")
            .unwrap();
        let (head, body) = read_response(&mut reader);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        assert_eq!(body, "first");

        // same socket, second request; ask for close this time
        writer
            .write_all(b"GET /echo/second HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (head, body) = read_response(&mut reader);
        assert!(head.contains("Connection: close"), "{head}");
        assert_eq!(body, "second");

        // the server honors the close: EOF follows
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(server.requests_served(), 2);
    }

    #[test]
    fn panicking_handler_does_not_shrink_the_pool() {
        // one worker: if a panic killed it, the next request would hang
        let mut r = test_router();
        r.route(Method::Get, "/boom", |_, _| panic!("bug"));
        // a panicking *filter* used to escape the per-handler catch_unwind
        // and take the worker thread with it
        r.filter(|req| {
            if req.path == "/filter-boom" {
                panic!("filter bug");
            }
            None
        });
        let server = HttpServer::start(r, 1).unwrap();
        let addr = server.addr().to_string();
        for path in ["/boom", "/filter-boom"] {
            let (status, body) = http_get(&addr, path).unwrap();
            assert_eq!(status, 500, "{path}");
            assert!(body.contains("\"error\""), "{path}: {body}");
        }
        // the single worker is still alive and serving
        let (status, body) = http_get(&addr, "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "world");
        server.shutdown();
    }

    #[test]
    fn stop_is_bounded_by_the_in_flight_request_not_the_backlog() {
        let mut r = test_router();
        r.route(Method::Get, "/slow", |_, _| {
            std::thread::sleep(Duration::from_millis(100));
            HttpResponse::text("done")
        });
        let server = HttpServer::start(r, 1).unwrap();
        let addr = server.addr();
        // queue far more slow requests than the single worker can serve:
        // draining them at stop would take > 4s
        let mut conns = Vec::new();
        for _ in 0..40 {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            conns.push(c); // keep sockets open so they sit in the queue
        }
        // let the worker pick up the first request
        std::thread::sleep(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        server.shutdown();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "stop took {elapsed:?}; the backlog was served instead of shed"
        );
    }

    /// A deferred response parks the connection, not the worker: with one
    /// worker, a long-poll in flight must not block other requests, and
    /// the fulfilled response must still carry the placeholder's headers
    /// (the request id the router stamped). Exercised on both backends.
    #[test]
    fn deferred_response_frees_the_worker_and_keeps_headers() {
        use std::sync::Mutex;
        for backend in [Backend::Reactor, Backend::Threaded] {
            let slots: Arc<Mutex<Vec<Arc<crate::http::ResponseSlot>>>> =
                Arc::new(Mutex::new(Vec::new()));
            let mut r = test_router();
            let parked = Arc::clone(&slots);
            r.route(Method::Get, "/park", move |_, _| {
                let (resp, slot) = HttpResponse::deferred();
                parked.lock().unwrap().push(slot);
                resp
            });
            // threaded backend with 1 worker would block on the parked
            // poll; give it 2 so the probe request can get through there
            let workers = if backend == Backend::Reactor { 1 } else { 2 };
            let server = HttpServer::builder(r)
                .workers(workers)
                .backend(backend)
                .start()
                .unwrap();
            let addr = server.addr().to_string();
            let addr2 = addr.clone();
            let poll = std::thread::spawn(move || {
                crate::client::http_request(&addr2, "GET", "/park", &[], b"").unwrap()
            });
            // the parked poll must not stop an ordinary request
            let t0 = std::time::Instant::now();
            let (status, body) = http_get(&addr, "/hello").unwrap();
            assert_eq!((status, body.as_str()), (200, "world"));
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "{}: probe stalled behind a parked poll",
                server.backend_name()
            );
            // fulfill the parked slot; the long-poll completes with the
            // real response plus the router-stamped request id
            let slot = loop {
                if let Some(s) = slots.lock().unwrap().pop() {
                    break s;
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            slot.fulfill(HttpResponse::text("woken"));
            let (status, headers, body) = poll.join().unwrap();
            assert_eq!((status, body.as_str()), (200, "woken"));
            assert!(
                headers.contains_key("x-request-id"),
                "{}: placeholder headers lost: {headers:?}",
                server.backend_name()
            );
            server.shutdown();
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = HttpServer::start(test_router(), 1).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }
}
