//! The HTTP server: loopback listener + crossbeam worker pool.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender, TrySendError};

use crate::http::{HttpRequest, HttpResponse};
use crate::router::Router;

/// A running HTTP server — the reproduction's stand-in for the Tomcat
/// container that "all services run under" in the ODBIS technical
/// architecture (§3.3). Binds a real loopback socket; requests are served
/// by a fixed worker pool.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    sender: Option<Sender<TcpStream>>,
}

impl HttpServer {
    /// Start serving `router` on an ephemeral loopback port with
    /// `worker_count` workers.
    pub fn start(router: Router, worker_count: usize) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let (tx, rx) = bounded::<TcpStream>(1024);

        let mut workers = Vec::with_capacity(worker_count);
        let router = Arc::new(router);
        for _ in 0..worker_count.max(1) {
            let rx = rx.clone();
            let router = Arc::clone(&router);
            let served = Arc::clone(&served);
            let worker_shutdown = Arc::clone(&shutdown);
            workers.push(std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    if worker_shutdown.load(Ordering::Relaxed) {
                        // shutting down: shed the queued backlog instead of
                        // serving it, so stop() is bounded by the in-flight
                        // request, not by queue depth
                        continue;
                    }
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let Ok(mut writer) = stream.try_clone() else {
                        continue;
                    };
                    // one buffered reader per connection: keep-alive
                    // requests (and pipelined bytes) survive between
                    // iterations instead of dying with a throwaway buffer
                    let mut reader = std::io::BufReader::new(stream);
                    loop {
                        if worker_shutdown.load(Ordering::Relaxed) {
                            break; // close keep-alive connections at shutdown
                        }
                        // chaos: a connection torn down before the request
                        // is read — the client saw zero response bytes
                        if odbis_chaos::triggered("http.read") {
                            break;
                        }
                        let (response, close_after) =
                            match HttpRequest::read_from_buffered(&mut reader) {
                                Ok(Some(request)) => {
                                    let close = request.wants_close();
                                    // The request boundary is the last line
                                    // of panic defense: dispatch() already
                                    // catches, but even a future regression
                                    // there must answer 500 and keep this
                                    // worker (and the pool's capacity) alive.
                                    let response = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| router.dispatch(request)),
                                    )
                                    .unwrap_or_else(|_| Router::panic_envelope());
                                    (response, close)
                                }
                                Ok(None) => break, // client closed cleanly
                                Err(e) => (HttpResponse::bad_request(&e), true),
                            };
                        served.fetch_add(1, Ordering::Relaxed);
                        // chaos: the socket dies before any response byte —
                        // never mid-response, so clients see a clean drop
                        // (retryable), not a torn payload
                        if odbis_chaos::triggered("http.write") {
                            break;
                        }
                        let keep_alive = !close_after;
                        if response.write_to_conn(&mut writer, keep_alive).is_err() {
                            break;
                        }
                        let _ = writer.flush();
                        if close_after {
                            break;
                        }
                    }
                }
            }));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_tx = tx.clone();
        let accept_thread = std::thread::spawn(move || {
            while !accept_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // chaos: the accepted socket drops before any byte
                        // is exchanged (client sees a clean reset, retryable)
                        if odbis_chaos::triggered("http.accept") {
                            drop(stream);
                            continue;
                        }
                        // Hand off without a blocking send: a full worker
                        // queue must never wedge this thread (stop() joins
                        // it), so poll with a shutdown check and shed the
                        // connection if shutdown wins the race.
                        let mut pending = stream;
                        loop {
                            match accept_tx.try_send(pending) {
                                Ok(()) => break,
                                Err(TrySendError::Full(s)) => {
                                    if accept_shutdown.load(Ordering::Relaxed) {
                                        break; // drop the connection: shutting down
                                    }
                                    std::thread::sleep(Duration::from_millis(1));
                                    pending = s;
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(HttpServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            served,
            sender: Some(tx),
        })
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:38311`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stop accepting and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // closing the sender ends the worker loops
        self.sender.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_get;
    use crate::http::Method;

    fn test_router() -> Router {
        let mut r = Router::new();
        r.route(Method::Get, "/hello", |_, _| HttpResponse::text("world"));
        r.route(Method::Get, "/echo/:word", |_, p| {
            HttpResponse::text(p["word"].clone())
        });
        r
    }

    #[test]
    fn serves_real_tcp_requests() {
        let server = HttpServer::start(test_router(), 2).unwrap();
        let (status, body) = http_get(&server.addr().to_string(), "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "world");
        let (status, body) = http_get(&server.addr().to_string(), "/echo/odbis").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "odbis");
        let (status, _) = http_get(&server.addr().to_string(), "/missing").unwrap();
        assert_eq!(status, 404);
        assert_eq!(server.requests_served(), 3);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = HttpServer::start(test_router(), 4).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for i in 0..16 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let (status, body) = http_get(&addr, &format!("/echo/c{i}")).unwrap();
                assert_eq!(status, 200);
                assert_eq!(body, format!("c{i}"));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.requests_served(), 16);
    }

    #[test]
    fn keep_alive_serves_two_requests_on_one_connection() {
        use std::io::{BufRead, BufReader, Read};
        let server = HttpServer::start(test_router(), 1).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let read_response = |reader: &mut BufReader<TcpStream>| {
            let mut head = String::new();
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line == "\r\n" || line.is_empty() {
                    break;
                }
                head.push_str(&line);
            }
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            (head, String::from_utf8(body).unwrap())
        };

        writer
            .write_all(b"GET /echo/first HTTP/1.1\r\n\r\n")
            .unwrap();
        let (head, body) = read_response(&mut reader);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        assert_eq!(body, "first");

        // same socket, second request; ask for close this time
        writer
            .write_all(b"GET /echo/second HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (head, body) = read_response(&mut reader);
        assert!(head.contains("Connection: close"), "{head}");
        assert_eq!(body, "second");

        // the server honors the close: EOF follows
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(server.requests_served(), 2);
    }

    #[test]
    fn panicking_handler_does_not_shrink_the_pool() {
        // one worker: if a panic killed it, the next request would hang
        let mut r = test_router();
        r.route(Method::Get, "/boom", |_, _| panic!("bug"));
        // a panicking *filter* used to escape the per-handler catch_unwind
        // and take the worker thread with it
        r.filter(|req| {
            if req.path == "/filter-boom" {
                panic!("filter bug");
            }
            None
        });
        let server = HttpServer::start(r, 1).unwrap();
        let addr = server.addr().to_string();
        for path in ["/boom", "/filter-boom"] {
            let (status, body) = http_get(&addr, path).unwrap();
            assert_eq!(status, 500, "{path}");
            assert!(body.contains("\"error\""), "{path}: {body}");
        }
        // the single worker is still alive and serving
        let (status, body) = http_get(&addr, "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "world");
        server.shutdown();
    }

    #[test]
    fn stop_is_bounded_by_the_in_flight_request_not_the_backlog() {
        let mut r = test_router();
        r.route(Method::Get, "/slow", |_, _| {
            std::thread::sleep(Duration::from_millis(100));
            HttpResponse::text("done")
        });
        let server = HttpServer::start(r, 1).unwrap();
        let addr = server.addr();
        // queue far more slow requests than the single worker can serve:
        // draining them at stop would take > 4s
        let mut conns = Vec::new();
        for _ in 0..40 {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            conns.push(c); // keep sockets open so they sit in the queue
        }
        // let the worker pick up the first request
        std::thread::sleep(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        server.shutdown();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "stop took {elapsed:?}; the backlog was served instead of shed"
        );
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = HttpServer::start(test_router(), 1).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        use std::io::Read;
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }
}
