//! The thread-per-connection HTTP backend: loopback listener + crossbeam
//! worker pool.
//!
//! This is the original server — the reproduction's stand-in for the
//! Tomcat container that "all services run under" in the ODBIS technical
//! architecture (§3.3). Concurrency is capped at the pool size, so it
//! remains useful as the portable fallback (non-Linux builds, or
//! `ODBIS_HTTP_SERVER=threaded`) and as the ablation baseline the
//! connection-scaling bench compares the epoll reactor against.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender, TrySendError};

use crate::admission::AdmissionControl;
use crate::http::{HttpRequest, HttpResponse};
use crate::router::Router;

/// A running threaded HTTP server. Binds a real loopback socket; requests
/// are served by a fixed worker pool, one connection per worker at a time.
pub struct ThreadedServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    sender: Option<Sender<TcpStream>>,
}

impl ThreadedServer {
    /// Start serving `router` on an ephemeral loopback port with
    /// `worker_count` workers and optional per-tenant admission control.
    pub fn start(
        router: Router,
        worker_count: usize,
        admission: Option<Arc<AdmissionControl>>,
    ) -> std::io::Result<ThreadedServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let (tx, rx) = bounded::<TcpStream>(1024);

        let mut workers = Vec::with_capacity(worker_count);
        let router = Arc::new(router);
        for _ in 0..worker_count.max(1) {
            let rx = rx.clone();
            let router = Arc::clone(&router);
            let served = Arc::clone(&served);
            let worker_shutdown = Arc::clone(&shutdown);
            let admission = admission.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    if worker_shutdown.load(Ordering::Relaxed) {
                        // shutting down: shed the queued backlog instead of
                        // serving it, so stop() is bounded by the in-flight
                        // request, not by queue depth
                        continue;
                    }
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let Ok(mut writer) = stream.try_clone() else {
                        continue;
                    };
                    // one buffered reader per connection: keep-alive
                    // requests (and pipelined bytes) survive between
                    // iterations instead of dying with a throwaway buffer
                    let mut reader = std::io::BufReader::new(stream);
                    loop {
                        if worker_shutdown.load(Ordering::Relaxed) {
                            break; // close keep-alive connections at shutdown
                        }
                        // chaos: a connection torn down before the request
                        // is read — the client saw zero response bytes
                        if odbis_chaos::triggered("http.read") {
                            break;
                        }
                        let (mut response, close_after) =
                            match HttpRequest::read_from_buffered(&mut reader) {
                                Ok(Some(mut request)) => {
                                    let close = request.wants_close();
                                    match admission.as_ref().map(|g| g.gate(&mut request)) {
                                        Some(Err(reject)) => (reject, close),
                                        gated => {
                                            let tenant = gated.and_then(Result::ok).flatten();
                                            // The request boundary is the last
                                            // line of panic defense: dispatch()
                                            // already catches, but even a future
                                            // regression there must answer 500
                                            // and keep this worker (and the
                                            // pool's capacity) alive.
                                            let response = std::panic::catch_unwind(
                                                std::panic::AssertUnwindSafe(|| {
                                                    router.dispatch(request)
                                                }),
                                            )
                                            .unwrap_or_else(|_| Router::panic_envelope());
                                            if let (Some(gate), Some(t)) =
                                                (admission.as_ref(), tenant)
                                            {
                                                gate.complete(&t);
                                            }
                                            (response, close)
                                        }
                                    }
                                }
                                Ok(None) => break, // client closed cleanly
                                Err(e) => (HttpResponse::bad_request(&e), true),
                            };
                        // A deferred (long-poll) response: this backend has
                        // no event loop to park the connection on, so the
                        // worker blocks until the slot is fulfilled — the
                        // documented cost of the portable fallback. The cap
                        // only guards against a lost completion; the
                        // completer enforces its own (shorter) timeout.
                        if let Some(slot) = response.take_deferred() {
                            let placeholder = response;
                            let mut real = slot
                                .wait(Duration::from_secs(75))
                                .unwrap_or_else(|| HttpResponse::status(504));
                            for (k, v) in placeholder.headers {
                                real.headers.entry(k).or_insert(v);
                            }
                            response = real;
                        }
                        served.fetch_add(1, Ordering::Relaxed);
                        // chaos: the socket dies before any response byte —
                        // never mid-response, so clients see a clean drop
                        // (retryable), not a torn payload
                        if odbis_chaos::triggered("http.write") {
                            break;
                        }
                        let keep_alive = !close_after;
                        if response.write_to_conn(&mut writer, keep_alive).is_err() {
                            break;
                        }
                        let _ = writer.flush();
                        if close_after {
                            break;
                        }
                    }
                }
            }));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_tx = tx.clone();
        let accept_thread = std::thread::spawn(move || {
            while !accept_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // chaos: the accepted socket drops before any byte
                        // is exchanged (client sees a clean reset, retryable)
                        if odbis_chaos::triggered("http.accept") {
                            drop(stream);
                            continue;
                        }
                        // Hand off without a blocking send: a full worker
                        // queue must never wedge this thread (stop() joins
                        // it), so poll with a shutdown check and shed the
                        // connection if shutdown wins the race.
                        let mut pending = stream;
                        loop {
                            match accept_tx.try_send(pending) {
                                Ok(()) => break,
                                Err(TrySendError::Full(s)) => {
                                    if accept_shutdown.load(Ordering::Relaxed) {
                                        break; // drop the connection: shutting down
                                    }
                                    std::thread::sleep(Duration::from_millis(1));
                                    pending = s;
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(ThreadedServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            served,
            sender: Some(tx),
        })
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stop accepting and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // closing the sender ends the worker loops
        self.sender.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::TenantLimits;
    use crate::client::http_get;
    use crate::http::Method;
    use std::io::Read;

    fn test_router() -> Router {
        let mut r = Router::new();
        r.route(Method::Get, "/hello", |_, _| HttpResponse::text("world"));
        r
    }

    #[test]
    fn threaded_backend_serves_requests() {
        let server = ThreadedServer::start(test_router(), 2, None).unwrap();
        let (status, body) = http_get(&server.addr().to_string(), "/hello").unwrap();
        assert_eq!((status, body.as_str()), (200, "world"));
        assert_eq!(server.requests_served(), 1);
        server.shutdown();
    }

    #[test]
    fn threaded_backend_enforces_admission() {
        let gate = Arc::new(AdmissionControl::with_uniform_limits(TenantLimits {
            rate: 0.001,
            burst: 1.0,
            queue_depth: 0,
        }));
        let server = ThreadedServer::start(test_router(), 2, Some(gate)).unwrap();
        let send = || {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.write_all(b"GET /hello HTTP/1.1\r\nX-Tenant: acme\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut buf = String::new();
            let _ = s.read_to_string(&mut buf);
            buf
        };
        assert!(send().starts_with("HTTP/1.1 200"));
        let second = send();
        assert!(second.starts_with("HTTP/1.1 429"), "{second}");
        assert!(second.contains("Retry-After:"), "{second}");
    }
}
