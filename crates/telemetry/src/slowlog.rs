//! The slow-query log: a bounded ring of spans whose duration crossed the
//! configurable threshold (`telemetry.slow_ms` in the platform config).

use std::collections::VecDeque;

/// One slow-span entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Tenant the call ran for.
    pub tenant: String,
    /// Service label.
    pub service: &'static str,
    /// Operation label.
    pub operation: String,
    /// Operation detail (e.g. the SQL text), empty when none was attached.
    pub detail: String,
    /// Wall-clock duration in microseconds.
    pub duration_micros: u64,
    /// Trace the span belonged to.
    pub trace_id: u64,
    /// The HTTP request id the span served, empty outside a request.
    pub request_id: String,
}

/// Bounded FIFO of slow entries; the oldest entry is evicted at capacity.
#[derive(Debug)]
pub(crate) struct SlowLog {
    entries: VecDeque<SlowEntry>,
    capacity: usize,
}

impl SlowLog {
    pub(crate) fn new(capacity: usize) -> Self {
        SlowLog {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    pub(crate) fn push(&mut self, entry: SlowEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    pub(crate) fn entries(&self) -> Vec<SlowEntry> {
        self.entries.iter().cloned().collect()
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: &str) -> SlowEntry {
        SlowEntry {
            tenant: "t".into(),
            service: "MDS",
            operation: op.into(),
            detail: String::new(),
            duration_micros: 1_000_000,
            trace_id: 1,
            request_id: String::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = SlowLog::new(3);
        for i in 0..5 {
            log.push(entry(&format!("op{i}")));
        }
        let ops: Vec<String> = log.entries().into_iter().map(|e| e.operation).collect();
        assert_eq!(ops, vec!["op2", "op3", "op4"]);
        log.clear();
        assert!(log.entries().is_empty());
    }
}
