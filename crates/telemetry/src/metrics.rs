//! Sharded counters and log2-bucketed latency histograms, with Prometheus
//! text exposition.
//!
//! Each `(tenant, service, operation)` key owns one [`MetricEntry`]:
//! request/error/row/byte counters, a total-CPU-time accumulator, and a
//! histogram whose bucket `i` counts durations below `2^i` microseconds.
//! Keys hash to one of [`crate::STRIPES`] independently locked shards, so
//! concurrent recording from server worker threads rarely contends.

use std::hash::{Hash, Hasher};

/// Histogram bucket count: bucket `i < BUCKETS-1` counts durations
/// `< 2^i µs`; the last bucket is the +Inf catch-all. `2^26 µs ≈ 67 s`
/// comfortably covers any in-process BI call.
pub const BUCKETS: usize = 28;

/// Identity of one metric series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Tenant id.
    pub tenant: String,
    /// Service label.
    pub service: &'static str,
    /// Operation label.
    pub operation: String,
}

/// Counters and histogram for one key.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// Finished spans.
    pub requests: u64,
    /// Spans marked failed.
    pub errors: u64,
    /// Total rows touched.
    pub rows: u64,
    /// Total bytes produced.
    pub bytes: u64,
    /// Total duration in microseconds.
    pub duration_micros_total: u64,
    /// log2 latency buckets (non-cumulative counts).
    pub hist: [u64; BUCKETS],
}

impl Default for MetricEntry {
    fn default() -> Self {
        MetricEntry {
            requests: 0,
            errors: 0,
            rows: 0,
            bytes: 0,
            duration_micros_total: 0,
            hist: [0; BUCKETS],
        }
    }
}

/// Bucket index for a duration: the position of its highest set bit,
/// clamped to the +Inf bucket.
pub fn bucket_index(micros: u64) -> usize {
    ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper bound of bucket `i` in seconds (`f64::INFINITY` for the last).
pub fn bucket_upper_seconds(i: usize) -> f64 {
    if i >= BUCKETS - 1 {
        f64::INFINITY
    } else {
        (1u64 << i) as f64 / 1e6
    }
}

/// One shard: a plain map behind its own lock.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    entries: std::collections::HashMap<MetricKey, MetricEntry>,
}

impl Shard {
    pub(crate) fn record(
        &mut self,
        key: MetricKey,
        micros: u64,
        rows: u64,
        bytes: u64,
        error: bool,
    ) {
        let e = self.entries.entry(key).or_default();
        e.requests += 1;
        if error {
            e.errors += 1;
        }
        e.rows += rows;
        e.bytes += bytes;
        e.duration_micros_total += micros;
        e.hist[bucket_index(micros)] += 1;
    }

    pub(crate) fn snapshot(&self) -> Vec<MetricSnapshot> {
        self.entries
            .iter()
            .map(|(k, e)| MetricSnapshot {
                key: k.clone(),
                requests: e.requests,
                errors: e.errors,
                rows: e.rows,
                bytes: e.bytes,
                duration_micros_total: e.duration_micros_total,
                hist: e.hist,
            })
            .collect()
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Stripe index for a key (FNV-1a over the key fields).
pub(crate) fn stripe_of(key: &MetricKey, stripes: usize) -> usize {
    let mut h = Fnv1a::default();
    key.hash(&mut h);
    (h.finish() as usize) % stripes
}

#[derive(Default)]
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf29ce484222325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        self.0 = h;
    }
}

/// A point-in-time copy of one metric entry.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Series identity.
    pub key: MetricKey,
    /// Finished spans.
    pub requests: u64,
    /// Spans marked failed.
    pub errors: u64,
    /// Total rows touched.
    pub rows: u64,
    /// Total bytes produced.
    pub bytes: u64,
    /// Total duration in microseconds.
    pub duration_micros_total: u64,
    /// log2 latency buckets (non-cumulative counts).
    pub hist: [u64; BUCKETS],
}

/// Per-tenant durability counters: WAL append volume and checkpoint
/// latency. Kept separate from the request-path metrics because WAL
/// appends happen under the storage engine's write lock, far below any
/// span — the platform meters them via the `WalSink` wrapper instead.
#[derive(Debug, Clone)]
pub struct WalCounters {
    /// WAL records appended.
    pub appends: u64,
    /// WAL bytes appended (frame overhead included).
    pub bytes: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total checkpoint wall time in microseconds.
    pub checkpoint_micros_total: u64,
    /// log2 checkpoint-latency buckets (non-cumulative counts).
    pub checkpoint_hist: [u64; BUCKETS],
}

impl Default for WalCounters {
    fn default() -> Self {
        WalCounters {
            appends: 0,
            bytes: 0,
            checkpoints: 0,
            checkpoint_micros_total: 0,
            checkpoint_hist: [0; BUCKETS],
        }
    }
}

impl WalCounters {
    pub(crate) fn record_append(&mut self, bytes: u64) {
        self.appends += 1;
        self.bytes += bytes;
    }

    pub(crate) fn record_batch(&mut self, records: u64, bytes: u64) {
        self.appends += records;
        self.bytes += bytes;
    }

    pub(crate) fn record_checkpoint(&mut self, micros: u64) {
        self.checkpoints += 1;
        self.checkpoint_micros_total += micros;
        self.checkpoint_hist[bucket_index(micros)] += 1;
    }
}

/// Render per-tenant durability counters in Prometheus exposition format
/// (appended after the request-path families).
pub(crate) fn render_wal(tenants: &[(String, WalCounters)]) -> String {
    /// One counter family: metric name, help text, field accessor.
    type WalFamily = (&'static str, &'static str, fn(&WalCounters) -> u64);
    let mut out = String::new();
    let counters: [WalFamily; 3] = [
        (
            "odbis_wal_appends_total",
            "WAL records appended, by tenant.",
            |w| w.appends,
        ),
        (
            "odbis_wal_bytes_total",
            "WAL bytes appended (frames included), by tenant.",
            |w| w.bytes,
        ),
        (
            "odbis_checkpoints_total",
            "Durability checkpoints taken, by tenant.",
            |w| w.checkpoints,
        ),
    ];
    for (name, help, get) in counters {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for (tenant, w) in tenants {
            out.push_str(&format!(
                "{name}{{tenant=\"{}\"}} {}\n",
                escape_label(tenant),
                get(w)
            ));
        }
    }
    let name = "odbis_checkpoint_seconds";
    out.push_str(&format!(
        "# HELP {name} Checkpoint latency, log2 buckets.\n# TYPE {name} histogram\n"
    ));
    for (tenant, w) in tenants {
        let l = format!("tenant=\"{}\"", escape_label(tenant));
        let mut cumulative = 0u64;
        for (i, count) in w.checkpoint_hist.iter().enumerate() {
            cumulative += count;
            if *count == 0 && i != BUCKETS - 1 {
                continue;
            }
            out.push_str(&format!(
                "{name}_bucket{{{l},le=\"{}\"}} {cumulative}\n",
                format_le(bucket_upper_seconds(i)),
            ));
        }
        out.push_str(&format!(
            "{name}_sum{{{l}}} {}\n{name}_count{{{l}}} {}\n",
            w.checkpoint_micros_total as f64 / 1e6,
            w.checkpoints
        ));
    }
    out
}

/// Per-`(tenant, service)` totals aggregated over operations — the shape
/// the cost pipeline joins against `UsageMeter` units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceTotals {
    /// Finished spans.
    pub requests: u64,
    /// Spans marked failed.
    pub errors: u64,
    /// Total rows touched.
    pub rows: u64,
    /// Total bytes produced.
    pub bytes: u64,
    /// Total CPU (wall) time in microseconds.
    pub cpu_micros: u64,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn labels(key: &MetricKey) -> String {
    format!(
        "tenant=\"{}\",service=\"{}\",operation=\"{}\"",
        escape_label(&key.tenant),
        escape_label(key.service),
        escape_label(&key.operation)
    )
}

/// Format an `le` bound the way Prometheus clients expect.
fn format_le(seconds: f64) -> String {
    if seconds.is_infinite() {
        "+Inf".to_string()
    } else {
        // shortest round-trip formatting of powers of two is exact
        format!("{seconds}")
    }
}

/// One Prometheus counter family: name, help text, and value accessor.
type CounterFamily = (&'static str, &'static str, fn(&MetricSnapshot) -> u64);

/// Render sorted snapshots as Prometheus text exposition format.
pub(crate) fn render_prometheus(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::with_capacity(4096 + snaps.len() * 512);
    let counters: [CounterFamily; 4] = [
        (
            "odbis_requests_total",
            "Platform service calls finished, by tenant/service/operation.",
            |s| s.requests,
        ),
        (
            "odbis_errors_total",
            "Platform service calls that failed.",
            |s| s.errors,
        ),
        ("odbis_rows_total", "Rows touched by service calls.", |s| {
            s.rows
        }),
        (
            "odbis_bytes_total",
            "Bytes produced by service calls.",
            |s| s.bytes,
        ),
    ];
    for (name, help, get) in counters {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for s in snaps {
            out.push_str(&format!("{name}{{{}}} {}\n", labels(&s.key), get(s)));
        }
    }
    let name = "odbis_latency_seconds";
    out.push_str(&format!(
        "# HELP {name} Service call latency, log2 buckets.\n# TYPE {name} histogram\n"
    ));
    for s in snaps {
        let l = labels(&s.key);
        let mut cumulative = 0u64;
        for (i, count) in s.hist.iter().enumerate() {
            cumulative += count;
            // elide empty leading/interior buckets except the mandatory +Inf
            if *count == 0 && i != BUCKETS - 1 {
                continue;
            }
            out.push_str(&format!(
                "{name}_bucket{{{l},le=\"{}\"}} {cumulative}\n",
                format_le(bucket_upper_seconds(i)),
            ));
        }
        out.push_str(&format!(
            "{name}_sum{{{l}}} {}\n{name}_count{{{l}}} {}\n",
            s.duration_micros_total as f64 / 1e6,
            s.requests
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: &str, op: &str) -> MetricKey {
        MetricKey {
            tenant: t.to_string(),
            service: "MDS",
            operation: op.to_string(),
        }
    }

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_seconds(0), 1e-6);
        assert!(bucket_upper_seconds(BUCKETS - 1).is_infinite());
    }

    #[test]
    fn shard_accumulates() {
        let mut shard = Shard::default();
        shard.record(key("t", "sql"), 100, 5, 10, false);
        shard.record(key("t", "sql"), 300, 5, 0, true);
        let snap = shard.snapshot();
        assert_eq!(snap.len(), 1);
        let s = &snap[0];
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.rows, 10);
        assert_eq!(s.bytes, 10);
        assert_eq!(s.duration_micros_total, 400);
        // 100µs and 300µs land in log2 buckets 7 and 9
        assert_eq!(s.hist[7], 1);
        assert_eq!(s.hist[9], 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let mut shard = Shard::default();
        shard.record(key("acme", "sql"), 1500, 42, 0, false);
        let text = render_prometheus(&shard.snapshot());
        assert!(text.contains("# TYPE odbis_requests_total counter"));
        assert!(text
            .contains("odbis_requests_total{tenant=\"acme\",service=\"MDS\",operation=\"sql\"} 1"));
        assert!(
            text.contains("odbis_rows_total{tenant=\"acme\",service=\"MDS\",operation=\"sql\"} 42")
        );
        assert!(text.contains("# TYPE odbis_latency_seconds histogram"));
        // 1500µs < 2^11µs → cumulative 1 at le=0.002048
        assert!(text.contains("le=\"0.002048\"} 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.contains(
            "odbis_latency_seconds_count{tenant=\"acme\",service=\"MDS\",operation=\"sql\"} 1"
        ));
        assert!(text.contains(
            "odbis_latency_seconds_sum{tenant=\"acme\",service=\"MDS\",operation=\"sql\"} 0.0015"
        ));
    }

    #[test]
    fn label_escaping() {
        let k = MetricKey {
            tenant: "we\"ird\\t".to_string(),
            service: "MDS",
            operation: "op".to_string(),
        };
        let l = labels(&k);
        assert!(l.contains("we\\\"ird\\\\t"));
    }

    #[test]
    fn striping_is_stable_and_in_range() {
        for t in ["a", "b", "c", "dddddd"] {
            let k = key(t, "op");
            let s = stripe_of(&k, 16);
            assert!(s < 16);
            assert_eq!(s, stripe_of(&k, 16));
        }
    }
}
