//! The pay-as-you-go cost pipeline: price metered units *and* measured
//! resource consumption (CPU time, rows, bytes) into per-tenant cost
//! lines.
//!
//! ODBIS §2 claims the platform "aligns cost with usage". The
//! `UsageMeter` counts abstract units per `(tenant, service)`; telemetry
//! measures what those units actually cost in latency, rows and bytes.
//! A [`CostModel`] joins the two sides into [`CostLine`]s — the body of
//! the `GET /api/v1/admin/invoice` response.

use crate::metrics::ServiceTotals;

/// Prices in millicents (1/1000 of a cent) so small workloads still
/// produce non-zero, integer-exact charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Price per metered unit (the `UsageMeter` currency).
    pub millicents_per_unit: u64,
    /// Price per CPU-second of measured service time.
    pub millicents_per_cpu_second: u64,
    /// Price per million rows touched.
    pub millicents_per_million_rows: u64,
    /// Price per mebibyte produced.
    pub millicents_per_mebibyte: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            millicents_per_unit: 5,
            millicents_per_cpu_second: 200,
            millicents_per_million_rows: 400,
            millicents_per_mebibyte: 50,
        }
    }
}

/// One line of the pay-as-you-go invoice: a `(tenant, service)` pair with
/// the metered units, the measured resource totals, and the priced cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostLine {
    /// Tenant id.
    pub tenant: String,
    /// Service code (`MDS`, `IS`, `AS`, `RS`, `IDS`, `ADM`).
    pub service: String,
    /// Units from the usage meter.
    pub units: u64,
    /// Service calls measured by telemetry.
    pub requests: u64,
    /// Failed calls.
    pub errors: u64,
    /// Rows touched.
    pub rows: u64,
    /// Bytes produced.
    pub bytes: u64,
    /// Measured service time in microseconds.
    pub cpu_micros: u64,
    /// Priced cost in millicents.
    pub millicents: u64,
}

impl CostModel {
    /// Price one `(tenant, service)` pair. `units` comes from the usage
    /// meter; `totals` from telemetry (zero when one side has no data —
    /// the join is an outer join).
    pub fn line(&self, tenant: &str, service: &str, units: u64, totals: ServiceTotals) -> CostLine {
        let millicents = (units as u128 * self.millicents_per_unit as u128
            + totals.cpu_micros as u128 * self.millicents_per_cpu_second as u128 / 1_000_000
            + totals.rows as u128 * self.millicents_per_million_rows as u128 / 1_000_000
            + totals.bytes as u128 * self.millicents_per_mebibyte as u128 / (1024 * 1024))
            as u64;
        CostLine {
            tenant: tenant.to_string(),
            service: service.to_string(),
            units,
            requests: totals.requests,
            errors: totals.errors,
            rows: totals.rows,
            bytes: totals.bytes,
            cpu_micros: totals.cpu_micros,
            millicents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_combines_units_and_measurements() {
        let model = CostModel::default();
        let totals = ServiceTotals {
            requests: 10,
            errors: 0,
            rows: 2_000_000,
            bytes: 2 * 1024 * 1024,
            cpu_micros: 3_000_000, // 3 CPU-seconds
        };
        let line = model.line("acme", "MDS", 100, totals);
        // 100*5 + 3*200 + 2*400 + 2*50 = 500 + 600 + 800 + 100
        assert_eq!(line.millicents, 2000);
        assert_eq!(line.units, 100);
        assert_eq!(line.requests, 10);
    }

    #[test]
    fn outer_join_sides_price_independently() {
        let model = CostModel::default();
        let meter_only = model.line("t", "ADM", 40, ServiceTotals::default());
        assert_eq!(meter_only.millicents, 200);
        assert_eq!(meter_only.requests, 0);
        let telemetry_only = model.line(
            "t",
            "AS",
            0,
            ServiceTotals {
                cpu_micros: 500_000,
                ..Default::default()
            },
        );
        assert_eq!(telemetry_only.millicents, 100);
    }
}
