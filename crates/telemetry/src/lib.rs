//! # odbis-telemetry
//!
//! The platform telemetry spine: the observability counterpart of the
//! paper's pay-as-you-go claim (ODBIS §1–2). `UsageMeter` counts *units*;
//! this crate measures *what a request cost* — latency, rows, bytes — and
//! joins the two into per-tenant cost lines.
//!
//! Four pieces, each its own module:
//!
//! * [`span`] — a lightweight trace context. A **root span** is opened at
//!   the platform gate (authorize/meter path) and installs itself in a
//!   thread-local stack; service layers (SQL execution, ETL job runs, OLAP
//!   cube queries, report renders, delivery) open **child spans** with
//!   [`child_span`], which inherit trace id and tenant from the ambient
//!   stack — no API signature changes anywhere in the service crates.
//! * [`metrics`] — striped-lock shards of per-`(tenant, service,
//!   operation)` counters (requests, errors, rows, bytes, CPU time) and
//!   log2-bucketed latency histograms, rendered in Prometheus text
//!   exposition format.
//! * [`slowlog`] — a bounded ring of spans that exceeded the configurable
//!   slow threshold (`telemetry.slow_ms`), with operation detail (e.g. the
//!   SQL text).
//! * [`cost`] — the pay-as-you-go cost model: a [`CostModel`] prices
//!   metered units, CPU seconds, rows and bytes into [`CostLine`]s.
//!
//! When telemetry is disabled (`telemetry.enabled = false`) every span is
//! inert: no allocation, no locking, no thread-local install — the
//! instrumentation overhead budget is ≤5% end-to-end and ~0 when off.
//!
//! ```
//! use std::sync::Arc;
//! use odbis_telemetry::{child_span, Telemetry};
//!
//! let telemetry = Arc::new(Telemetry::new());
//! {
//!     let mut root = telemetry.span("acme", "MDS", "sql", 250);
//!     root.set_rows(3);
//!     // ... deeper layers annotate the same trace:
//!     let child = child_span("sql", "execute.vectorized");
//!     drop(child);
//! }
//! let text = telemetry.render_prometheus();
//! assert!(text.contains("odbis_requests_total{tenant=\"acme\",service=\"MDS\",operation=\"sql\"} 1"));
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod metrics;
pub mod slowlog;
pub mod span;

pub use cost::{CostLine, CostModel};
pub use metrics::{MetricKey, MetricSnapshot, ServiceTotals, WalCounters};
pub use slowlog::SlowEntry;
pub use span::{
    ambient_request_id, child_span, current_trace_id, set_ambient_request_id, Span, SpanRecord,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use metrics::Shard;

/// How many striped metric shards the registry keeps. Keys are hashed to a
/// stripe so concurrent recording from worker threads rarely contends.
pub const STRIPES: usize = 16;

/// Recent-span ring capacity (for trace inspection, not a durable store).
const SPAN_RING: usize = 512;

/// The telemetry registry: sharded metrics, the slow-query log, and the
/// recent-span ring. One per platform, shared via `Arc`.
pub struct Telemetry {
    shards: Vec<Mutex<Shard>>,
    slow: Mutex<slowlog::SlowLog>,
    spans: Mutex<std::collections::VecDeque<SpanRecord>>,
    // Per-tenant durability counters (WAL appends / checkpoint latency).
    // A BTreeMap behind one lock is enough: appends are metered by the
    // storage sink at memory speed, far off the striped request path.
    wal: Mutex<BTreeMap<String, metrics::WalCounters>>,
    next_trace: AtomicU64,
    next_span: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Empty registry.
    pub fn new() -> Self {
        Telemetry {
            shards: (0..STRIPES).map(|_| Mutex::new(Shard::default())).collect(),
            slow: Mutex::new(slowlog::SlowLog::new(256)),
            spans: Mutex::new(std::collections::VecDeque::with_capacity(SPAN_RING)),
            wal: Mutex::new(BTreeMap::new()),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
        }
    }

    /// Open a span. If the calling thread already has an active span (a
    /// platform call nested inside another, or a service layer under the
    /// gate), the new span joins that trace as a child; otherwise it roots
    /// a fresh trace. The span installs itself in the thread-local stack so
    /// deeper layers can attach with [`child_span`].
    ///
    /// `slow_ms` is the slow-log threshold for this span (0 disables).
    pub fn span(
        self: &Arc<Self>,
        tenant: &str,
        service: &'static str,
        operation: impl Into<String>,
        slow_ms: u64,
    ) -> Span {
        span::start(Arc::clone(self), tenant, service, operation.into(), slow_ms)
    }

    /// Fresh trace id.
    pub(crate) fn new_trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Fresh span id.
    pub(crate) fn new_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn record(&self, rec: SpanRecord, detail: Option<String>, slow_ms: u64) {
        let key = MetricKey {
            tenant: rec.tenant.clone(),
            service: rec.service,
            operation: rec.operation.clone(),
        };
        let stripe = metrics::stripe_of(&key, self.shards.len());
        self.shards[stripe]
            .lock()
            .record(key, rec.duration_micros, rec.rows, rec.bytes, rec.error);
        if slow_ms > 0 && rec.duration_micros >= slow_ms.saturating_mul(1000) {
            self.slow.lock().push(SlowEntry {
                tenant: rec.tenant.clone(),
                service: rec.service,
                operation: rec.operation.clone(),
                detail: detail.unwrap_or_default(),
                duration_micros: rec.duration_micros,
                trace_id: rec.trace_id,
                request_id: rec.request_id.clone(),
            });
        }
        let mut spans = self.spans.lock();
        if spans.len() == SPAN_RING {
            spans.pop_front();
        }
        spans.push_back(rec);
    }

    /// Snapshot of every `(tenant, service, operation)` metric entry,
    /// sorted by key.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let mut all: Vec<MetricSnapshot> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().snapshot())
            .collect();
        all.sort_by(|a, b| a.key.cmp(&b.key));
        all
    }

    /// Totals aggregated over operations, keyed by `(tenant, service)` —
    /// the join key shared with `UsageMeter`'s summary.
    pub fn totals(&self) -> BTreeMap<(String, String), ServiceTotals> {
        let mut out: BTreeMap<(String, String), ServiceTotals> = BTreeMap::new();
        for snap in self.snapshot() {
            let entry = out
                .entry((snap.key.tenant.clone(), snap.key.service.to_string()))
                .or_default();
            entry.requests += snap.requests;
            entry.errors += snap.errors;
            entry.rows += snap.rows;
            entry.bytes += snap.bytes;
            entry.cpu_micros += snap.duration_micros_total;
        }
        out
    }

    /// Meter one WAL append for `tenant` (`bytes` includes frame overhead).
    pub fn record_wal_append(&self, tenant: &str, bytes: u64) {
        self.wal
            .lock()
            .entry(tenant.to_string())
            .or_default()
            .record_append(bytes);
    }

    /// Meter a group-committed batch of `records` WAL appends for `tenant`
    /// in one lock acquisition (`bytes` is the whole batch, frames
    /// included).
    pub fn record_wal_batch(&self, tenant: &str, records: u64, bytes: u64) {
        self.wal
            .lock()
            .entry(tenant.to_string())
            .or_default()
            .record_batch(records, bytes);
    }

    /// Meter one durability checkpoint for `tenant`.
    pub fn record_checkpoint(&self, tenant: &str, micros: u64) {
        self.wal
            .lock()
            .entry(tenant.to_string())
            .or_default()
            .record_checkpoint(micros);
    }

    /// Point-in-time copy of the per-tenant durability counters, sorted by
    /// tenant.
    pub fn wal_snapshot(&self) -> Vec<(String, WalCounters)> {
        self.wal
            .lock()
            .iter()
            .map(|(t, w)| (t.clone(), w.clone()))
            .collect()
    }

    /// The slow-query log, oldest first.
    pub fn slow_log(&self) -> Vec<SlowEntry> {
        self.slow.lock().entries()
    }

    /// Recently finished spans, oldest first (bounded ring).
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().iter().cloned().collect()
    }

    /// Drop all recorded metrics, slow-log entries and spans (close of a
    /// billing/observation period).
    pub fn reset(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.slow.lock().clear();
        self.spans.lock().clear();
        self.wal.lock().clear();
    }

    /// Render every counter and histogram in the Prometheus text
    /// exposition format (`text/plain; version=0.0.4`), deterministically
    /// ordered.
    pub fn render_prometheus(&self) -> String {
        let mut out = metrics::render_prometheus(&self.snapshot());
        out.push_str(&metrics::render_wal(&self.wal_snapshot()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_child_spans_share_a_trace() {
        let t = Arc::new(Telemetry::new());
        {
            let mut root = t.span("acme", "MDS", "sql", 0);
            root.set_rows(2);
            let mut child = child_span("sql", "execute.vectorized");
            child.set_rows(2);
        }
        let spans = t.recent_spans();
        assert_eq!(spans.len(), 2);
        // child finishes (and is recorded) first
        let child = &spans[0];
        let root = &spans[1];
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_eq!(child.tenant, "acme");
        assert_eq!(root.parent_id, None);
        assert_eq!(root.service, "MDS");
        assert_eq!(child.service, "sql");
    }

    #[test]
    fn child_span_without_root_is_inert() {
        let t = Arc::new(Telemetry::new());
        {
            let mut orphan = child_span("sql", "execute");
            orphan.set_rows(100);
        }
        assert!(t.recent_spans().is_empty());
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn nested_platform_calls_nest_spans() {
        let t = Arc::new(Telemetry::new());
        {
            let _outer = t.span("acme", "MDS", "dataset", 0);
            let _inner = t.span("acme", "MDS", "sql", 0);
        }
        let spans = t.recent_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].operation, "sql");
        assert_eq!(spans[0].parent_id, Some(spans[1].span_id));
        assert_eq!(spans[0].trace_id, spans[1].trace_id);
    }

    #[test]
    fn totals_aggregate_over_operations() {
        let t = Arc::new(Telemetry::new());
        {
            let mut a = t.span("acme", "MDS", "sql", 0);
            a.set_rows(10);
            a.set_bytes(100);
        }
        {
            let mut b = t.span("acme", "MDS", "dataset", 0);
            b.set_rows(5);
            b.fail();
        }
        {
            let _c = t.span("beta", "AS", "mdx", 0);
        }
        let totals = t.totals();
        assert_eq!(totals.len(), 2);
        let acme = &totals[&("acme".to_string(), "MDS".to_string())];
        assert_eq!(acme.requests, 2);
        assert_eq!(acme.errors, 1);
        assert_eq!(acme.rows, 15);
        assert_eq!(acme.bytes, 100);
        assert!(totals.contains_key(&("beta".to_string(), "AS".to_string())));
    }

    #[test]
    fn reset_clears_everything() {
        let t = Arc::new(Telemetry::new());
        drop(t.span("acme", "MDS", "sql", 0));
        t.record_wal_append("acme", 64);
        assert!(!t.snapshot().is_empty());
        t.reset();
        assert!(t.snapshot().is_empty());
        assert!(t.recent_spans().is_empty());
        assert!(t.slow_log().is_empty());
        assert!(t.wal_snapshot().is_empty());
    }

    #[test]
    fn wal_counters_accumulate_and_render() {
        let t = Arc::new(Telemetry::new());
        t.record_wal_append("acme", 100);
        t.record_wal_append("acme", 50);
        t.record_wal_append("beta", 7);
        t.record_checkpoint("acme", 1500);
        let snap = t.wal_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "acme");
        assert_eq!(snap[0].1.appends, 2);
        assert_eq!(snap[0].1.bytes, 150);
        assert_eq!(snap[0].1.checkpoints, 1);
        assert_eq!(snap[0].1.checkpoint_micros_total, 1500);
        assert_eq!(snap[1].1.appends, 1);
        let text = t.render_prometheus();
        assert!(text.contains("odbis_wal_appends_total{tenant=\"acme\"} 2"));
        assert!(text.contains("odbis_wal_bytes_total{tenant=\"acme\"} 150"));
        assert!(text.contains("odbis_wal_bytes_total{tenant=\"beta\"} 7"));
        assert!(text.contains("odbis_checkpoints_total{tenant=\"acme\"} 1"));
        assert!(text.contains("# TYPE odbis_checkpoint_seconds histogram"));
        // 1500µs < 2^11µs → cumulative 1 at le=0.002048
        assert!(text.contains("odbis_checkpoint_seconds_bucket{tenant=\"acme\",le=\"0.002048\"} 1"));
        assert!(text.contains("odbis_checkpoint_seconds_count{tenant=\"acme\"} 1"));
    }

    #[test]
    fn concurrent_spans_record_exactly() {
        let t = Arc::new(Telemetry::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    let mut s = t.span(&format!("t{i}"), "MDS", "sql", 0);
                    s.set_rows(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let totals = t.totals();
        let requests: u64 = totals.values().map(|v| v.requests).sum();
        assert_eq!(requests, 1000);
    }
}
