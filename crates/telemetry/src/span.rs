//! Trace-context spans with thread-local ambient propagation.
//!
//! The platform gate opens a span per service call; the span pushes a
//! frame onto a thread-local stack. Service layers deeper in the call
//! graph — SQL execution, ETL runs, cube queries, report renders,
//! delivery — attach to the ambient trace with [`child_span`] without any
//! plumbing through their APIs. Frames pop on drop; because every span is
//! a scoped guard on one thread, the stack discipline is LIFO.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::Telemetry;

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    // The HTTP request id serving on this thread, installed by the web
    // layer's identity filter. Spans copy it at record time, tying slow-log
    // entries and span records back to the client-visible `X-Request-Id`.
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Install (or clear) the ambient request id for the calling thread. The
/// web layer sets this when a request starts on a worker; every span the
/// request produces records it, so a 429/503 in a client log can be
/// matched to its root span and slow-log entry.
pub fn set_ambient_request_id(id: Option<String>) {
    REQUEST_ID.with(|slot| *slot.borrow_mut() = id);
}

/// The ambient request id, if the thread is serving an HTTP request.
pub fn ambient_request_id() -> Option<String> {
    REQUEST_ID.with(|slot| slot.borrow().clone())
}

/// One active-span frame on the thread-local stack.
struct Frame {
    telemetry: Arc<Telemetry>,
    trace_id: u64,
    span_id: u64,
    tenant: Arc<str>,
    slow_ms: u64,
}

/// A finished span as recorded into the registry's recent-span ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (`None` for a root span).
    pub parent_id: Option<u64>,
    /// Tenant the traced call ran for.
    pub tenant: String,
    /// Service label (`MDS`, `IS`, `AS`, `RS`, `IDS`, `ADM` at the gate;
    /// layer names like `sql`, `etl`, `olap` for child spans).
    pub service: &'static str,
    /// Operation label.
    pub operation: String,
    /// Wall-clock duration in microseconds.
    pub duration_micros: u64,
    /// Rows touched (service-defined).
    pub rows: u64,
    /// Bytes produced (service-defined).
    pub bytes: u64,
    /// Whether the traced call failed.
    pub error: bool,
    /// The HTTP request id the span served, empty outside a request (ETL
    /// schedules, ESB deliveries, tests).
    pub request_id: String,
}

struct SpanInner {
    telemetry: Arc<Telemetry>,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    tenant: Arc<str>,
    service: &'static str,
    operation: String,
    start: Instant,
    rows: u64,
    bytes: u64,
    error: bool,
    detail: Option<String>,
    slow_ms: u64,
}

/// A scoped span guard. Dropping it stops the clock and records the span
/// (metrics, slow log, span ring). A disabled span is inert: every method
/// is a no-op and nothing is recorded.
pub struct Span(Option<SpanInner>);

/// Open a span: child of the ambient span when one exists, root otherwise.
pub(crate) fn start(
    telemetry: Arc<Telemetry>,
    tenant: &str,
    service: &'static str,
    operation: String,
    slow_ms: u64,
) -> Span {
    let (trace_id, parent_id, tenant_arc) = STACK.with(|stack| {
        let stack = stack.borrow();
        match stack.last() {
            Some(top) => (top.trace_id, Some(top.span_id), Arc::clone(&top.tenant)),
            None => (telemetry.new_trace_id(), None, Arc::from(tenant)),
        }
    });
    let span_id = telemetry.new_span_id();
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            telemetry: Arc::clone(&telemetry),
            trace_id,
            span_id,
            tenant: Arc::clone(&tenant_arc),
            slow_ms,
        })
    });
    Span(Some(SpanInner {
        telemetry,
        trace_id,
        span_id,
        parent_id,
        tenant: tenant_arc,
        service,
        operation,
        start: Instant::now(),
        rows: 0,
        bytes: 0,
        error: false,
        detail: None,
        slow_ms,
    }))
}

/// Attach a child span to the ambient trace. Inert (and allocation-free)
/// when the thread has no active span — i.e. when telemetry is disabled or
/// the code runs outside the platform gate.
pub fn child_span(service: &'static str, operation: impl Into<String>) -> Span {
    let ambient = STACK.with(|stack| {
        let stack = stack.borrow();
        stack.last().map(|top| {
            (
                Arc::clone(&top.telemetry),
                top.trace_id,
                top.span_id,
                Arc::clone(&top.tenant),
                top.slow_ms,
            )
        })
    });
    let Some((telemetry, trace_id, parent_id, tenant, slow_ms)) = ambient else {
        return Span(None);
    };
    let span_id = telemetry.new_span_id();
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            telemetry: Arc::clone(&telemetry),
            trace_id,
            span_id,
            tenant: Arc::clone(&tenant),
            slow_ms,
        })
    });
    Span(Some(SpanInner {
        telemetry,
        trace_id,
        span_id,
        parent_id: Some(parent_id),
        tenant,
        service,
        operation: operation.into(),
        start: Instant::now(),
        rows: 0,
        bytes: 0,
        error: false,
        detail: None,
        slow_ms,
    }))
}

/// The ambient trace id of the calling thread, if a span is active.
pub fn current_trace_id() -> Option<u64> {
    STACK.with(|stack| stack.borrow().last().map(|f| f.trace_id))
}

impl Span {
    /// An inert span (used when telemetry is disabled for the tenant).
    pub fn disabled() -> Self {
        Span(None)
    }

    /// Whether this span actually records anything.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Trace id (None when inert).
    pub fn trace_id(&self) -> Option<u64> {
        self.0.as_ref().map(|i| i.trace_id)
    }

    /// Set the rows-touched gauge.
    pub fn set_rows(&mut self, rows: u64) {
        if let Some(i) = &mut self.0 {
            i.rows = rows;
        }
    }

    /// Add to the rows-touched gauge.
    pub fn add_rows(&mut self, rows: u64) {
        if let Some(i) = &mut self.0 {
            i.rows += rows;
        }
    }

    /// Set the bytes-produced gauge.
    pub fn set_bytes(&mut self, bytes: u64) {
        if let Some(i) = &mut self.0 {
            i.bytes = bytes;
        }
    }

    /// Attach operation detail shown in the slow log (e.g. the SQL text).
    pub fn set_detail(&mut self, detail: &str) {
        if let Some(i) = &mut self.0 {
            i.detail = Some(detail.to_string());
        }
    }

    /// Mark the traced call as failed.
    pub fn fail(&mut self) {
        if let Some(i) = &mut self.0 {
            i.error = true;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else {
            return;
        };
        // pop this span's frame; defensively drain any frames leaked above
        // it (a span dropped out of LIFO order) so the stack cannot grow
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            while let Some(top) = stack.pop() {
                if top.span_id == inner.span_id {
                    break;
                }
            }
        });
        let duration_micros = inner.start.elapsed().as_micros() as u64;
        let rec = SpanRecord {
            trace_id: inner.trace_id,
            span_id: inner.span_id,
            parent_id: inner.parent_id,
            tenant: inner.tenant.to_string(),
            service: inner.service,
            operation: inner.operation,
            duration_micros,
            rows: inner.rows,
            bytes: inner.bytes,
            error: inner.error,
            request_id: ambient_request_id().unwrap_or_default(),
        };
        inner.telemetry.record(rec, inner.detail, inner.slow_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_fully_inert() {
        let mut s = Span::disabled();
        assert!(!s.is_recording());
        assert!(s.trace_id().is_none());
        s.set_rows(5);
        s.set_bytes(5);
        s.set_detail("x");
        s.fail();
        drop(s);
        assert!(current_trace_id().is_none());
    }

    #[test]
    fn ambient_trace_id_tracks_the_stack() {
        let t = Arc::new(Telemetry::new());
        assert!(current_trace_id().is_none());
        let root = t.span("acme", "MDS", "op", 0);
        assert_eq!(current_trace_id(), root.trace_id());
        {
            let child = child_span("sql", "execute");
            assert_eq!(child.trace_id(), root.trace_id());
        }
        assert_eq!(current_trace_id(), root.trace_id());
        drop(root);
        assert!(current_trace_id().is_none());
    }

    #[test]
    fn spans_record_the_ambient_request_id() {
        let t = Arc::new(Telemetry::new());
        set_ambient_request_id(Some("req-abc".to_string()));
        {
            let _root = t.span("acme", "MDS", "sql", 0);
            let _child = child_span("sql", "execute");
        }
        set_ambient_request_id(None);
        {
            let _outside = t.span("acme", "MDS", "etl", 0);
        }
        let spans = t.recent_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].request_id, "req-abc"); // child
        assert_eq!(spans[1].request_id, "req-abc"); // root
        assert_eq!(spans[2].request_id, ""); // outside any request
    }

    #[test]
    fn out_of_order_drop_keeps_the_stack_bounded() {
        let t = Arc::new(Telemetry::new());
        let outer = t.span("acme", "MDS", "outer", 0);
        let inner = t.span("acme", "MDS", "inner", 0);
        // dropping the OUTER guard first drains the inner frame too
        drop(outer);
        assert!(current_trace_id().is_none());
        drop(inner);
        assert_eq!(t.recent_spans().len(), 2);
    }
}
