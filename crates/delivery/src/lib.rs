//! # odbis-delivery
//!
//! The Information Delivery Service (IDS) — the fifth ODBIS core BI
//! service: "an abstraction level to support many client interfaces and
//! technologies (e.g., web browser, mobile, office tools). It can be also
//! presented as a web services for more flexibility" (§3.1).
//!
//! Payloads format per [`Channel`] (HTML, JSON, compact mobile JSON, CSV,
//! text e-mail digests) and dispatch over the platform ESB into an
//! auditable outbox; users subscribe to reports and [`DeliveryService::burst`]
//! fans a report out to every subscriber on their own channel.

#![warn(missing_docs)]

mod format;
mod service;

pub use format::{format_for, Channel, Delivered, ReportPayload, MOBILE_ROW_CAP};
pub use service::{DeliveryError, DeliveryService, OutboxEntry, Subscription};
