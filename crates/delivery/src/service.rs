//! The delivery service: subscriptions, bursting and ESB dispatch.

use std::sync::Arc;

use odbis_esb::{Endpoint, Message, MessageBus};
use parking_lot::Mutex;

use crate::format::{format_for, Channel, Delivered, ReportPayload};

/// Delivery errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DeliveryError {
    /// Unknown subscription/report.
    NotFound(String),
    /// ESB dispatch failure.
    Bus(String),
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeliveryError::NotFound(e) => write!(f, "not found: {e}"),
            DeliveryError::Bus(e) => write!(f, "bus error: {e}"),
        }
    }
}

impl std::error::Error for DeliveryError {}

/// A subscription: a user wants a report on a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Subscribing user.
    pub user: String,
    /// Report the user subscribed to.
    pub report: String,
    /// Preferred channel.
    pub channel: Channel,
}

/// A delivery that reached a subscriber (kept in the outbox for audit and
/// for the simulated e-mail/mobile channels).
#[derive(Debug, Clone, PartialEq)]
pub struct OutboxEntry {
    /// Recipient.
    pub user: String,
    /// Report name.
    pub report: String,
    /// Formatted content.
    pub delivered: Delivered,
}

/// The Information Delivery Service (IDS).
///
/// Formatting is channel-specific ([`format_for`]); dispatch rides the
/// platform's ESB: each channel kind has a bus channel (`deliver.web`,
/// `deliver.email`, ...) whose service activator appends to the outbox —
/// so delivery is observable, auditable and replayable.
pub struct DeliveryService {
    bus: Arc<MessageBus>,
    subscriptions: Mutex<Vec<Subscription>>,
    outbox: Arc<Mutex<Vec<OutboxEntry>>>,
}

impl DeliveryService {
    /// Build the service and wire its bus channels.
    pub fn new(bus: Arc<MessageBus>) -> Result<Self, DeliveryError> {
        let outbox = Arc::new(Mutex::new(Vec::new()));
        for ch in Channel::ALL {
            let name = bus_channel(ch);
            bus.create_channel(&name)
                .map_err(|e| DeliveryError::Bus(e.to_string()))?;
            let sink = Arc::clone(&outbox);
            bus.subscribe(
                &name,
                Endpoint::ServiceActivator(Box::new(move |m: &Message| {
                    let user = m.header("user").unwrap_or("?").to_string();
                    let report = m.header("report").unwrap_or("?").to_string();
                    let channel = m
                        .header("channel")
                        .and_then(Channel::parse)
                        .ok_or_else(|| "missing channel header".to_string())?;
                    let body = m
                        .payload
                        .as_text()
                        .ok_or_else(|| "binary payload unsupported".to_string())?
                        .to_string();
                    sink.lock().push(OutboxEntry {
                        user,
                        report,
                        delivered: Delivered {
                            channel,
                            content_type: channel.content_type().to_string(),
                            body,
                        },
                    });
                    Ok(())
                })),
            )
            .map_err(|e| DeliveryError::Bus(e.to_string()))?;
        }
        Ok(DeliveryService {
            bus,
            subscriptions: Mutex::new(Vec::new()),
            outbox,
        })
    }

    /// Subscribe a user to a report on a channel.
    pub fn subscribe(&self, user: &str, report: &str, channel: Channel) {
        self.subscriptions.lock().push(Subscription {
            user: user.to_string(),
            report: report.to_string(),
            channel,
        });
    }

    /// Remove a user's subscription to a report. Returns whether one
    /// existed.
    pub fn unsubscribe(&self, user: &str, report: &str) -> bool {
        let mut subs = self.subscriptions.lock();
        let before = subs.len();
        subs.retain(|s| !(s.user == user && s.report == report));
        subs.len() != before
    }

    /// Current subscriptions to a report.
    pub fn subscribers(&self, report: &str) -> Vec<Subscription> {
        self.subscriptions
            .lock()
            .iter()
            .filter(|s| s.report == report)
            .cloned()
            .collect()
    }

    /// Deliver a payload to one user on one channel, immediately.
    pub fn deliver(
        &self,
        user: &str,
        report: &str,
        channel: Channel,
        payload: &ReportPayload,
    ) -> Result<Delivered, DeliveryError> {
        let mut span = odbis_telemetry::child_span("delivery", "deliver");
        span.set_detail(report);
        let formatted = format_for(channel, payload);
        span.set_bytes(formatted.body.len() as u64);
        let msg = Message::text(formatted.body.clone())
            .with_header("user", user)
            .with_header("report", report)
            .with_header("channel", channel_code(channel));
        if let Err(e) = self
            .bus
            .send_and_pump(&bus_channel(channel), msg)
            .map_err(|e| DeliveryError::Bus(e.to_string()))
        {
            span.fail();
            return Err(e);
        }
        Ok(formatted)
    }

    /// Burst: deliver a report payload to every subscriber, each on their
    /// own channel. Returns the number of deliveries.
    pub fn burst(&self, report: &str, payload: &ReportPayload) -> Result<usize, DeliveryError> {
        let subs = self.subscribers(report);
        for s in &subs {
            self.deliver(&s.user, report, s.channel, payload)?;
        }
        Ok(subs.len())
    }

    /// Snapshot of the outbox.
    pub fn outbox(&self) -> Vec<OutboxEntry> {
        self.outbox.lock().clone()
    }

    /// Clear the outbox; returns the drained entries.
    pub fn drain_outbox(&self) -> Vec<OutboxEntry> {
        std::mem::take(&mut self.outbox.lock())
    }
}

fn bus_channel(ch: Channel) -> String {
    format!("deliver.{}", channel_code(ch))
}

fn channel_code(ch: Channel) -> &'static str {
    match ch {
        Channel::WebBrowser => "web",
        Channel::WebService => "api",
        Channel::Mobile => "mobile",
        Channel::OfficeTool => "office",
        Channel::Email => "email",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbis_sql::QueryResult;
    use odbis_storage::Value;

    fn payload() -> ReportPayload {
        ReportPayload {
            title: "Daily".into(),
            data: QueryResult {
                columns: vec!["k".into(), "v".into()],
                rows: vec![vec!["a".into(), Value::Int(1)]],
                rows_affected: 0,
            },
        }
    }

    fn service() -> DeliveryService {
        DeliveryService::new(Arc::new(MessageBus::new())).unwrap()
    }

    #[test]
    fn deliver_lands_in_outbox_via_bus() {
        let ids = service();
        let d = ids
            .deliver("alice", "daily-report", Channel::Email, &payload())
            .unwrap();
        assert!(d.body.contains("Daily"));
        let outbox = ids.outbox();
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].user, "alice");
        assert_eq!(outbox[0].report, "daily-report");
        assert_eq!(outbox[0].delivered.channel, Channel::Email);
        assert_eq!(outbox[0].delivered.body, d.body);
    }

    #[test]
    fn burst_reaches_each_subscriber_once_on_their_channel() {
        let ids = service();
        ids.subscribe("alice", "daily", Channel::Email);
        ids.subscribe("bob", "daily", Channel::Mobile);
        ids.subscribe("carol", "other", Channel::WebService);
        let n = ids.burst("daily", &payload()).unwrap();
        assert_eq!(n, 2);
        let outbox = ids.outbox();
        assert_eq!(outbox.len(), 2);
        let users: Vec<&str> = outbox.iter().map(|e| e.user.as_str()).collect();
        assert!(users.contains(&"alice") && users.contains(&"bob"));
        let bob = outbox.iter().find(|e| e.user == "bob").unwrap();
        assert_eq!(bob.delivered.channel, Channel::Mobile);
        assert!(serde_json::from_str::<serde_json::Value>(&bob.delivered.body).is_ok());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let ids = service();
        ids.subscribe("alice", "daily", Channel::Email);
        assert!(ids.unsubscribe("alice", "daily"));
        assert!(!ids.unsubscribe("alice", "daily"));
        assert_eq!(ids.burst("daily", &payload()).unwrap(), 0);
        assert!(ids.outbox().is_empty());
    }

    #[test]
    fn drain_outbox_empties() {
        let ids = service();
        ids.deliver("a", "r", Channel::OfficeTool, &payload())
            .unwrap();
        assert_eq!(ids.drain_outbox().len(), 1);
        assert!(ids.outbox().is_empty());
    }
}
