//! Channel-specific formatting of report payloads.

use odbis_sql::QueryResult;
use odbis_storage::Value;

/// Client channels the IDS abstracts over (ODBIS §3.1: "an abstraction
/// level to support many client interfaces and technologies (e.g., web
/// browser, mobile, office tools). It can be also presented as a web
/// services").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Full HTML for desktop browsers.
    WebBrowser,
    /// JSON for web-service consumers.
    WebService,
    /// Compact JSON (top rows only) for mobile clients.
    Mobile,
    /// CSV for office tools (spreadsheets).
    OfficeTool,
    /// Plain-text digest for e-mail.
    Email,
}

impl Channel {
    /// All channels.
    pub const ALL: [Channel; 5] = [
        Channel::WebBrowser,
        Channel::WebService,
        Channel::Mobile,
        Channel::OfficeTool,
        Channel::Email,
    ];

    /// MIME type the channel produces.
    pub fn content_type(self) -> &'static str {
        match self {
            Channel::WebBrowser => "text/html; charset=utf-8",
            Channel::WebService | Channel::Mobile => "application/json",
            Channel::OfficeTool => "text/csv",
            Channel::Email => "text/plain; charset=utf-8",
        }
    }

    /// Parse from a name (subscription configuration).
    pub fn parse(s: &str) -> Option<Channel> {
        match s.to_ascii_lowercase().as_str() {
            "web" | "browser" | "webbrowser" => Some(Channel::WebBrowser),
            "webservice" | "api" | "ws" => Some(Channel::WebService),
            "mobile" => Some(Channel::Mobile),
            "office" | "csv" | "officetool" => Some(Channel::OfficeTool),
            "email" | "mail" => Some(Channel::Email),
            _ => None,
        }
    }
}

/// A report payload ready for delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportPayload {
    /// Report title.
    pub title: String,
    /// Result data.
    pub data: QueryResult,
}

/// A formatted delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivered {
    /// Channel it was formatted for.
    pub channel: Channel,
    /// MIME type.
    pub content_type: String,
    /// Body.
    pub body: String,
}

/// Rows included in mobile (compact) deliveries.
pub const MOBILE_ROW_CAP: usize = 20;

/// Format a payload for a channel.
pub fn format_for(channel: Channel, payload: &ReportPayload) -> Delivered {
    let body = match channel {
        Channel::WebBrowser => html_document(payload),
        Channel::WebService => json_body(payload, None),
        Channel::Mobile => json_body(payload, Some(MOBILE_ROW_CAP)),
        Channel::OfficeTool => csv_body(payload),
        Channel::Email => text_body(payload),
    };
    Delivered {
        channel,
        content_type: channel.content_type().to_string(),
        body,
    }
}

fn html_document(payload: &ReportPayload) -> String {
    let spec = odbis_reporting::TableSpec {
        title: payload.title.clone(),
        columns: vec![],
        max_rows: None,
    };
    let table = odbis_reporting::render_table_html(&spec, &payload.data)
        .unwrap_or_else(|e| format!("<p>render error: {e}</p>"));
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>{0}</title></head>\n\
         <body><h1>{0}</h1>\n{table}</body></html>\n",
        odbis_reporting::escape_html(&payload.title)
    )
}

fn value_to_json(v: &Value) -> serde_json::Value {
    match v {
        Value::Null => serde_json::Value::Null,
        Value::Bool(b) => serde_json::Value::Bool(*b),
        Value::Int(i) => serde_json::Value::from(*i),
        Value::Float(f) => serde_json::Number::from_f64(*f)
            .map(serde_json::Value::Number)
            .unwrap_or(serde_json::Value::Null),
        other => serde_json::Value::String(other.render()),
    }
}

fn json_body(payload: &ReportPayload, cap: Option<usize>) -> String {
    let limit = cap.unwrap_or(payload.data.rows.len());
    let rows: Vec<serde_json::Value> = payload
        .data
        .rows
        .iter()
        .take(limit)
        .map(|row| {
            let obj: serde_json::Map<String, serde_json::Value> = payload
                .data
                .columns
                .iter()
                .zip(row)
                .map(|(c, v)| (c.clone(), value_to_json(v)))
                .collect();
            serde_json::Value::Object(obj)
        })
        .collect();
    serde_json::json!({
        "title": payload.title,
        "columns": payload.data.columns,
        "rowCount": payload.data.rows.len(),
        "truncated": limit < payload.data.rows.len(),
        "rows": rows,
    })
    .to_string()
}

fn csv_body(payload: &ReportPayload) -> String {
    let mut out = String::new();
    out.push_str(&payload.data.columns.join(","));
    out.push('\n');
    for row in &payload.data.rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                let s = if v.is_null() {
                    String::new()
                } else {
                    v.render()
                };
                if s.contains(',') || s.contains('"') || s.contains('\n') {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn text_body(payload: &ReportPayload) -> String {
    odbis_reporting::render_text(&payload.title, &payload.data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(rows: usize) -> ReportPayload {
        ReportPayload {
            title: "Sales".into(),
            data: QueryResult {
                columns: vec!["region".into(), "total".into()],
                rows: (0..rows)
                    .map(|i| vec![Value::from(format!("r{i}")), Value::Int(i as i64)])
                    .collect(),
                rows_affected: 0,
            },
        }
    }

    #[test]
    fn every_channel_produces_its_content_type() {
        for ch in Channel::ALL {
            let d = format_for(ch, &payload(3));
            assert_eq!(d.content_type, ch.content_type());
            assert!(!d.body.is_empty());
        }
    }

    #[test]
    fn web_html_contains_table() {
        let d = format_for(Channel::WebBrowser, &payload(2));
        assert!(d.body.contains("<!DOCTYPE html>"));
        assert!(d.body.contains("odbis-table"));
        assert!(d.body.contains("r1"));
    }

    #[test]
    fn webservice_json_is_parseable_and_typed() {
        let d = format_for(Channel::WebService, &payload(2));
        let v: serde_json::Value = serde_json::from_str(&d.body).unwrap();
        assert_eq!(v["title"], "Sales");
        assert_eq!(v["rowCount"], 2);
        assert_eq!(v["truncated"], false);
        assert_eq!(v["rows"][1]["total"], 1);
        assert_eq!(v["rows"][0]["region"], "r0");
    }

    #[test]
    fn mobile_caps_rows() {
        let d = format_for(Channel::Mobile, &payload(50));
        let v: serde_json::Value = serde_json::from_str(&d.body).unwrap();
        assert_eq!(v["rows"].as_array().unwrap().len(), MOBILE_ROW_CAP);
        assert_eq!(v["truncated"], true);
        assert_eq!(v["rowCount"], 50);
    }

    #[test]
    fn csv_and_email_bodies() {
        let d = format_for(Channel::OfficeTool, &payload(1));
        assert_eq!(d.body, "region,total\nr0,0\n");
        let d = format_for(Channel::Email, &payload(1));
        assert!(d.body.starts_with("== Sales =="));
    }

    #[test]
    fn channel_parsing() {
        assert_eq!(Channel::parse("API"), Some(Channel::WebService));
        assert_eq!(Channel::parse("csv"), Some(Channel::OfficeTool));
        assert_eq!(Channel::parse("fax"), None);
    }
}
