//! Columnar batches: the vectorized currency of the data plane.
//!
//! A [`Batch`] is a set of equal-length typed column vectors with per-column
//! null bitmaps, built from the same [`DataType`]/[`Value`] vocabulary as the
//! row heap. Scans produce batches ([`crate::Table::scan_batch`]), the SQL
//! executor evaluates predicates and aggregates column-wise over them, and
//! ETL frames and OLAP cube builds convert at their boundaries instead of
//! round-tripping through per-row clones.
//!
//! Columns are `Arc`-shared: projecting an existing column or re-using a
//! scan result in several operators costs a pointer bump, not a copy.

use std::sync::Arc;

use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};

/// Typed backing storage for one column of a [`Batch`].
///
/// The typed variants hold unboxed primitives (null slots hold a default and
/// are masked by the owning [`ColumnVec`]'s null bitmap). `Mixed` is the
/// fallback for heterogeneous columns — e.g. CSV columns whose per-cell type
/// inference produced more than one type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// UTF-8 strings.
    Text(Vec<String>),
    /// Dates as days since 1970-01-01.
    Date(Vec<i32>),
    /// Timestamps as microseconds since the epoch.
    Timestamp(Vec<i64>),
    /// Heterogeneous fallback: one boxed [`Value`] per row.
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Timestamp(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// Whether the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Text(v) => Value::Text(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Timestamp(v) => Value::Timestamp(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    fn filter(&self, keep: &[bool]) -> ColumnData {
        fn pick<T: Clone>(v: &[T], keep: &[bool]) -> Vec<T> {
            v.iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            ColumnData::Bool(v) => ColumnData::Bool(pick(v, keep)),
            ColumnData::Int(v) => ColumnData::Int(pick(v, keep)),
            ColumnData::Float(v) => ColumnData::Float(pick(v, keep)),
            ColumnData::Text(v) => ColumnData::Text(pick(v, keep)),
            ColumnData::Date(v) => ColumnData::Date(pick(v, keep)),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(pick(v, keep)),
            ColumnData::Mixed(v) => ColumnData::Mixed(pick(v, keep)),
        }
    }

    fn slice(&self, start: usize, end: usize) -> ColumnData {
        match self {
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
            ColumnData::Int(v) => ColumnData::Int(v[start..end].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..end].to_vec()),
            ColumnData::Text(v) => ColumnData::Text(v[start..end].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[start..end].to_vec()),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(v[start..end].to_vec()),
            ColumnData::Mixed(v) => ColumnData::Mixed(v[start..end].to_vec()),
        }
    }
}

/// One column of a [`Batch`]: typed data plus an optional null bitmap
/// (`None` means no nulls; `Some(flags)` marks null slots with `true`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVec {
    data: ColumnData,
    nulls: Option<Vec<bool>>,
}

impl ColumnVec {
    /// Column from typed data and an optional null bitmap.
    ///
    /// # Panics
    /// Panics if the bitmap length differs from the data length.
    pub fn new(data: ColumnData, nulls: Option<Vec<bool>>) -> Self {
        if let Some(n) = &nulls {
            assert_eq!(n.len(), data.len(), "null bitmap length mismatch");
        }
        ColumnVec { data, nulls }
    }

    /// Build a column from owned values, inferring the tightest typed
    /// representation: if every non-null value has the same [`DataType`]
    /// the column is typed; otherwise it falls back to `Mixed`.
    pub fn from_values(values: Vec<Value>) -> Self {
        let mut ty: Option<DataType> = None;
        let mut homogeneous = true;
        for v in &values {
            if let Some(t) = v.data_type() {
                match ty {
                    None => ty = Some(t),
                    Some(prev) if prev == t => {}
                    Some(_) => {
                        homogeneous = false;
                        break;
                    }
                }
            }
        }
        match (homogeneous, ty) {
            (true, Some(t)) => {
                let mut b = ColumnBuilder::with_capacity(t, values.len());
                for v in &values {
                    b.push(v);
                }
                b.finish()
            }
            _ => ColumnVec {
                data: ColumnData::Mixed(values),
                nulls: None,
            },
        }
    }

    /// A column repeating one value `len` times (scalar broadcast).
    pub fn broadcast(v: &Value, len: usize) -> Self {
        let data = match v {
            Value::Null => {
                return ColumnVec {
                    data: ColumnData::Mixed(vec![Value::Null; len]),
                    nulls: None,
                }
            }
            Value::Bool(b) => ColumnData::Bool(vec![*b; len]),
            Value::Int(i) => ColumnData::Int(vec![*i; len]),
            Value::Float(f) => ColumnData::Float(vec![*f; len]),
            Value::Text(s) => ColumnData::Text(vec![s.clone(); len]),
            Value::Date(d) => ColumnData::Date(vec![*d; len]),
            Value::Timestamp(t) => ColumnData::Timestamp(vec![*t; len]),
        };
        ColumnVec { data, nulls: None }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The typed backing data.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap, when any null-tracking is present.
    pub fn nulls(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    /// Whether row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match &self.nulls {
            Some(n) => n[i],
            None => matches!(&self.data, ColumnData::Mixed(v) if v[i].is_null()),
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match &self.nulls {
            Some(n) => n.iter().filter(|&&b| b).count(),
            None => match &self.data {
                ColumnData::Mixed(v) => v.iter().filter(|v| v.is_null()).count(),
                _ => 0,
            },
        }
    }

    /// The value at row `i` (boxed back into a [`Value`]).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            Value::Null
        } else {
            self.data.value_at(i)
        }
    }

    /// All values, boxed (row pivot of one column).
    pub fn values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    /// The declared type of the typed variants; `None` for `Mixed`.
    pub fn data_type(&self) -> Option<DataType> {
        match &self.data {
            ColumnData::Bool(_) => Some(DataType::Bool),
            ColumnData::Int(_) => Some(DataType::Int),
            ColumnData::Float(_) => Some(DataType::Float),
            ColumnData::Text(_) => Some(DataType::Text),
            ColumnData::Date(_) => Some(DataType::Date),
            ColumnData::Timestamp(_) => Some(DataType::Timestamp),
            ColumnData::Mixed(_) => None,
        }
    }

    /// Keep only the rows where `keep` is true.
    ///
    /// # Panics
    /// Panics if `keep.len() != self.len()`.
    pub fn filter(&self, keep: &[bool]) -> ColumnVec {
        assert_eq!(keep.len(), self.len(), "filter mask length mismatch");
        let data = self.data.filter(keep);
        let nulls = self.nulls.as_ref().map(|n| {
            n.iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(&b, _)| b)
                .collect()
        });
        ColumnVec { data, nulls }
    }

    /// The contiguous sub-column `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> ColumnVec {
        ColumnVec {
            data: self.data.slice(start, end),
            nulls: self.nulls.as_ref().map(|n| n[start..end].to_vec()),
        }
    }
}

/// Incremental builder for one typed column (used by batch-producing scans,
/// where the schema fixes each column's [`DataType`] up front).
///
/// If a pushed value does not match the declared type the builder degrades
/// to `Mixed` transparently, so it is safe against heterogeneous inputs.
#[derive(Debug)]
pub struct ColumnBuilder {
    data: ColumnData,
    nulls: Vec<bool>,
    any_null: bool,
}

impl ColumnBuilder {
    /// Builder for a column of `ty` with room for `cap` rows.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        let data = match ty {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Text => ColumnData::Text(Vec::with_capacity(cap)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(cap)),
            DataType::Timestamp => ColumnData::Timestamp(Vec::with_capacity(cap)),
        };
        ColumnBuilder {
            data,
            nulls: Vec::with_capacity(cap),
            any_null: false,
        }
    }

    /// Append one value (NULL or a value of the declared type; anything
    /// else degrades the builder to `Mixed`).
    pub fn push(&mut self, v: &Value) {
        if v.is_null() {
            self.any_null = true;
            self.nulls.push(true);
            match &mut self.data {
                ColumnData::Bool(d) => d.push(false),
                ColumnData::Int(d) => d.push(0),
                ColumnData::Float(d) => d.push(0.0),
                ColumnData::Text(d) => d.push(String::new()),
                ColumnData::Date(d) => d.push(0),
                ColumnData::Timestamp(d) => d.push(0),
                ColumnData::Mixed(d) => d.push(Value::Null),
            }
            return;
        }
        self.nulls.push(false);
        match (&mut self.data, v) {
            (ColumnData::Bool(d), Value::Bool(b)) => d.push(*b),
            (ColumnData::Int(d), Value::Int(i)) => d.push(*i),
            (ColumnData::Float(d), Value::Float(f)) => d.push(*f),
            (ColumnData::Text(d), Value::Text(s)) => d.push(s.clone()),
            (ColumnData::Date(d), Value::Date(x)) => d.push(*x),
            (ColumnData::Timestamp(d), Value::Timestamp(t)) => d.push(*t),
            (ColumnData::Mixed(d), v) => d.push(v.clone()),
            (_, v) => {
                // type mismatch: degrade to Mixed, replaying what we have
                // (self.data holds every prior row; v is not in it yet)
                let mut vals = Vec::with_capacity(self.data.len() + 1);
                for i in 0..self.data.len() {
                    vals.push(if self.nulls[i] {
                        Value::Null
                    } else {
                        self.data.value_at(i)
                    });
                }
                vals.push(v.clone());
                self.data = ColumnData::Mixed(vals);
            }
        }
    }

    /// Finish into a [`ColumnVec`].
    pub fn finish(self) -> ColumnVec {
        let nulls = match (&self.data, self.any_null) {
            (ColumnData::Mixed(_), _) | (_, false) => None,
            (_, true) => Some(self.nulls),
        };
        ColumnVec {
            data: self.data,
            nulls,
        }
    }
}

/// A columnar batch: equal-length [`ColumnVec`]s sharing one row count.
///
/// Columns are reference-counted, so cloning a batch or projecting a column
/// through an operator is O(1) per column.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    columns: Vec<Arc<ColumnVec>>,
    rows: usize,
}

impl Batch {
    /// Batch from shared columns and an explicit row count (which also
    /// covers zero-column batches). Fails on a column length mismatch.
    pub fn new(columns: Vec<Arc<ColumnVec>>, rows: usize) -> DbResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(DbError::Invalid(format!(
                    "batch column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
        }
        Ok(Batch { columns, rows })
    }

    /// Batch from owned columns. Fails on a column length mismatch; the row
    /// count is taken from the first column (0 when there are none).
    pub fn from_columns(columns: Vec<ColumnVec>) -> DbResult<Self> {
        let rows = columns.first().map_or(0, ColumnVec::len);
        Batch::new(columns.into_iter().map(Arc::new).collect(), rows)
    }

    /// Pivot rows into a batch of `arity` columns, inferring each column's
    /// typed representation. Fails on a row arity mismatch.
    pub fn from_rows(arity: usize, rows: Vec<Vec<Value>>) -> DbResult<Self> {
        let n = rows.len();
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            if row.len() != arity {
                return Err(DbError::ArityMismatch {
                    expected: arity,
                    actual: row.len(),
                });
            }
            for (c, v) in row.into_iter().enumerate() {
                cols[c].push(v);
            }
        }
        Batch::new(
            cols.into_iter()
                .map(|vals| Arc::new(ColumnVec::from_values(vals)))
                .collect(),
            n,
        )
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// One column, shared.
    pub fn column(&self, i: usize) -> &Arc<ColumnVec> {
        &self.columns[i]
    }

    /// All columns, shared.
    pub fn columns(&self) -> &[Arc<ColumnVec>] {
        &self.columns
    }

    /// The value at (`col`, `row`), boxed back into a [`Value`].
    pub fn value(&self, col: usize, row: usize) -> Value {
        self.columns[col].value(row)
    }

    /// One row, pivoted out of the columns.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Pivot the whole batch back to rows (the row↔batch boundary used by
    /// joins, sorts, and the final `QueryResult`).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Keep only the rows where `keep` is true (vectorized selection).
    ///
    /// # Panics
    /// Panics if `keep.len() != self.num_rows()`.
    pub fn filter(&self, keep: &[bool]) -> Batch {
        assert_eq!(keep.len(), self.rows, "filter mask length mismatch");
        let rows = keep.iter().filter(|&&k| k).count();
        Batch {
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.filter(keep)))
                .collect(),
            rows,
        }
    }

    /// Concatenate `parts` row-wise into one batch of `arity` columns —
    /// the reassembly point of the morsel-parallel executor.
    ///
    /// Columns whose non-empty parts share one typed representation are
    /// spliced slice-wise (null bitmaps merged); anything else falls
    /// back to value-level rebuilding with type re-inference.
    pub fn concat(arity: usize, parts: &[Batch]) -> DbResult<Batch> {
        for p in parts {
            if p.num_columns() != arity {
                return Err(DbError::ArityMismatch {
                    expected: arity,
                    actual: p.num_columns(),
                });
            }
        }
        if parts.len() == 1 {
            return Ok(parts[0].clone());
        }
        let rows = parts.iter().map(Batch::num_rows).sum();
        let columns = (0..arity)
            .map(|c| Arc::new(concat_column(parts, c, rows)))
            .collect();
        Batch::new(columns, rows)
    }

    /// The contiguous sub-batch `[start, end)` (used by LIMIT/OFFSET).
    pub fn slice(&self, start: usize, end: usize) -> Batch {
        let start = start.min(self.rows);
        let end = end.clamp(start, self.rows);
        Batch {
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.slice(start, end)))
                .collect(),
            rows: end - start,
        }
    }
}

/// Concatenate column `c` across `parts` (`rows` = total row count).
fn concat_column(parts: &[Batch], c: usize, rows: usize) -> ColumnVec {
    let live: Vec<&ColumnVec> = parts
        .iter()
        .filter(|p| p.num_rows() > 0)
        .map(|p| p.column(c).as_ref())
        .collect();
    let Some(first) = live.first() else {
        return ColumnVec::from_values(Vec::new());
    };
    let homogeneous = live
        .iter()
        .all(|cv| std::mem::discriminant(cv.data()) == std::mem::discriminant(first.data()));
    if !homogeneous {
        // Type differs across morsels (e.g. one degraded to Mixed):
        // rebuild value-wise and let inference pick the representation.
        let mut vals = Vec::with_capacity(rows);
        for cv in &live {
            vals.extend(cv.values());
        }
        return ColumnVec::from_values(vals);
    }
    macro_rules! splice {
        ($variant:ident) => {{
            let mut out = Vec::with_capacity(rows);
            for cv in &live {
                match cv.data() {
                    ColumnData::$variant(v) => out.extend_from_slice(v),
                    _ => unreachable!("homogeneous discriminants checked above"),
                }
            }
            ColumnData::$variant(out)
        }};
    }
    let data = match first.data() {
        ColumnData::Bool(_) => splice!(Bool),
        ColumnData::Int(_) => splice!(Int),
        ColumnData::Float(_) => splice!(Float),
        ColumnData::Text(_) => splice!(Text),
        ColumnData::Date(_) => splice!(Date),
        ColumnData::Timestamp(_) => splice!(Timestamp),
        ColumnData::Mixed(_) => splice!(Mixed),
    };
    let nulls = if live.iter().any(|cv| cv.nulls().is_some()) {
        let mut mask = Vec::with_capacity(rows);
        for cv in &live {
            match cv.nulls() {
                Some(n) => mask.extend_from_slice(n),
                None => mask.extend(std::iter::repeat_n(false, cv.len())),
            }
        }
        Some(mask)
    } else {
        None
    };
    ColumnVec::new(data, nulls)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(1), Value::from("a"), Value::Float(1.5)],
            vec![Value::Int(2), Value::Null, Value::Float(2.5)],
            vec![Value::Null, Value::from("c"), Value::Float(3.5)],
        ]
    }

    #[test]
    fn concat_splices_typed_columns_and_null_masks() {
        let rows = sample_rows();
        let whole = Batch::from_rows(3, rows.clone()).unwrap();
        let parts = vec![whole.slice(0, 1), whole.slice(1, 1), whole.slice(1, 3)];
        let glued = Batch::concat(3, &parts).unwrap();
        assert_eq!(glued.num_rows(), 3);
        assert_eq!(glued.to_rows(), rows);
        // typed splice is preserved, not degraded to Mixed
        assert!(matches!(glued.column(0).data(), ColumnData::Int(_)));
        assert_eq!(glued.column(0).null_count(), 1);
        assert_eq!(glued.column(1).null_count(), 1);
    }

    #[test]
    fn concat_mixed_representations_falls_back_to_inference() {
        let a = Batch::from_rows(1, vec![vec![Value::Int(1)]]).unwrap();
        let b = Batch::from_rows(1, vec![vec![Value::from("x")]]).unwrap();
        let glued = Batch::concat(1, &[a, b]).unwrap();
        assert_eq!(
            glued.to_rows(),
            vec![vec![Value::Int(1)], vec![Value::from("x")]]
        );
        assert!(matches!(glued.column(0).data(), ColumnData::Mixed(_)));
    }

    #[test]
    fn concat_rejects_arity_mismatch_and_handles_empty() {
        let a = Batch::from_rows(2, vec![vec![Value::Int(1), Value::Int(2)]]).unwrap();
        let b = Batch::from_rows(1, vec![vec![Value::Int(3)]]).unwrap();
        assert!(Batch::concat(2, &[a, b]).is_err());
        let empty = Batch::concat(2, &[]).unwrap();
        assert_eq!(empty.num_rows(), 0);
        assert_eq!(empty.num_columns(), 2);
    }

    #[test]
    fn row_round_trip_is_lossless() {
        let rows = sample_rows();
        let batch = Batch::from_rows(3, rows.clone()).unwrap();
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.num_columns(), 3);
        assert_eq!(batch.to_rows(), rows);
        // typed representations chosen where homogeneous
        assert!(matches!(batch.column(0).data(), ColumnData::Int(_)));
        assert!(matches!(batch.column(1).data(), ColumnData::Text(_)));
        assert!(matches!(batch.column(2).data(), ColumnData::Float(_)));
        assert_eq!(batch.column(0).null_count(), 1);
        assert_eq!(batch.column(2).null_count(), 0);
    }

    #[test]
    fn heterogeneous_columns_fall_back_to_mixed() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::from("two")],
            vec![Value::Null],
        ];
        let batch = Batch::from_rows(1, rows.clone()).unwrap();
        assert!(matches!(batch.column(0).data(), ColumnData::Mixed(_)));
        assert_eq!(batch.column(0).data_type(), None);
        assert_eq!(batch.to_rows(), rows);
        assert_eq!(batch.column(0).null_count(), 1);
        assert!(batch.column(0).is_null(2));
    }

    #[test]
    fn filter_and_slice() {
        let batch = Batch::from_rows(3, sample_rows()).unwrap();
        let filtered = batch.filter(&[true, false, true]);
        assert_eq!(filtered.num_rows(), 2);
        assert_eq!(filtered.value(0, 1), Value::Null);
        assert_eq!(filtered.value(1, 0), Value::from("a"));
        let sliced = batch.slice(1, 3);
        assert_eq!(sliced.num_rows(), 2);
        assert_eq!(sliced.value(2, 0), Value::Float(2.5));
        // out-of-range slice clamps
        assert_eq!(batch.slice(2, 99).num_rows(), 1);
        assert_eq!(batch.slice(99, 99).num_rows(), 0);
    }

    #[test]
    fn arity_and_length_checks() {
        assert!(Batch::from_rows(2, vec![vec![Value::Int(1)]]).is_err());
        let short = ColumnVec::from_values(vec![Value::Int(1)]);
        let long = ColumnVec::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert!(Batch::from_columns(vec![short, long]).is_err());
    }

    #[test]
    fn builder_degrades_on_type_mismatch() {
        let mut b = ColumnBuilder::with_capacity(DataType::Int, 4);
        b.push(&Value::Int(1));
        b.push(&Value::Null);
        b.push(&Value::from("oops"));
        let col = b.finish();
        assert!(matches!(col.data(), ColumnData::Mixed(_)));
        assert_eq!(
            col.values(),
            vec![Value::Int(1), Value::Null, Value::from("oops")]
        );
    }

    #[test]
    fn broadcast_column() {
        let c = ColumnVec::broadcast(&Value::Int(7), 3);
        assert_eq!(c.values(), vec![Value::Int(7); 3]);
        let n = ColumnVec::broadcast(&Value::Null, 2);
        assert!(n.is_null(0) && n.is_null(1));
    }

    #[test]
    fn empty_and_zero_column_batches() {
        let empty = Batch::from_rows(2, Vec::new()).unwrap();
        assert_eq!(empty.num_rows(), 0);
        assert_eq!(empty.num_columns(), 2);
        let zero_cols = Batch::new(Vec::new(), 5).unwrap();
        assert_eq!(zero_cols.num_rows(), 5);
        assert_eq!(zero_cols.num_columns(), 0);
    }
}
