//! Binary columnar segments: the on-disk checkpoint format.
//!
//! A segment is the immutable columnar image of one table at one LSN cut.
//! Where the JSON snapshot re-serializes every row of every table on each
//! checkpoint, a segment stores each column as a sequence of CRC-checked
//! blocks (the same CRC-32 framing discipline as the WAL), compressed with
//! whichever lightweight encoding fits the data — dictionary, run-length,
//! frame-of-reference bitpacking, or plain — and carries a min/max zone map
//! per block so cold scans can skip blocks a range predicate excludes.
//!
//! ## File layout
//!
//! All integers are little-endian; `frame` means the WAL-style
//! `[len: u32][crc: u32][body]` envelope with CRC-32 (IEEE) over the body:
//!
//! ```text
//! magic    b"OSG1"
//! version  u32
//! last_lsn u64                          // LSN cut this segment captures
//! frame    meta JSON                    // {name, schema, indexes, slots}
//! frame    live bitmap                  // bit i set = row slot i is live
//! ncols    u32
//! per column:
//!   nblocks u32
//!   frame × nblocks:
//!     encoding  u8                      // 0 plain, 1 rle, 2 dict, 3 bitpack
//!     rows      u32                     // live values covered
//!     zone      u8                      // 1 = min/max follow
//!     [min value][max value]            // tagged, non-null extremes
//!     null bitmap  ceil(rows/8)
//!     payload                           // non-null values, per encoding
//! ```
//!
//! The layout is column-major and blocks chunk the live rows in
//! [`BLOCK_ROWS`] groups, identically for every column — block *i* of every
//! column covers the same rows, so zone-map pruning on one column skips
//! that row range across all of them. Decoding goes straight into
//! [`ColumnVec`]s (typed vectors + null mask), so a cold scan produces a
//! [`Batch`] without ever pivoting through rows; recovery additionally
//! re-slots rows through the live bitmap so every surviving row keeps the
//! `RowId` it had when the segment was written.
//!
//! Tombstoned slots are represented only in the live bitmap — their row
//! images are gone, which is one of the ways segments end up smaller than
//! the JSON snapshot they replace.

use std::path::Path;

use serde_json::{Map, Number, Value as Json};

use crate::batch::{Batch, ColumnVec};
use crate::error::{DbError, DbResult};
use crate::jsoncodec::{schema_from_json, schema_to_json};
use crate::persist::write_atomic;
use crate::table::Table;
use crate::value::Value;
use crate::wal::crc32;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"OSG1";

/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Live rows per block: one block of every column covers the same chunk of
/// rows, so this is also the zone-map pruning granularity. Matches the
/// executor's morsel size, so a pruned cold scan hands back batches shaped
/// like the ones the query engine already consumes.
pub const BLOCK_ROWS: usize = 4096;

/// How one block's non-null values are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Values back-to-back, tagged. The fallback every block can use.
    Plain,
    /// Run-length: `(count, value)` pairs. Wins on sorted or repetitive
    /// columns.
    Rle,
    /// Dictionary: distinct values once, then bit-packed indexes. Wins on
    /// low-cardinality columns (status codes, categories).
    Dict,
    /// Frame-of-reference bitpacking for integer-family columns (INT,
    /// DATE, TIMESTAMP): minimum plus per-value deltas at the narrowest
    /// bit width that fits.
    BitPack,
}

impl Encoding {
    fn code(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Rle => 1,
            Encoding::Dict => 2,
            Encoding::BitPack => 3,
        }
    }

    fn from_code(c: u8) -> DbResult<Encoding> {
        Ok(match c {
            0 => Encoding::Plain,
            1 => Encoding::Rle,
            2 => Encoding::Dict,
            3 => Encoding::BitPack,
            _ => return Err(DbError::Corrupt(format!("unknown block encoding {c}"))),
        })
    }

    /// The encoding's display name (`plain` / `rle` / `dict` / `bitpack`).
    pub fn as_str(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Rle => "rle",
            Encoding::Dict => "dict",
            Encoding::BitPack => "bitpack",
        }
    }
}

// ---- tagged value codec ---------------------------------------------------

const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_DATE: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;

/// Canonical byte key for dictionary membership: the tagged encoding of
/// the value. Distinguishes `Int(1)` from `Float(1.0)` (different tags)
/// the way `==` does, while merging bit-identical NaNs — which decode back
/// bit-exactly either way. Hashing these keys keeps dictionary building
/// linear; probing a `Vec` with `contains`/`position` is O(distinct·rows)
/// per block and dominated whole-table encodes.
fn value_key(v: &Value) -> Vec<u8> {
    let mut k = Vec::with_capacity(value_size(v));
    write_value(&mut k, v);
    k
}

fn value_size(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 2,
        Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 9,
        Value::Date(_) => 5,
        Value::Text(s) => 5 + s.len(),
    }
}

fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        // Nulls never reach the value codec (the null bitmap carries them);
        // encode defensively as a zero-length text so decode stays total.
        Value::Null => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Timestamp(t) => {
            out.push(TAG_TIMESTAMP);
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn take<'a>(b: &'a [u8], pos: &mut usize, n: usize, what: &str) -> DbResult<&'a [u8]> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= b.len())
        .ok_or_else(|| DbError::Corrupt(format!("segment truncated reading {what}")))?;
    let s = &b[*pos..end];
    *pos = end;
    Ok(s)
}

fn read_u8(b: &[u8], pos: &mut usize, what: &str) -> DbResult<u8> {
    Ok(take(b, pos, 1, what)?[0])
}

fn read_u32(b: &[u8], pos: &mut usize, what: &str) -> DbResult<u32> {
    Ok(u32::from_le_bytes(
        take(b, pos, 4, what)?.try_into().unwrap(),
    ))
}

fn read_u64(b: &[u8], pos: &mut usize, what: &str) -> DbResult<u64> {
    Ok(u64::from_le_bytes(
        take(b, pos, 8, what)?.try_into().unwrap(),
    ))
}

fn read_value(b: &[u8], pos: &mut usize) -> DbResult<Value> {
    let tag = read_u8(b, pos, "value tag")?;
    Ok(match tag {
        TAG_BOOL => Value::Bool(read_u8(b, pos, "bool")? != 0),
        TAG_INT => Value::Int(i64::from_le_bytes(
            take(b, pos, 8, "int")?.try_into().unwrap(),
        )),
        TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(
            take(b, pos, 8, "float")?.try_into().unwrap(),
        ))),
        TAG_TEXT => {
            let len = read_u32(b, pos, "text length")? as usize;
            let bytes = take(b, pos, len, "text bytes")?;
            Value::Text(
                std::str::from_utf8(bytes)
                    .map_err(|_| DbError::Corrupt("segment text not UTF-8".into()))?
                    .to_string(),
            )
        }
        TAG_DATE => Value::Date(i32::from_le_bytes(
            take(b, pos, 4, "date")?.try_into().unwrap(),
        )),
        TAG_TIMESTAMP => Value::Timestamp(i64::from_le_bytes(
            take(b, pos, 8, "timestamp")?.try_into().unwrap(),
        )),
        _ => return Err(DbError::Corrupt(format!("unknown value tag {tag}"))),
    })
}

// ---- bit packing ----------------------------------------------------------

// Both directions run a u128 bit accumulator: it never holds more than
// width + 7 ≤ 71 live bits, so no shift can overflow for any width ≤ 64.
fn pack_bits(values: &[u64], width: u8, out: &mut Vec<u8>) {
    if width == 0 {
        return;
    }
    let mut acc: u128 = 0;
    let mut filled = 0u32;
    for &v in values {
        acc |= (v as u128) << filled;
        filled += width as u32;
        while filled >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

fn unpack_bits(b: &[u8], pos: &mut usize, width: u8, n: usize, what: &str) -> DbResult<Vec<u64>> {
    if width == 0 {
        return Ok(vec![0; n]);
    }
    let nbytes = (n * width as usize).div_ceil(8);
    let bytes = take(b, pos, nbytes, what)?;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut out = Vec::with_capacity(n);
    let mut acc: u128 = 0;
    let mut filled = 0u32;
    let mut iter = bytes.iter();
    for _ in 0..n {
        while filled < width as u32 {
            // cannot run dry: the slice was sized to ceil(n * width / 8)
            acc |= (*iter.next().expect("slice sized above") as u128) << filled;
            filled += 8;
        }
        out.push((acc as u64) & mask);
        acc >>= width;
        filled -= width as u32;
    }
    Ok(out)
}

fn bits_needed(max: u64) -> u8 {
    (64 - max.leading_zeros()) as u8
}

// ---- block encode ---------------------------------------------------------

/// A decoded block: its values (nulls re-inserted), the encoding it was
/// stored with, and its zone map.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedBlock {
    /// The block's values in row order, including nulls.
    pub values: Vec<Value>,
    /// The encoding the block was stored with.
    pub encoding: Encoding,
    /// Smallest non-null value, if the block has any.
    pub min: Option<Value>,
    /// Largest non-null value, if the block has any.
    pub max: Option<Value>,
}

fn int_family_u64(v: &Value) -> Option<(u8, i64)> {
    match v {
        Value::Int(i) => Some((TAG_INT, *i)),
        Value::Date(d) => Some((TAG_DATE, *d as i64)),
        Value::Timestamp(t) => Some((TAG_TIMESTAMP, *t)),
        _ => None,
    }
}

/// Choose the smallest encoding for one block's non-null values, by exact
/// encoded-size comparison (the candidate computations are all linear).
pub fn choose_encoding(values: &[Value]) -> Encoding {
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    if non_null.is_empty() {
        return Encoding::Plain;
    }
    let plain: usize = non_null.iter().map(|v| value_size(v)).sum();
    let mut best = (plain, Encoding::Plain);

    // BitPack: all values one integer-family tag
    if let Some((tag0, _)) = int_family_u64(non_null[0]) {
        let ints: Option<Vec<i64>> = non_null
            .iter()
            .map(|v| {
                int_family_u64(v)
                    .filter(|(t, _)| *t == tag0)
                    .map(|(_, i)| i)
            })
            .collect();
        if let Some(ints) = ints {
            let min = *ints.iter().min().expect("non-empty");
            let spread = ints
                .iter()
                .map(|&i| (i as i128 - min as i128) as u64)
                .max()
                .expect("non-empty");
            let width = bits_needed(spread);
            let size = 1 + 8 + 1 + (ints.len() * width as usize).div_ceil(8);
            if size < best.0 {
                best = (size, Encoding::BitPack);
            }
        }
    }

    // RLE: count runs
    let mut runs = 0usize;
    let mut rle = 4usize;
    let mut prev: Option<&Value> = None;
    for v in &non_null {
        if prev != Some(*v) {
            runs += 1;
            rle += 4 + value_size(v);
            prev = Some(*v);
        }
    }
    let _ = runs;
    if rle < best.0 {
        best = (rle, Encoding::Rle);
    }

    // Dict: distinct values + packed indexes
    let mut seen = std::collections::HashSet::new();
    let mut entries = 0usize;
    let mut overflowed = false;
    for v in &non_null {
        if seen.insert(value_key(v)) {
            entries += value_size(v);
            if seen.len() > non_null.len() / 2 + 1 {
                overflowed = true; // too many distincts to ever win
                break;
            }
        }
    }
    if !overflowed {
        let width = bits_needed(seen.len().saturating_sub(1) as u64).max(1);
        let size = 4 + entries + 1 + (non_null.len() * width as usize).div_ceil(8);
        if size < best.0 {
            best = (size, Encoding::Dict);
        }
    }

    best.1
}

/// Encode one block of `values` (nulls included) onto `out` as a framed
/// block. `forced` pins the encoding — the property tests round-trip every
/// encoding explicitly — and falls back to [`Encoding::Plain`] when the
/// pinned encoding cannot represent the data (e.g. bitpacking text);
/// `None` picks the smallest by [`choose_encoding`].
pub fn encode_block(out: &mut Vec<u8>, values: &[Value], forced: Option<Encoding>) {
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    let mut enc = forced.unwrap_or_else(|| choose_encoding(values));
    if enc == Encoding::BitPack
        && (non_null.is_empty() || {
            let tag0 = int_family_u64(non_null[0]).map(|(t, _)| t);
            tag0.is_none()
                || !non_null
                    .iter()
                    .all(|v| int_family_u64(v).map(|(t, _)| t) == tag0)
        })
    {
        enc = Encoding::Plain;
    }

    let mut body = Vec::with_capacity(64 + values.len());
    body.push(enc.code());
    body.extend_from_slice(&(values.len() as u32).to_le_bytes());

    // zone map over the non-null values
    let min = non_null.iter().min_by(|a, b| a.cmp_total(b));
    let max = non_null.iter().max_by(|a, b| a.cmp_total(b));
    match (min, max) {
        (Some(lo), Some(hi)) => {
            body.push(1);
            write_value(&mut body, lo);
            write_value(&mut body, hi);
        }
        _ => body.push(0),
    }

    // null bitmap: bit i set = values[i] is null
    let mut bitmap = vec![0u8; values.len().div_ceil(8)];
    for (i, v) in values.iter().enumerate() {
        if v.is_null() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    body.extend_from_slice(&bitmap);

    match enc {
        Encoding::Plain => {
            for v in &non_null {
                write_value(&mut body, v);
            }
        }
        Encoding::Rle => {
            let run_count_at = body.len();
            body.extend_from_slice(&0u32.to_le_bytes());
            let mut runs = 0u32;
            let mut i = 0;
            while i < non_null.len() {
                let mut j = i + 1;
                while j < non_null.len() && non_null[j] == non_null[i] {
                    j += 1;
                }
                body.extend_from_slice(&((j - i) as u32).to_le_bytes());
                write_value(&mut body, non_null[i]);
                runs += 1;
                i = j;
            }
            body[run_count_at..run_count_at + 4].copy_from_slice(&runs.to_le_bytes());
        }
        Encoding::Dict => {
            let mut dict: Vec<&Value> = Vec::new();
            let mut slots = std::collections::HashMap::new();
            let mut indexes = Vec::with_capacity(non_null.len());
            for v in &non_null {
                let next = dict.len();
                let idx = *slots.entry(value_key(v)).or_insert_with(|| {
                    dict.push(v);
                    next
                });
                indexes.push(idx as u64);
            }
            body.extend_from_slice(&(dict.len() as u32).to_le_bytes());
            for v in &dict {
                write_value(&mut body, v);
            }
            let width = bits_needed(dict.len().saturating_sub(1) as u64).max(1);
            body.push(width);
            pack_bits(&indexes, width, &mut body);
        }
        Encoding::BitPack => {
            let (tag, _) = int_family_u64(non_null[0]).expect("checked above");
            let ints: Vec<i64> = non_null
                .iter()
                .map(|v| int_family_u64(v).expect("checked above").1)
                .collect();
            let min = *ints.iter().min().expect("non-empty");
            let deltas: Vec<u64> = ints
                .iter()
                .map(|&i| (i as i128 - min as i128) as u64)
                .collect();
            let width = bits_needed(deltas.iter().copied().max().unwrap_or(0));
            body.push(tag);
            body.extend_from_slice(&min.to_le_bytes());
            body.push(width);
            pack_bits(&deltas, width, &mut body);
        }
    }

    frame(out, &body);
}

/// Decode one framed block at `*pos`, advancing past it. The frame CRC is
/// verified before any byte of the body is interpreted, so a flipped bit
/// anywhere in the block surfaces as [`DbError::Corrupt`].
pub fn decode_block(bytes: &[u8], pos: &mut usize) -> DbResult<DecodedBlock> {
    let body = read_frame(bytes, pos, "column block")?;
    let mut p = 0usize;
    let encoding = Encoding::from_code(read_u8(body, &mut p, "encoding")?)?;
    let rows = read_u32(body, &mut p, "block rows")? as usize;
    if rows > BLOCK_ROWS.max(1 << 24) {
        return Err(DbError::Corrupt(format!(
            "implausible block row count {rows}"
        )));
    }
    let (min, max) = if read_u8(body, &mut p, "zone flag")? != 0 {
        (
            Some(read_value(body, &mut p)?),
            Some(read_value(body, &mut p)?),
        )
    } else {
        (None, None)
    };
    let bitmap = take(body, &mut p, rows.div_ceil(8), "null bitmap")?.to_vec();
    let is_null = |i: usize| bitmap[i / 8] & (1 << (i % 8)) != 0;
    let n_non_null = (0..rows).filter(|&i| !is_null(i)).count();

    let mut non_null = Vec::with_capacity(n_non_null);
    match encoding {
        Encoding::Plain => {
            for _ in 0..n_non_null {
                non_null.push(read_value(body, &mut p)?);
            }
        }
        Encoding::Rle => {
            let runs = read_u32(body, &mut p, "run count")?;
            for _ in 0..runs {
                let count = read_u32(body, &mut p, "run length")? as usize;
                let v = read_value(body, &mut p)?;
                if non_null.len() + count > n_non_null {
                    return Err(DbError::Corrupt("rle runs exceed block rows".into()));
                }
                non_null.extend(std::iter::repeat_n(v, count));
            }
        }
        Encoding::Dict => {
            let dict_len = read_u32(body, &mut p, "dictionary size")? as usize;
            if dict_len > n_non_null {
                return Err(DbError::Corrupt("dictionary larger than block".into()));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(read_value(body, &mut p)?);
            }
            let width = read_u8(body, &mut p, "index width")?;
            let indexes = unpack_bits(body, &mut p, width, n_non_null, "dictionary indexes")?;
            for idx in indexes {
                let v = dict.get(idx as usize).ok_or_else(|| {
                    DbError::Corrupt(format!("dictionary index {idx} out of range"))
                })?;
                non_null.push(v.clone());
            }
        }
        Encoding::BitPack => {
            let tag = read_u8(body, &mut p, "bitpack tag")?;
            let min_v =
                i64::from_le_bytes(take(body, &mut p, 8, "bitpack min")?.try_into().unwrap());
            let width = read_u8(body, &mut p, "bitpack width")?;
            if width > 64 {
                return Err(DbError::Corrupt(format!("bitpack width {width} > 64")));
            }
            let deltas = unpack_bits(body, &mut p, width, n_non_null, "bitpack deltas")?;
            for d in deltas {
                let raw = (min_v as i128 + d as i128) as i64;
                non_null.push(match tag {
                    TAG_INT => Value::Int(raw),
                    TAG_DATE => Value::Date(raw as i32),
                    TAG_TIMESTAMP => Value::Timestamp(raw),
                    _ => return Err(DbError::Corrupt(format!("bitpack of value tag {tag}"))),
                });
            }
        }
    }

    if non_null.len() != n_non_null {
        return Err(DbError::Corrupt("block value count mismatch".into()));
    }
    let mut next = non_null.into_iter();
    let values = (0..rows)
        .map(|i| {
            if is_null(i) {
                Value::Null
            } else {
                next.next().expect("counted above")
            }
        })
        .collect();
    Ok(DecodedBlock {
        values,
        encoding,
        min,
        max,
    })
}

// ---- framing --------------------------------------------------------------

fn frame(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

fn read_frame<'a>(bytes: &'a [u8], pos: &mut usize, what: &str) -> DbResult<&'a [u8]> {
    let len = read_u32(bytes, pos, what)? as usize;
    let crc = read_u32(bytes, pos, what)?;
    let body = take(bytes, pos, len, what)?;
    if crc32(body) != crc {
        return Err(DbError::Corrupt(format!("segment {what} crc mismatch")));
    }
    Ok(body)
}

// ---- whole-segment write / read -------------------------------------------

fn meta_json(table: &Table, slots: usize) -> Vec<u8> {
    let mut meta = Map::new();
    meta.insert("name".to_string(), Json::String(table.name.clone()));
    meta.insert("schema".to_string(), schema_to_json(table.schema()));
    meta.insert(
        "indexes".to_string(),
        Json::Array(
            table
                .indexes()
                .iter()
                .map(|ix| {
                    let mut o = Map::new();
                    o.insert("name".to_string(), Json::String(ix.name.clone()));
                    o.insert(
                        "columns".to_string(),
                        Json::Array(
                            ix.columns
                                .iter()
                                .map(|&c| Json::Number(Number::from(c as i64)))
                                .collect(),
                        ),
                    );
                    o.insert("unique".to_string(), Json::Bool(ix.unique));
                    Json::Object(o)
                })
                .collect(),
        ),
    );
    meta.insert(
        "slots".to_string(),
        Json::Number(Number::from(slots as i64)),
    );
    Json::Object(meta).to_string().into_bytes()
}

/// Serialize `table` (already read-locked by the caller) into the segment
/// file at `path`, stamped with `last_lsn`. The write is atomic and
/// durable: unique tmp file, fsync, rename, directory fsync. Returns the
/// encoded size in bytes.
pub(crate) fn write_segment(table: &Table, path: &Path, last_lsn: u64) -> DbResult<u64> {
    let slots = table.raw_rows();
    let live: Vec<&Vec<Value>> = slots.iter().filter_map(|s| s.as_ref()).collect();
    let ncols = table.schema().columns().len();

    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(SEGMENT_MAGIC);
    buf.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    buf.extend_from_slice(&last_lsn.to_le_bytes());
    frame(&mut buf, &meta_json(table, slots.len()));

    let mut live_bitmap = vec![0u8; slots.len().div_ceil(8)];
    for (i, s) in slots.iter().enumerate() {
        if s.is_some() {
            live_bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    frame(&mut buf, &live_bitmap);

    buf.extend_from_slice(&(ncols as u32).to_le_bytes());
    let nblocks = live.len().div_ceil(BLOCK_ROWS);
    let mut chunk_values = Vec::with_capacity(BLOCK_ROWS);
    for col in 0..ncols {
        buf.extend_from_slice(&(nblocks as u32).to_le_bytes());
        for chunk in live.chunks(BLOCK_ROWS) {
            chunk_values.clear();
            chunk_values.extend(chunk.iter().map(|row| row[col].clone()));
            encode_block(&mut buf, &chunk_values, None);
        }
    }

    write_atomic(path, &buf, "segment")?;
    Ok(buf.len() as u64)
}

struct SegmentHeader {
    name: String,
    schema: crate::schema::Schema,
    indexes: Vec<(String, Vec<usize>, bool)>,
    live: Vec<bool>,
    ncols: usize,
    last_lsn: u64,
    /// Byte ranges `(start, end)` of each column's framed blocks:
    /// `blocks[col][block]`.
    blocks: Vec<Vec<(usize, usize)>>,
}

/// Parse the segment envelope: header, live bitmap, and the frame
/// boundaries of every block — without decoding any block body. Block CRCs
/// are verified later, when (and only if) a block is decoded.
fn parse_header(bytes: &[u8], origin: &Path) -> DbResult<SegmentHeader> {
    let corrupt = |m: &str| DbError::Corrupt(format!("{m} ({})", origin.display()));
    let mut pos = 0usize;
    if take(bytes, &mut pos, 4, "magic")? != SEGMENT_MAGIC {
        return Err(corrupt("not a segment file"));
    }
    let version = read_u32(bytes, &mut pos, "version")?;
    if version != SEGMENT_VERSION {
        return Err(corrupt(&format!(
            "segment version {version} not supported (expected {SEGMENT_VERSION})"
        )));
    }
    let last_lsn = read_u64(bytes, &mut pos, "last_lsn")?;
    let meta_bytes = read_frame(bytes, &mut pos, "meta")?;
    let meta_text =
        std::str::from_utf8(meta_bytes).map_err(|_| corrupt("segment meta not UTF-8"))?;
    let meta: Json = serde_json::from_str(meta_text)
        .map_err(|e| corrupt(&format!("segment meta not JSON: {e}")))?;
    let name = meta
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("segment meta missing name"))?
        .to_string();
    let schema = schema_from_json(
        meta.get("schema")
            .ok_or_else(|| corrupt("segment meta missing schema"))?,
    )?;
    let mut indexes = Vec::new();
    for ix in meta
        .get("indexes")
        .and_then(Json::as_array)
        .ok_or_else(|| corrupt("segment meta missing indexes"))?
    {
        let iname = ix
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("index missing name"))?;
        let cols = ix
            .get("columns")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("index missing columns"))?
            .iter()
            .map(|c| c.as_i64().map(|i| i as usize))
            .collect::<Option<Vec<usize>>>()
            .ok_or_else(|| corrupt("index column not a number"))?;
        let unique = ix
            .get("unique")
            .and_then(Json::as_bool)
            .ok_or_else(|| corrupt("index missing unique flag"))?;
        indexes.push((iname.to_string(), cols, unique));
    }
    let slots = meta
        .get("slots")
        .and_then(Json::as_i64)
        .filter(|s| *s >= 0)
        .ok_or_else(|| corrupt("segment meta missing slots"))? as usize;

    let bitmap = read_frame(bytes, &mut pos, "live bitmap")?;
    if bitmap.len() != slots.div_ceil(8) {
        return Err(corrupt("live bitmap length mismatch"));
    }
    let live: Vec<bool> = (0..slots)
        .map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
        .collect();

    let ncols = read_u32(bytes, &mut pos, "column count")? as usize;
    if ncols != schema.columns().len() {
        return Err(corrupt("segment column count does not match schema"));
    }
    let mut blocks = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let nblocks = read_u32(bytes, &mut pos, "block count")? as usize;
        let mut col_blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let start = pos;
            let len = read_u32(bytes, &mut pos, "block frame")? as usize;
            pos += 4; // crc
            take(bytes, &mut pos, len, "block frame")?;
            col_blocks.push((start, pos));
        }
        blocks.push(col_blocks);
    }
    Ok(SegmentHeader {
        name,
        schema,
        indexes,
        live,
        ncols,
        last_lsn,
        blocks,
    })
}

/// Read a segment back into a [`Table`], returning it with the segment's
/// `last_lsn` stamp. Slot-preserving, like the JSON snapshot loader: the
/// live bitmap re-creates tombstones so every surviving row keeps its
/// `RowId`, and index entries are rebuilt from the rows (re-verifying
/// uniqueness). Every block's CRC is verified on the way through.
pub(crate) fn read_segment(path: &Path) -> DbResult<(Table, u64)> {
    let bytes = std::fs::read(path)?;
    let header = parse_header(&bytes, path)?;
    let n_live = header.live.iter().filter(|l| **l).count();

    // decode every column fully (recovery needs all rows)
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(header.ncols);
    for col_blocks in &header.blocks {
        let mut values = Vec::with_capacity(n_live);
        for &(start, _end) in col_blocks {
            let mut pos = start;
            values.extend(decode_block(&bytes, &mut pos)?.values);
        }
        if values.len() != n_live {
            return Err(DbError::Corrupt(format!(
                "segment column has {} values for {} live rows ({})",
                values.len(),
                n_live,
                path.display()
            )));
        }
        columns.push(values);
    }

    // pivot live rows back into their original slots
    let mut rows: Vec<Option<Vec<Value>>> = Vec::with_capacity(header.live.len());
    let mut live_idx = 0usize;
    for &alive in &header.live {
        if alive {
            let row: Vec<Value> = columns.iter().map(|c| c[live_idx].clone()).collect();
            rows.push(Some(row));
            live_idx += 1;
        } else {
            rows.push(None);
        }
    }

    let table = Table::from_parts(header.name, header.schema, rows, header.indexes)?;
    Ok((table, header.last_lsn))
}

/// Result of a cold columnar scan over one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// The table the segment captures.
    pub table: String,
    /// Live rows of the decoded chunks, as typed columns — no row pivot.
    /// With pruning active this is a *superset* of the matching rows (zone
    /// maps are block-granular); the caller re-applies its predicate.
    pub batch: Batch,
    /// Row chunks in the segment (each [`BLOCK_ROWS`] rows).
    pub chunks_total: usize,
    /// Chunks actually decoded (the rest were pruned by zone maps).
    pub chunks_decoded: usize,
}

/// Scan a segment straight into a [`Batch`] without materializing rows.
///
/// `prune` is an optional `(column, lo, hi)` range predicate: any chunk
/// whose zone map on `column` proves every value falls outside `[lo, hi]`
/// is skipped — for *all* columns, since block *i* of each column covers
/// the same rows. Bounds are inclusive; `None` leaves that side open.
/// Chunks whose predicate column is all-null are kept (NULL handling is the
/// caller's filter semantics, not the scan's).
pub fn scan_segment(
    path: impl AsRef<Path>,
    prune: Option<(usize, Option<&Value>, Option<&Value>)>,
) -> DbResult<SegmentScan> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let header = parse_header(&bytes, path)?;
    let chunks_total = header.blocks.first().map_or(0, Vec::len);
    if let Some((col, _, _)) = prune {
        if col >= header.ncols {
            return Err(DbError::Invalid(format!(
                "prune column {col} out of range ({} columns)",
                header.ncols
            )));
        }
    }

    // decide which chunks survive, reading only the predicate column's
    // zone maps (decode verifies the CRC of each block it touches)
    let mut keep = vec![true; chunks_total];
    if let Some((col, lo, hi)) = prune {
        for (chunk, keep_slot) in keep.iter_mut().enumerate() {
            let (start, _) = header.blocks[col][chunk];
            let mut pos = start;
            let block = decode_block(&bytes, &mut pos)?;
            if let (Some(bmin), Some(bmax)) = (&block.min, &block.max) {
                let below = hi.is_some_and(|h| bmin.cmp_total(h) == std::cmp::Ordering::Greater);
                let above = lo.is_some_and(|l| bmax.cmp_total(l) == std::cmp::Ordering::Less);
                if below || above {
                    *keep_slot = false;
                }
            }
        }
    }
    let chunks_decoded = keep.iter().filter(|k| **k).count();

    let mut cols = Vec::with_capacity(header.ncols);
    for col_blocks in &header.blocks {
        let mut values = Vec::new();
        for (chunk, &(start, _)) in col_blocks.iter().enumerate() {
            if !keep[chunk] {
                continue;
            }
            let mut pos = start;
            values.extend(decode_block(&bytes, &mut pos)?.values);
        }
        cols.push(ColumnVec::from_values(values));
    }
    let batch = if cols.is_empty() {
        Batch::from_rows(0, Vec::new())?
    } else {
        Batch::from_columns(cols)?
    };
    Ok(SegmentScan {
        table: header.name,
        batch,
        chunks_total,
        chunks_decoded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "odbis-segment-{name}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        p
    }

    fn wide_table(rows: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Float),
            Column::new("flag", DataType::Bool),
            Column::new("day", DataType::Date),
            Column::new("at", DataType::Timestamp),
        ])
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let mut t = Table::new("wide", schema);
        for i in 0..rows {
            let name = if i % 7 == 0 {
                Value::Null
            } else {
                Value::from(format!("cat-{}", i % 3))
            };
            t.insert(vec![
                (i as i64).into(),
                name,
                (i as f64 * 0.5).into(),
                Value::Bool(i % 2 == 0),
                Value::Date(18000 + (i % 10) as i32),
                Value::Timestamp(1_600_000_000_000_000 + i as i64),
            ])
            .unwrap();
        }
        t.create_index("ix_name", &["name"], false).unwrap();
        t
    }

    #[test]
    fn segment_round_trip_preserves_rows_indexes_and_slots() {
        let mut t = wide_table(100);
        t.delete(3).unwrap();
        t.delete(50).unwrap();
        let path = tmp("roundtrip");
        let bytes = write_segment(&t, &path, 42).unwrap();
        assert!(bytes > 0);
        let (back, lsn) = read_segment(&path).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(back.name, "wide");
        assert_eq!(back.row_count(), 98);
        assert_eq!(back.snapshot(), t.snapshot());
        assert!(back.get(3).is_err(), "tombstone slot must stay dead");
        assert_eq!(back.get(4).unwrap(), t.get(4).unwrap());
        assert!(back.index("ix_name").is_some());
        assert!(back.index("pk_wide").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        let t = Table::new("empty", schema);
        let path = tmp("empty");
        write_segment(&t, &path, 7).unwrap();
        let (back, lsn) = read_segment(&path).unwrap();
        assert_eq!(lsn, 7);
        assert_eq!(back.row_count(), 0);
        let scan = scan_segment(&path, None).unwrap();
        assert_eq!(scan.batch.num_rows(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn encoding_selection_matches_data_shape() {
        // low-cardinality text → dict
        let cats: Vec<Value> = (0..1000)
            .map(|i| Value::from(format!("c{}", i % 4)))
            .collect();
        assert_eq!(choose_encoding(&cats), Encoding::Dict);
        // long runs → rle
        let runs: Vec<Value> = (0..1000).map(|i| Value::Int(i / 250)).collect();
        assert_eq!(choose_encoding(&runs), Encoding::Rle);
        // dense distinct small-range ints → bitpack
        let ints: Vec<Value> = (0..1000)
            .map(|i| Value::Int(1_000_000 + (i * 7) % 997))
            .collect();
        assert_eq!(choose_encoding(&ints), Encoding::BitPack);
        // incompressible text → plain
        let texts: Vec<Value> = (0..100)
            .map(|i| Value::from(format!("unique-{i}-{}", i * 31)))
            .collect();
        assert_eq!(choose_encoding(&texts), Encoding::Plain);
    }

    #[test]
    fn every_encoding_round_trips_with_nulls() {
        let values: Vec<Value> = (0..500)
            .map(|i| {
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Int(100 + (i % 5))
                }
            })
            .collect();
        for enc in [
            Encoding::Plain,
            Encoding::Rle,
            Encoding::Dict,
            Encoding::BitPack,
        ] {
            let mut buf = Vec::new();
            encode_block(&mut buf, &values, Some(enc));
            let mut pos = 0;
            let block = decode_block(&buf, &mut pos).unwrap();
            assert_eq!(block.encoding, enc);
            assert_eq!(block.values, values, "{} round trip", enc.as_str());
            assert_eq!(pos, buf.len());
            assert_eq!(block.min, Some(Value::Int(100)));
            assert_eq!(block.max, Some(Value::Int(104)));
        }
    }

    #[test]
    fn bitpack_falls_back_to_plain_on_text() {
        let values = vec![Value::from("a"), Value::from("b")];
        let mut buf = Vec::new();
        encode_block(&mut buf, &values, Some(Encoding::BitPack));
        let mut pos = 0;
        let block = decode_block(&buf, &mut pos).unwrap();
        assert_eq!(block.encoding, Encoding::Plain);
        assert_eq!(block.values, values);
    }

    #[test]
    fn bitpack_survives_extreme_spreads() {
        let values = vec![Value::Int(i64::MIN), Value::Int(i64::MAX), Value::Int(0)];
        let mut buf = Vec::new();
        encode_block(&mut buf, &values, Some(Encoding::BitPack));
        let mut pos = 0;
        let block = decode_block(&buf, &mut pos).unwrap();
        assert_eq!(block.values, values);
    }

    #[test]
    fn flipped_byte_in_block_is_caught_by_crc() {
        let t = wide_table(64);
        let path = tmp("teeth");
        write_segment(&t, &path, 1).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // flip one byte in every position of the last third of the file
        // (the column blocks) and require every single one to be caught
        let mut caught = 0;
        for at in (clean.len() * 2 / 3..clean.len()).step_by(97) {
            let mut dirty = clean.clone();
            dirty[at] ^= 0x40;
            std::fs::write(&path, &dirty).unwrap();
            match read_segment(&path) {
                Err(DbError::Corrupt(_)) => caught += 1,
                Err(other) => panic!("expected Corrupt, got {other:?}"),
                Ok(_) => panic!("flipped byte at {at} not detected"),
            }
        }
        assert!(caught > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cold_scan_decodes_into_batch_columns() {
        let t = wide_table(200);
        let path = tmp("scan");
        write_segment(&t, &path, 9).unwrap();
        let scan = scan_segment(&path, None).unwrap();
        assert_eq!(scan.table, "wide");
        assert_eq!(scan.batch.num_rows(), 200);
        assert_eq!(scan.batch.columns().len(), 6);
        // typed decode: the int column comes back as a typed vector
        assert!(matches!(
            scan.batch.columns()[0].data(),
            crate::batch::ColumnData::Int(_)
        ));
        let live = t.scan_batch();
        for c in 0..6 {
            for r in 0..200 {
                assert_eq!(scan.batch.value(c, r), live.value(c, r));
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zone_maps_prune_chunks_on_sorted_column() {
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]).unwrap();
        let mut t = Table::new("sorted", schema);
        for i in 0..(BLOCK_ROWS as i64 * 4) {
            t.insert(vec![i.into()]).unwrap();
        }
        let path = tmp("prune");
        write_segment(&t, &path, 1).unwrap();
        let lo = Value::Int(BLOCK_ROWS as i64 + 10);
        let hi = Value::Int(BLOCK_ROWS as i64 + 20);
        let scan = scan_segment(&path, Some((0, Some(&lo), Some(&hi)))).unwrap();
        assert_eq!(scan.chunks_total, 4);
        assert_eq!(scan.chunks_decoded, 1, "three chunks must be pruned");
        assert_eq!(scan.batch.num_rows(), BLOCK_ROWS);
        // the surviving chunk contains the requested range
        let col = &scan.batch.columns()[0];
        let vals: Vec<Value> = col.values();
        assert!(vals.contains(&lo) && vals.contains(&hi));
        // unpruned scan decodes everything
        let all = scan_segment(&path, None).unwrap();
        assert_eq!(all.chunks_decoded, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segments_are_smaller_than_json_for_typical_bi_data() {
        let t = wide_table(5000);
        let path = tmp("size");
        let seg_bytes = write_segment(&t, &path, 1).unwrap();
        let json_bytes = crate::jsoncodec::table_to_json(&t).to_string().len() as u64;
        assert!(
            seg_bytes < json_bytes / 2,
            "segment {seg_bytes}B should be well under half the JSON {json_bytes}B"
        );
        let _ = std::fs::remove_file(&path);
    }
}
