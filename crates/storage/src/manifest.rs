//! The segment manifest: the single atomic commit point for columnar
//! checkpoints.
//!
//! `manifest.json` lists the one live segment file per table, each stamped
//! with the LSN cut it was written at, plus the store-wide `last_lsn` of the
//! most recent checkpoint and the next segment id to allocate. An
//! incremental checkpoint writes fresh segments for dirty tables only, then
//! swaps the manifest in one fsynced rename (`persist::write_atomic`
//! with the `manifest` failpoint label) — until that rename lands, recovery
//! sees the previous manifest and the previous segments, all still intact
//! because segments are immutable and ids are never reused.
//!
//! The manifest is deliberately tiny JSON rather than a binary format: it
//! is O(tables), rewritten wholesale each checkpoint, and being able to
//! `cat` it is worth more than the bytes.

use std::path::Path;

use serde_json::{Map, Number, Value as Json};

use crate::error::{DbError, DbResult};
use crate::persist::write_atomic;

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One live segment: the columnar image of `table` as of `last_lsn`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Table name as displayed (original casing).
    pub table: String,
    /// Segment file name, relative to the store directory.
    pub file: String,
    /// The LSN cut the segment was written at. May be older than the
    /// manifest's `last_lsn` when the table was clean at later checkpoints —
    /// valid, because no mutation of this table exists in between.
    pub last_lsn: u64,
    /// Encoded size in bytes, for footprint accounting.
    pub bytes: u64,
}

/// The set of live segments after the last successful checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The consistent cut the manifest commits: WAL records with LSN above
    /// this must be replayed on recovery, everything at or below is in the
    /// segments.
    pub last_lsn: u64,
    /// Next segment id to allocate. Monotonic across the store's lifetime —
    /// ids are never reused, so a freshly written segment can never collide
    /// with a crash-orphaned file that some old manifest referenced.
    pub next_seg_id: u64,
    /// Live segments, one per table, in canonical (sorted) table order.
    pub tables: Vec<SegmentEntry>,
}

impl Manifest {
    /// Look up the live segment for `table` (case-insensitive, matching the
    /// catalog's name resolution).
    pub fn entry(&self, table: &str) -> Option<&SegmentEntry> {
        self.tables
            .iter()
            .find(|e| e.table.eq_ignore_ascii_case(table))
    }
}

fn manifest_json(m: &Manifest) -> String {
    let mut root = Map::new();
    root.insert(
        "version".to_string(),
        Json::Number(Number::from(MANIFEST_VERSION as i64)),
    );
    root.insert(
        "last_lsn".to_string(),
        Json::Number(Number::from(m.last_lsn as i64)),
    );
    root.insert(
        "next_seg_id".to_string(),
        Json::Number(Number::from(m.next_seg_id as i64)),
    );
    root.insert(
        "tables".to_string(),
        Json::Array(
            m.tables
                .iter()
                .map(|e| {
                    let mut o = Map::new();
                    o.insert("table".to_string(), Json::String(e.table.clone()));
                    o.insert("file".to_string(), Json::String(e.file.clone()));
                    o.insert(
                        "last_lsn".to_string(),
                        Json::Number(Number::from(e.last_lsn as i64)),
                    );
                    o.insert(
                        "bytes".to_string(),
                        Json::Number(Number::from(e.bytes as i64)),
                    );
                    Json::Object(o)
                })
                .collect(),
        ),
    );
    Json::Object(root).to_string()
}

/// Write `m` to `path` atomically and durably (tmp + fsync + rename +
/// directory fsync). This rename is the checkpoint's commit point; the
/// failpoint sites are `manifest.write`, `manifest.write.short`,
/// `manifest.rename`, and the shared `snapshot.fsync`.
pub(crate) fn write_manifest(m: &Manifest, path: &Path) -> DbResult<()> {
    write_atomic(path, manifest_json(m).as_bytes(), "manifest")
}

fn req_u64(v: &Json, key: &str) -> DbResult<u64> {
    v.get(key)
        .and_then(Json::as_i64)
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| DbError::Corrupt(format!("manifest missing {key} stamp")))
}

fn req_str(v: &Json, key: &str) -> DbResult<String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| DbError::Corrupt(format!("manifest missing {key}")))
}

/// Load the manifest at `path`. Strict: a missing or malformed field is
/// [`DbError::Corrupt`] — a half-written manifest must never silently
/// masquerade as an empty store (mirrors the snapshot `last_lsn` rule).
pub(crate) fn load_manifest(path: &Path) -> DbResult<Manifest> {
    let text = std::fs::read_to_string(path)?;
    let root: Json = serde_json::from_str(&text)
        .map_err(|e| DbError::Corrupt(format!("manifest not JSON: {e}")))?;
    let version = req_u64(&root, "version")?;
    if version != MANIFEST_VERSION as u64 {
        return Err(DbError::Corrupt(format!(
            "manifest version {version} not supported (expected {MANIFEST_VERSION})"
        )));
    }
    let last_lsn = req_u64(&root, "last_lsn")?;
    let next_seg_id = req_u64(&root, "next_seg_id")?;
    let mut tables = Vec::new();
    for e in root
        .get("tables")
        .and_then(Json::as_array)
        .ok_or_else(|| DbError::Corrupt("manifest missing tables".into()))?
    {
        tables.push(SegmentEntry {
            table: req_str(e, "table")?,
            file: req_str(e, "file")?,
            last_lsn: req_u64(e, "last_lsn")?,
            bytes: req_u64(e, "bytes")?,
        });
    }
    Ok(Manifest {
        last_lsn,
        next_seg_id,
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "odbis-manifest-{name}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        p
    }

    fn sample() -> Manifest {
        Manifest {
            last_lsn: 99,
            next_seg_id: 3,
            tables: vec![
                SegmentEntry {
                    table: "Orders".into(),
                    file: "seg-00000001.seg".into(),
                    last_lsn: 40,
                    bytes: 1234,
                },
                SegmentEntry {
                    table: "users".into(),
                    file: "seg-00000002.seg".into(),
                    last_lsn: 99,
                    bytes: 567,
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let path = tmp("roundtrip");
        let m = sample();
        write_manifest(&m, &path).unwrap();
        let back = load_manifest(&path).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.entry("ORDERS").unwrap().file, "seg-00000001.seg");
        assert!(back.entry("ghost").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_or_malformed_fields_are_corrupt() {
        let path = tmp("strict");
        for bad in [
            r#"{"version":1,"next_seg_id":1,"tables":[]}"#,
            r#"{"version":1,"last_lsn":"seven","next_seg_id":1,"tables":[]}"#,
            r#"{"version":1,"last_lsn":-2,"next_seg_id":1,"tables":[]}"#,
            r#"{"version":99,"last_lsn":0,"next_seg_id":1,"tables":[]}"#,
            r#"{"version":1,"last_lsn":0,"next_seg_id":1}"#,
            r#"{"version":1,"last_lsn":0,"next_seg_id":1,"tables":[{"table":"t"}]}"#,
            "not json at all",
        ] {
            std::fs::write(&path, bad).unwrap();
            match load_manifest(&path) {
                Err(DbError::Corrupt(_)) => {}
                other => panic!("expected Corrupt for {bad:?}, got {other:?}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
