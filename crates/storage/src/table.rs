//! Heap tables: slotted row storage with index maintenance.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::batch::{Batch, ColumnBuilder};
use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::Value;
use crate::wal::WalRecord;

/// Identifier of a row slot within one table. Stable for the life of the row.
pub type RowId = u64;

/// An ordered secondary (or primary) index over one or more columns.
///
/// Keys are the indexed column values in order; entries map to the row ids
/// holding that key. A `unique` index rejects duplicate keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Index {
    /// Index name, unique within the database.
    pub name: String,
    /// Positions of the indexed columns within the table schema.
    pub columns: Vec<usize>,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
    // Not serialized: snapshot loading rebuilds indexes from the rows
    // (JSON map keys must be strings, and rebuilding re-verifies uniqueness).
    #[serde(skip)]
    entries: BTreeMap<Vec<Value>, Vec<RowId>>,
}

impl Index {
    fn new(name: String, columns: Vec<usize>, unique: bool) -> Self {
        Index {
            name,
            columns,
            unique,
            entries: BTreeMap::new(),
        }
    }

    fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.columns.iter().map(|&i| row[i].clone()).collect()
    }

    fn insert(&mut self, row: &[Value], id: RowId) -> DbResult<()> {
        let key = self.key_of(row);
        // SQL semantics: NULLs never conflict under UNIQUE.
        let has_null = key.iter().any(Value::is_null);
        let slot = self.entries.entry(key.clone()).or_default();
        if self.unique && !slot.is_empty() && !has_null {
            return Err(DbError::UniqueViolation {
                index: self.name.clone(),
                key: render_key(&key),
            });
        }
        slot.push(id);
        Ok(())
    }

    fn remove(&mut self, row: &[Value], id: RowId) {
        let key = self.key_of(row);
        if let Some(slot) = self.entries.get_mut(&key) {
            slot.retain(|&r| r != id);
            if slot.is_empty() {
                self.entries.remove(&key);
            }
        }
    }

    /// Row ids whose key equals `key` exactly.
    pub fn lookup(&self, key: &[Value]) -> Vec<RowId> {
        self.entries.get(key).cloned().unwrap_or_default()
    }

    /// Row ids whose key lies in `[lo, hi]` (either bound optional).
    ///
    /// Bounds may be key *prefixes* on a multi-column index. A lower-bound
    /// prefix sorts before all of its extensions, so `Bound::Included` is
    /// already correct there. An upper-bound prefix is compared on the
    /// shared prefix length, so `[5] ..= [5]` includes extensions such as
    /// `[5, x]` (equivalent to an exclusive bound at the successor of the
    /// prefix); a full-arity upper bound remains inclusive, as before.
    pub fn range(&self, lo: Option<&[Value]>, hi: Option<&[Value]>) -> Vec<RowId> {
        use std::cmp::Ordering;
        use std::ops::Bound;
        let lo_b = lo.map_or(Bound::Unbounded, |k| Bound::Included(k.to_vec()));
        let within_hi = |key: &[Value]| match hi {
            None => true,
            Some(h) => {
                let m = h.len().min(key.len());
                key[..m].cmp(&h[..m]) != Ordering::Greater
            }
        };
        self.entries
            .range((lo_b, Bound::Unbounded))
            .take_while(|&(key, _)| within_hi(key))
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// All row ids in key order (for index-ordered scans).
    pub fn ordered_ids(&self) -> Vec<RowId> {
        self.entries
            .values()
            .flat_map(|ids| ids.iter().copied())
            .collect()
    }

    /// Number of distinct keys currently indexed.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }
}

fn render_key(key: &[Value]) -> String {
    let parts: Vec<String> = key.iter().map(Value::render).collect();
    format!("({})", parts.join(", "))
}

/// A heap table: schema + slotted rows + attached indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table name, unique within the database.
    pub name: String,
    schema: Schema,
    rows: Vec<Option<Vec<Value>>>,
    indexes: Vec<Index>,
    live: usize,
    // Memoized columnar image of the live rows, rebuilt lazily after any
    // mutation. Skipped by snapshots: it is derived state.
    #[serde(skip)]
    batch_cache: std::sync::OnceLock<Arc<Batch>>,
    // When armed, every successful mutation queues a WAL record here; the
    // owning `Database` drains the queue into its sink while still holding
    // the table-map write lock, so log order always matches apply order.
    #[serde(skip)]
    journal: bool,
    #[serde(skip)]
    pending_wal: Vec<WalRecord>,
    // Set under the table's write lock when the catalog drops the table.
    // A statement that resolved its `Arc<RwLock<Table>>` handle before the
    // drop, but acquired the lock after, must observe this and fail with
    // `TableNotFound` instead of mutating (and journaling into) a corpse
    // that the WAL has already recorded as dropped.
    #[serde(skip)]
    dropped: bool,
}

impl Table {
    /// Create an empty table. If the schema declares a primary key, a unique
    /// index `pk_<table>` is created automatically.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        let mut t = Table {
            name: name.clone(),
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            live: 0,
            batch_cache: std::sync::OnceLock::new(),
            journal: false,
            pending_wal: Vec::new(),
            dropped: false,
        };
        if !t.schema.primary_key().is_empty() {
            let cols = t.schema.primary_key().to_vec();
            t.indexes.push(Index::new(format!("pk_{name}"), cols, true));
        }
        t
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All row slots including tombstones (`None`), for snapshot encoding:
    /// preserving tombstones keeps `RowId`s stable across a round trip.
    pub(crate) fn raw_rows(&self) -> &[Option<Vec<Value>>] {
        &self.rows
    }

    /// Reassemble a table from decoded snapshot parts: raw row slots
    /// (tombstones included) and index definitions `(name, columns,
    /// unique)`. Index entries are rebuilt from the rows, re-verifying
    /// uniqueness.
    pub(crate) fn from_parts(
        name: String,
        schema: Schema,
        rows: Vec<Option<Vec<Value>>>,
        indexes: Vec<(String, Vec<usize>, bool)>,
    ) -> DbResult<Table> {
        let live = rows.iter().filter(|r| r.is_some()).count();
        let mut t = Table {
            name,
            schema,
            rows,
            indexes: indexes
                .into_iter()
                .map(|(n, c, u)| Index::new(n, c, u))
                .collect(),
            live,
            batch_cache: std::sync::OnceLock::new(),
            journal: false,
            pending_wal: Vec::new(),
            dropped: false,
        };
        t.rebuild_indexes()?;
        Ok(t)
    }

    /// Start queueing WAL records for every mutation (see `pending_wal`).
    pub(crate) fn arm_journal(&mut self) {
        self.journal = true;
    }

    /// Whether mutations are being journaled.
    pub(crate) fn journal_armed(&self) -> bool {
        self.journal
    }

    /// Drain the queued WAL records (empty unless armed).
    pub(crate) fn take_pending(&mut self) -> Vec<WalRecord> {
        std::mem::take(&mut self.pending_wal)
    }

    /// Tombstone the table on catalog removal (under its write lock).
    pub(crate) fn mark_dropped(&mut self) {
        self.dropped = true;
    }

    /// Whether the catalog has dropped this table since the caller resolved
    /// its handle.
    pub(crate) fn is_dropped(&self) -> bool {
        self.dropped
    }

    fn journal_push(&mut self, record: impl FnOnce(&Table) -> WalRecord) {
        if self.journal {
            let rec = record(self);
            self.pending_wal.push(rec);
        }
    }

    /// Rebuild every index's entries from the stored rows (after snapshot
    /// deserialization, which skips them). Re-verifies uniqueness.
    pub(crate) fn rebuild_indexes(&mut self) -> DbResult<()> {
        for idx in &mut self.indexes {
            idx.entries.clear();
        }
        let ids: Vec<RowId> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i as RowId))
            .collect();
        for id in ids {
            let row = self.rows[id as usize].clone().expect("live row");
            for idx in &mut self.indexes {
                idx.insert(&row, id)?;
            }
        }
        Ok(())
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.live
    }

    /// Attached indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(name))
    }

    /// Find an index whose leading column is `col` (for planner lookups).
    pub fn index_on(&self, col: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|i| i.columns.first() == Some(&col))
    }

    /// Create a new index over `columns` and backfill it from existing rows.
    pub fn create_index(&mut self, name: &str, columns: &[&str], unique: bool) -> DbResult<()> {
        if self.index(name).is_some() {
            return Err(DbError::IndexExists(name.to_string()));
        }
        let cols: DbResult<Vec<usize>> = columns
            .iter()
            .map(|c| {
                self.schema
                    .index_of(c)
                    .ok_or_else(|| DbError::ColumnNotFound {
                        table: self.name.clone(),
                        column: (*c).to_string(),
                    })
            })
            .collect();
        let mut idx = Index::new(name.to_string(), cols?, unique);
        for (id, row) in self.rows.iter().enumerate() {
            if let Some(r) = row {
                idx.insert(r, id as RowId)?;
            }
        }
        self.indexes.push(idx);
        if self.journal {
            self.pending_wal.push(WalRecord::CreateIndex {
                table: self.name.clone(),
                name: name.to_string(),
                columns: columns.iter().map(|c| (*c).to_string()).collect(),
                unique,
            });
        }
        Ok(())
    }

    /// Drop an index by name. The automatic primary-key index cannot be
    /// dropped.
    pub fn drop_index(&mut self, name: &str) -> DbResult<()> {
        if name.eq_ignore_ascii_case(&format!("pk_{}", self.name)) {
            return Err(DbError::Invalid(format!(
                "cannot drop primary key index {name}"
            )));
        }
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::IndexNotFound(name.to_string()))?;
        self.indexes.remove(pos);
        self.journal_push(|t| WalRecord::DropIndex {
            table: t.name.clone(),
            name: name.to_string(),
        });
        Ok(())
    }

    /// Insert a row (validated and coerced against the schema). Returns the
    /// new row id.
    pub fn insert(&mut self, row: Vec<Value>) -> DbResult<RowId> {
        let id = self.insert_unjournaled(&row)?;
        if self.journal {
            // The owned argument would be dropped here anyway — journal it
            // by move instead of cloning the stored image. Replay runs the
            // row through `check_row` again, and coercion is idempotent, so
            // the submitted image recovers to the same stored row.
            self.journal_insert(row);
        }
        Ok(id)
    }

    /// Insert from a borrowed row. The table stores a validated, coerced
    /// copy; the caller keeps the original (so bulk-load paths that need
    /// rejected rows back — e.g. ETL quarantine — avoid a defensive clone
    /// per row).
    pub fn insert_row(&mut self, row: &[Value]) -> DbResult<RowId> {
        let id = self.insert_unjournaled(row)?;
        if self.journal {
            self.journal_insert(row.to_vec());
        }
        Ok(id)
    }

    fn insert_unjournaled(&mut self, row: &[Value]) -> DbResult<RowId> {
        let row = self.schema.check_row(&self.name, row)?;
        let id = self.rows.len() as RowId;
        // Maintain all indexes first so a unique violation leaves no trace.
        for i in 0..self.indexes.len() {
            if let Err(e) = self.indexes[i].insert(&row, id) {
                for j in 0..i {
                    self.indexes[j].remove(&row, id);
                }
                return Err(e);
            }
        }
        self.rows.push(Some(row));
        self.live += 1;
        self.invalidate_batch_cache();
        Ok(id)
    }

    /// Queue one inserted row for the WAL. Consecutive inserts coalesce
    /// into a single [`WalRecord::InsertMany`], so a multi-row statement
    /// journals one frame (and clones the table name once, not per row).
    /// The queue is per-table, so any trailing insert record is
    /// necessarily for this table.
    fn journal_insert(&mut self, row: Vec<Value>) {
        match self.pending_wal.last_mut() {
            Some(WalRecord::InsertMany { rows, .. }) => rows.push(row),
            Some(WalRecord::Insert { .. }) => {
                let Some(WalRecord::Insert { table, row: first }) = self.pending_wal.pop() else {
                    unreachable!("last record just matched Insert");
                };
                self.pending_wal.push(WalRecord::InsertMany {
                    table,
                    rows: vec![first, row],
                });
            }
            _ => self.pending_wal.push(WalRecord::Insert {
                table: self.name.clone(),
                row,
            }),
        }
    }

    /// Fetch a row by id.
    pub fn get(&self, id: RowId) -> DbResult<&[Value]> {
        self.rows
            .get(id as usize)
            .and_then(|r| r.as_deref())
            .ok_or(DbError::RowNotFound(id))
    }

    /// Replace a row in place (validated). Indexes are updated atomically:
    /// on unique violation, the old row is restored.
    pub fn update(&mut self, id: RowId, new_row: Vec<Value>) -> DbResult<Vec<Value>> {
        let new_row = self.schema.check_row(&self.name, &new_row)?;
        let old = self
            .rows
            .get(id as usize)
            .and_then(|r| r.clone())
            .ok_or(DbError::RowNotFound(id))?;
        for idx in &mut self.indexes {
            idx.remove(&old, id);
        }
        for i in 0..self.indexes.len() {
            if let Err(e) = self.indexes[i].insert(&new_row, id) {
                for j in 0..i {
                    self.indexes[j].remove(&new_row, id);
                }
                for idx in &mut self.indexes {
                    // restore original entries
                    let _ = idx.insert(&old, id);
                }
                return Err(e);
            }
        }
        if self.journal {
            self.pending_wal.push(WalRecord::Update {
                table: self.name.clone(),
                id,
                row: new_row.clone(),
            });
        }
        self.rows[id as usize] = Some(new_row);
        self.invalidate_batch_cache();
        Ok(old)
    }

    /// Delete a row by id, returning the old contents.
    pub fn delete(&mut self, id: RowId) -> DbResult<Vec<Value>> {
        let old = self
            .rows
            .get(id as usize)
            .and_then(|r| r.clone())
            .ok_or(DbError::RowNotFound(id))?;
        for idx in &mut self.indexes {
            idx.remove(&old, id);
        }
        self.journal_push(|t| WalRecord::Delete {
            table: t.name.clone(),
            id,
        });
        self.rows[id as usize] = None;
        self.live -= 1;
        self.invalidate_batch_cache();
        Ok(old)
    }

    /// Re-insert a previously deleted row at a specific id (transaction undo).
    pub(crate) fn undelete(&mut self, id: RowId, row: Vec<Value>) -> DbResult<()> {
        while self.rows.len() <= id as usize {
            self.rows.push(None);
        }
        if self.rows[id as usize].is_some() {
            return Err(DbError::Invalid(format!("slot {id} occupied")));
        }
        for idx in &mut self.indexes {
            idx.insert(&row, id)?;
        }
        if self.journal {
            self.pending_wal.push(WalRecord::Undelete {
                table: self.name.clone(),
                id,
                row: row.clone(),
            });
        }
        self.rows[id as usize] = Some(row);
        self.live += 1;
        self.invalidate_batch_cache();
        Ok(())
    }

    /// Iterate `(row_id, row)` over live rows in heap order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[Value])> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_deref().map(|row| (i as RowId, row)))
    }

    /// Clone all live rows (snapshot for lock-free downstream processing).
    pub fn snapshot(&self) -> Vec<Vec<Value>> {
        self.rows.iter().filter_map(|r| r.clone()).collect()
    }

    /// Scan all live rows into a columnar [`Batch`], one typed column per
    /// schema column.
    ///
    /// Stored rows are already coerced to their declared [`crate::DataType`]
    /// by [`Schema::check_row`], so each column vector is built directly
    /// with no per-value type inference and no per-row allocations. The
    /// columnar image is memoized until the next mutation, so repeated
    /// scans of a stable table (the common BI read pattern) cost one
    /// `Arc` clone per column.
    pub fn scan_batch(&self) -> Batch {
        self.batch_cache
            .get_or_init(|| Arc::new(self.build_batch()))
            .as_ref()
            .clone()
    }

    fn build_batch(&self) -> Batch {
        let mut builders: Vec<ColumnBuilder> = self
            .schema
            .columns()
            .iter()
            .map(|c| ColumnBuilder::with_capacity(c.data_type, self.live))
            .collect();
        for (_, row) in self.scan() {
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v);
            }
        }
        Batch::new(
            builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            self.live,
        )
        .expect("scan builders produce equal-length columns")
    }

    /// Like [`Table::scan_batch`], but materializing only the physical
    /// columns listed in `cols` (in that order). Column vectors are shared
    /// with the memoized full batch, so a pruned scan costs one `Arc`
    /// clone per kept column — this is the execution side of the
    /// optimizer's projection-pruning rule.
    ///
    /// # Panics
    /// Panics if any ordinal in `cols` is out of range.
    pub fn scan_batch_cols(&self, cols: &[usize]) -> Batch {
        let full = self.scan_batch();
        let picked = cols.iter().map(|&c| full.column(c).clone()).collect();
        Batch::new(picked, full.num_rows()).expect("projected columns share the batch row count")
    }

    /// The contiguous sub-batch `[lo, hi)` of the live-row snapshot
    /// (bounds clamped), in the same order as [`Table::scan_batch`].
    pub fn scan_batch_range(&self, lo: usize, hi: usize) -> Batch {
        self.scan_batch().slice(lo, hi)
    }

    /// Split the live-row snapshot into fixed-size morsels of at most
    /// `morsel_rows` rows each (optionally projected to `cols`), for
    /// parallel execution. Morsels are contiguous slices of one immutable
    /// snapshot, so concatenating them in order reproduces
    /// [`Table::scan_batch`] exactly.
    ///
    /// Always yields at least one (possibly empty) morsel so downstream
    /// operators see the typed column layout even for empty tables.
    pub fn scan_partitions(&self, cols: Option<&[usize]>, morsel_rows: usize) -> Vec<Batch> {
        let snapshot = match cols {
            Some(cols) => self.scan_batch_cols(cols),
            None => self.scan_batch(),
        };
        let step = morsel_rows.max(1);
        let rows = snapshot.num_rows();
        if rows <= step {
            return vec![snapshot];
        }
        (0..rows)
            .step_by(step)
            .map(|lo| snapshot.slice(lo, (lo + step).min(rows)))
            .collect()
    }

    fn invalidate_batch_cache(&mut self) {
        self.batch_cache = std::sync::OnceLock::new();
    }

    /// Delete every row, keeping schema and (now empty) indexes.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.live = 0;
        for idx in &mut self.indexes {
            idx.entries.clear();
        }
        self.journal_push(|t| WalRecord::Truncate {
            table: t.name.clone(),
        });
        self.invalidate_batch_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn users() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text).not_null(),
            Column::new("age", DataType::Int),
        ])
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        Table::new("users", schema)
    }

    #[test]
    fn pk_index_auto_created_and_enforced() {
        let mut t = users();
        assert_eq!(t.indexes().len(), 1);
        t.insert(vec![1.into(), "a".into(), 30.into()]).unwrap();
        let err = t.insert(vec![1.into(), "b".into(), 31.into()]).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn insert_get_update_delete_cycle() {
        let mut t = users();
        let id = t.insert(vec![1.into(), "ana".into(), 30.into()]).unwrap();
        assert_eq!(t.get(id).unwrap()[1], "ana".into());
        let old = t
            .update(id, vec![1.into(), "ana maria".into(), 31.into()])
            .unwrap();
        assert_eq!(old[1], "ana".into());
        assert_eq!(t.get(id).unwrap()[2], 31.into());
        let old = t.delete(id).unwrap();
        assert_eq!(old[1], "ana maria".into());
        assert!(matches!(t.get(id), Err(DbError::RowNotFound(_))));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn failed_unique_insert_leaves_indexes_clean() {
        let mut t = users();
        t.create_index("ix_age", &["age"], false).unwrap();
        t.insert(vec![1.into(), "a".into(), 30.into()]).unwrap();
        let _ = t.insert(vec![1.into(), "b".into(), 99.into()]).unwrap_err();
        // age index must not contain the phantom 99 entry
        assert!(t.index("ix_age").unwrap().lookup(&[99.into()]).is_empty());
        assert_eq!(t.index("ix_age").unwrap().distinct_keys(), 1);
    }

    #[test]
    fn failed_update_restores_old_row_in_indexes() {
        let mut t = users();
        let a = t.insert(vec![1.into(), "a".into(), 30.into()]).unwrap();
        t.insert(vec![2.into(), "b".into(), 40.into()]).unwrap();
        // updating a's pk to 2 must fail and keep a findable under pk 1
        let err = t
            .update(a, vec![2.into(), "a".into(), 30.into()])
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        assert_eq!(t.indexes()[0].lookup(&[1.into()]), vec![a]);
        assert_eq!(t.get(a).unwrap()[0], 1.into());
    }

    #[test]
    fn secondary_index_backfills_and_ranges() {
        let mut t = users();
        for i in 0..10i64 {
            t.insert(vec![i.into(), format!("u{i}").into(), (20 + i).into()])
                .unwrap();
        }
        t.create_index("ix_age", &["age"], false).unwrap();
        let idx = t.index("ix_age").unwrap();
        assert_eq!(idx.lookup(&[25.into()]).len(), 1);
        let hits = idx.range(Some(&[22.into()]), Some(&[24.into()]));
        assert_eq!(hits.len(), 3);
        let all = idx.range(None, None);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn prefix_upper_bound_includes_key_extensions() {
        // regression: [5] ..= [5] on an index over (a, b) must include [5, x]
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for (a, b) in [(4, 9), (5, 1), (5, 2), (6, 0)] {
            t.insert(vec![a.into(), b.into()]).unwrap();
        }
        t.create_index("ix_ab", &["a", "b"], false).unwrap();
        let idx = t.index("ix_ab").unwrap();
        // equality expressed as a prefix range: both (5, *) rows
        assert_eq!(idx.range(Some(&[5.into()]), Some(&[5.into()])).len(), 2);
        // open prefix ranges on the leading column
        assert_eq!(idx.range(Some(&[5.into()]), None).len(), 3);
        assert_eq!(idx.range(None, Some(&[5.into()])).len(), 3);
        // full-arity bounds stay inclusive on both ends
        assert_eq!(
            idx.range(Some(&[5.into(), 1.into()]), Some(&[5.into(), 2.into()]))
                .len(),
            2
        );
        // mixed: full-arity lower bound, prefix upper bound
        assert_eq!(
            idx.range(Some(&[4.into(), 9.into()]), Some(&[5.into()]))
                .len(),
            3
        );
    }

    #[test]
    fn scan_batch_types_columns_and_skips_deleted() {
        use crate::batch::ColumnData;
        let mut t = users();
        let a = t.insert(vec![1.into(), "a".into(), 30.into()]).unwrap();
        t.insert(vec![2.into(), "b".into(), Value::Null]).unwrap();
        t.insert(vec![3.into(), "c".into(), 40.into()]).unwrap();
        t.delete(a).unwrap();
        let batch = t.scan_batch();
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.num_columns(), 3);
        assert!(matches!(batch.column(0).data(), ColumnData::Int(_)));
        assert!(matches!(batch.column(1).data(), ColumnData::Text(_)));
        assert!(matches!(batch.column(2).data(), ColumnData::Int(_)));
        assert!(batch.column(2).is_null(0));
        assert_eq!(batch.to_rows(), t.snapshot());
    }

    #[test]
    fn scan_batch_cache_invalidated_by_mutations() {
        let mut t = users();
        t.insert(vec![1.into(), "a".into(), 30.into()]).unwrap();
        assert_eq!(t.scan_batch().num_rows(), 1);
        // every mutation kind must drop the memoized batch
        let b = t.insert(vec![2.into(), "b".into(), 31.into()]).unwrap();
        assert_eq!(t.scan_batch().num_rows(), 2);
        t.update(b, vec![2.into(), "bb".into(), 32.into()]).unwrap();
        assert_eq!(t.scan_batch().value(1, 1), Value::from("bb"));
        t.delete(b).unwrap();
        assert_eq!(t.scan_batch().num_rows(), 1);
        t.undelete(b, vec![2.into(), "b".into(), 31.into()])
            .unwrap();
        assert_eq!(t.scan_batch().num_rows(), 2);
        t.truncate();
        assert_eq!(t.scan_batch().num_rows(), 0);
        // repeated scans of a stable table agree with the row image
        assert_eq!(t.scan_batch(), t.scan_batch());
    }

    #[test]
    fn scan_partitions_cover_snapshot_in_order() {
        let mut t = users();
        for i in 0..10i64 {
            t.insert(vec![i.into(), format!("u{i}").into(), (20 + i).into()])
                .unwrap();
        }
        let morsels = t.scan_partitions(None, 4);
        assert_eq!(
            morsels.iter().map(Batch::num_rows).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        let glued = Batch::concat(3, &morsels).unwrap();
        assert_eq!(glued, t.scan_batch());
        // ranges agree with slices of the snapshot
        assert_eq!(t.scan_batch_range(4, 8), t.scan_batch().slice(4, 8));
        // projected partitions pick (and reorder) physical columns
        let pruned = t.scan_partitions(Some(&[2, 0]), 100);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].num_columns(), 2);
        assert_eq!(pruned[0].value(0, 3), Value::Int(23));
        assert_eq!(pruned[0].value(1, 3), Value::Int(3));
        // empty table still yields one morsel with the typed layout
        t.truncate();
        let empty = t.scan_partitions(None, 4);
        assert_eq!(empty.len(), 1);
        assert_eq!(empty[0].num_columns(), 3);
    }

    #[test]
    fn insert_row_borrows_and_validates() {
        let mut t = users();
        let row = vec![Value::Int(1), "a".into(), Value::Int(5)];
        t.insert_row(&row).unwrap();
        // caller keeps the original row
        assert_eq!(row[1], "a".into());
        assert!(t.insert_row(&row).is_err()); // duplicate pk, row still usable
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn unique_index_allows_multiple_nulls() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("email", DataType::Text),
        ])
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let mut t = Table::new("t", schema);
        t.create_index("ux_email", &["email"], true).unwrap();
        t.insert(vec![1.into(), Value::Null]).unwrap();
        t.insert(vec![2.into(), Value::Null]).unwrap();
        t.insert(vec![3.into(), "x@y".into()]).unwrap();
        assert!(t.insert(vec![4.into(), "x@y".into()]).is_err());
    }

    #[test]
    fn drop_index_protects_pk() {
        let mut t = users();
        t.create_index("ix_age", &["age"], false).unwrap();
        t.drop_index("ix_age").unwrap();
        assert!(t.index("ix_age").is_none());
        assert!(t.drop_index("pk_users").is_err());
        assert!(matches!(
            t.drop_index("nope"),
            Err(DbError::IndexNotFound(_))
        ));
    }

    #[test]
    fn scan_skips_deleted_and_truncate_clears() {
        let mut t = users();
        let a = t.insert(vec![1.into(), "a".into(), 1.into()]).unwrap();
        t.insert(vec![2.into(), "b".into(), 2.into()]).unwrap();
        t.delete(a).unwrap();
        let names: Vec<_> = t.scan().map(|(_, r)| r[1].clone()).collect();
        assert_eq!(names, vec![Value::from("b")]);
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.indexes()[0].distinct_keys(), 0);
    }

    #[test]
    fn undelete_restores_row() {
        let mut t = users();
        let id = t.insert(vec![1.into(), "a".into(), 1.into()]).unwrap();
        let old = t.delete(id).unwrap();
        t.undelete(id, old).unwrap();
        assert_eq!(t.get(id).unwrap()[0], 1.into());
        assert_eq!(t.indexes()[0].lookup(&[1.into()]), vec![id]);
    }
}
