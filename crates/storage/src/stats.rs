//! Table statistics used by the SQL optimizer for access-path selection.

use std::collections::HashSet;

use crate::table::Table;
use crate::value::Value;

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Number of NULL values.
    pub null_count: usize,
    /// Estimated number of distinct values.
    pub distinct_count: usize,
    /// Minimum non-NULL value, if any rows exist.
    pub min: Option<Value>,
    /// Maximum non-NULL value, if any rows exist.
    pub max: Option<Value>,
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Table name.
    pub table: String,
    /// Live row count at collection time.
    pub row_count: usize,
    /// One entry per column, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect exact statistics by scanning the table once.
    pub fn collect(table: &Table) -> TableStats {
        let arity = table.schema().arity();
        let mut nulls = vec![0usize; arity];
        let mut distinct: Vec<HashSet<Value>> = (0..arity).map(|_| HashSet::new()).collect();
        let mut mins: Vec<Option<Value>> = vec![None; arity];
        let mut maxs: Vec<Option<Value>> = vec![None; arity];
        let mut rows = 0usize;
        for (_, row) in table.scan() {
            rows += 1;
            for (i, v) in row.iter().enumerate() {
                if v.is_null() {
                    nulls[i] += 1;
                    continue;
                }
                distinct[i].insert(v.clone());
                match &mins[i] {
                    Some(m) if v >= m => {}
                    _ => mins[i] = Some(v.clone()),
                }
                match &maxs[i] {
                    Some(m) if v <= m => {}
                    _ => maxs[i] = Some(v.clone()),
                }
            }
        }
        let columns = table
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| ColumnStats {
                name: c.name.clone(),
                null_count: nulls[i],
                distinct_count: distinct[i].len(),
                min: mins[i].clone(),
                max: maxs[i].clone(),
            })
            .collect();
        TableStats {
            table: table.name.clone(),
            row_count: rows,
            columns,
        }
    }

    /// Estimated selectivity of `col = literal`: `1 / distinct_count`.
    pub fn eq_selectivity(&self, column: &str) -> f64 {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(column))
            .map_or(1.0, |c| {
                if c.distinct_count == 0 {
                    1.0
                } else {
                    1.0 / c.distinct_count as f64
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    #[test]
    fn collects_exact_stats() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("grp", DataType::Text),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..10i64 {
            let grp = if i % 2 == 0 {
                Value::from("even")
            } else if i == 9 {
                Value::Null
            } else {
                Value::from("odd")
            };
            t.insert(vec![i.into(), grp]).unwrap();
        }
        let s = TableStats::collect(&t);
        assert_eq!(s.row_count, 10);
        assert_eq!(s.columns[0].distinct_count, 10);
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(9)));
        assert_eq!(s.columns[1].null_count, 1);
        assert_eq!(s.columns[1].distinct_count, 2);
        assert!((s.eq_selectivity("id") - 0.1).abs() < 1e-12);
        assert!((s.eq_selectivity("grp") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        let t = Table::new("e", schema);
        let s = TableStats::collect(&t);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.eq_selectivity("x"), 1.0);
        assert_eq!(s.eq_selectivity("missing"), 1.0);
    }
}
